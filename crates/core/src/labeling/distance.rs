//! Distributed fault-region distance field.
//!
//! The paper's conclusion promises a "refined fault model to efficiently
//! support several routing objectives". One classic such objective is
//! *early avoidance*: a message should start skirting a fault region before
//! bumping into it, which requires every node to know how far away the
//! nearest disabled region is. That knowledge is computable with exactly
//! the same machinery as the labeling phases — one more monotone
//! neighbor-exchange protocol:
//!
//! * disabled nodes (faulty or sacrificed) hold distance 0;
//! * every other node starts at "infinity" and repeatedly adopts
//!   `1 + min(neighbor distances)`.
//!
//! The fixpoint is the hop distance to the nearest disabled node *through
//! healthy nodes* (messages cannot cross faulty nodes, so a pocket of
//! healthy nodes walled off by faults correctly reports the distance to the
//! wall it can reach). Convergence takes at most ecc rounds where ecc is
//! the largest such distance — still far below the machine diameter with
//! any faults present.

use crate::labeling::enablement::ActivationState;
use crate::status::FaultMap;
use ocp_distsim::{
    run, try_run, ConvergenceError, Executor, LockstepProtocol, NeighborStates, RunTrace,
};
use ocp_mesh::{Coord, Grid, Topology};

/// Distance value for "no disabled region reachable" (fault-free machine,
/// or a healthy pocket the flood cannot leave).
pub const UNREACHABLE: u16 = u16::MAX;

/// The distance-field protocol (phase 3, optional).
pub struct DistanceProtocol<'a> {
    map: &'a FaultMap,
    activation: &'a Grid<ActivationState>,
}

impl<'a> DistanceProtocol<'a> {
    /// Protocol over `map`, consuming phase 2's converged activation grid.
    ///
    /// # Panics
    /// Panics if the activation grid covers a different machine.
    pub fn new(map: &'a FaultMap, activation: &'a Grid<ActivationState>) -> Self {
        assert_eq!(
            map.topology(),
            activation.topology(),
            "activation grid belongs to a different machine"
        );
        Self { map, activation }
    }
}

impl LockstepProtocol for DistanceProtocol<'_> {
    type State = u16;

    fn topology(&self) -> Topology {
        self.map.topology()
    }

    fn initial(&self, c: Coord) -> u16 {
        if *self.activation.get(c) == ActivationState::Disabled {
            0
        } else {
            UNREACHABLE
        }
    }

    fn ghost(&self) -> u16 {
        // Ghost nodes are infinitely far from every fault; they never pull
        // a border node's distance down.
        UNREACHABLE
    }

    fn participates(&self, c: Coord) -> bool {
        !self.map.is_faulty(c)
    }

    fn step(&self, _c: Coord, current: u16, neighbors: &NeighborStates<u16>) -> u16 {
        if current == 0 {
            return 0; // disabled nodes anchor the field
        }
        let best = neighbors
            .iter()
            .map(|(_, d)| d)
            .min()
            .expect("four neighbors");
        current.min(best.saturating_add(1))
    }
}

/// Result of the distance-field computation.
#[derive(Clone, Debug)]
pub struct DistanceField {
    /// Hop distance to the nearest disabled node, through healthy nodes
    /// ([`UNREACHABLE`] where no disabled node is reachable).
    pub grid: Grid<u16>,
    /// Distributed-run trace.
    pub trace: RunTrace,
}

impl DistanceField {
    /// Distance at one node.
    pub fn at(&self, c: Coord) -> u16 {
        *self.grid.get(c)
    }
}

/// Computes the distance field on top of a converged phase-2 grid.
///
/// ```
/// use ocp_core::prelude::*;
/// use ocp_core::labeling::distance::compute_distance_field;
/// use ocp_distsim::Executor;
/// use ocp_mesh::{Coord, Topology};
///
/// let map = FaultMap::new(Topology::mesh(8, 8), [Coord::new(4, 4)]);
/// let out = run_pipeline(&map, &PipelineConfig::default());
/// let field = compute_distance_field(&map, &out.activation, Executor::Sequential, 100);
/// assert_eq!(field.at(Coord::new(4, 5)), 1);
/// assert_eq!(field.at(Coord::new(0, 0)), 8);
/// ```
pub fn compute_distance_field(
    map: &FaultMap,
    activation: &Grid<ActivationState>,
    executor: Executor,
    max_rounds: u32,
) -> DistanceField {
    let protocol = DistanceProtocol::new(map, activation);
    let out = run(&protocol, executor, max_rounds);
    DistanceField {
        grid: out.states,
        trace: out.trace,
    }
}

/// [`compute_distance_field`] with the convergence watchdog: a run that
/// stalls at `max_rounds` is an explicit [`ConvergenceError`] with
/// diagnostics instead of a grid that silently isn't the distance fixpoint.
pub fn try_compute_distance_field(
    map: &FaultMap,
    activation: &Grid<ActivationState>,
    executor: Executor,
    max_rounds: u32,
) -> Result<DistanceField, ConvergenceError> {
    let protocol = DistanceProtocol::new(map, activation);
    let out = try_run(&protocol, executor, max_rounds)
        .map_err(|e| e.with_label("fault-distance field"))?;
    Ok(DistanceField {
        grid: out.states,
        trace: out.trace,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{run_pipeline, PipelineConfig};
    use std::collections::VecDeque;

    fn c(x: i32, y: i32) -> Coord {
        Coord::new(x, y)
    }

    fn field_for(t: Topology, faults: &[Coord]) -> (FaultMap, DistanceField) {
        let map = FaultMap::new(t, faults.iter().copied());
        let out = run_pipeline(&map, &PipelineConfig::default());
        let field = compute_distance_field(&map, &out.activation, Executor::Sequential, 1000);
        (map, field)
    }

    /// Oracle: multi-source BFS from disabled nodes over healthy nodes.
    fn bfs_oracle(map: &FaultMap, activation: &Grid<ActivationState>) -> Grid<u16> {
        let t = map.topology();
        let mut dist = Grid::filled(t, UNREACHABLE);
        let mut queue = VecDeque::new();
        for (coord, &a) in activation.iter() {
            if a == ActivationState::Disabled {
                dist.set(coord, 0);
                queue.push_back(coord);
            }
        }
        while let Some(cur) = queue.pop_front() {
            // Faulty nodes anchor the field but do not relay it.
            if map.is_faulty(cur) && *dist.get(cur) > 0 {
                continue;
            }
            let next_d = dist.get(cur).saturating_add(1);
            for n in ocp_mesh::Neighborhood::of(t, cur).nodes() {
                if map.is_faulty(n) {
                    continue; // cannot propagate through dead nodes
                }
                if *dist.get(n) > next_d {
                    dist.set(n, next_d);
                    queue.push_back(n);
                }
            }
        }
        dist
    }

    #[test]
    fn matches_bfs_oracle() {
        for t in [Topology::mesh(12, 12), Topology::torus(12, 12)] {
            let faults = [c(3, 3), c(4, 4), c(8, 2), c(2, 9)];
            let map = FaultMap::new(t, faults);
            let out = run_pipeline(&map, &PipelineConfig::default());
            let field = compute_distance_field(&map, &out.activation, Executor::Sequential, 1000);
            let oracle = bfs_oracle(&map, &out.activation);
            for (coord, &want) in oracle.iter() {
                if map.is_faulty(coord) {
                    continue;
                }
                assert_eq!(field.at(coord), want, "{t:?} at {coord}");
            }
            assert!(field.trace.converged);
        }
    }

    #[test]
    fn fault_free_field_is_all_unreachable() {
        let (_, field) = field_for(Topology::mesh(8, 8), &[]);
        assert!(field.grid.iter().all(|(_, &d)| d == UNREACHABLE));
        assert_eq!(field.trace.rounds(), 0);
    }

    #[test]
    fn adjacent_to_fault_is_one() {
        let (_, field) = field_for(Topology::mesh(9, 9), &[c(4, 4)]);
        assert_eq!(field.at(c(4, 5)), 1);
        assert_eq!(field.at(c(5, 5)), 2);
        assert_eq!(field.at(c(0, 0)), 8);
    }

    #[test]
    fn executors_agree_on_distance_field() {
        let t = Topology::mesh(14, 14);
        let map = FaultMap::new(t, [c(3, 3), c(10, 10), c(4, 4)]);
        let out = run_pipeline(&map, &PipelineConfig::default());
        let seq = compute_distance_field(&map, &out.activation, Executor::Sequential, 1000);
        for exec in [Executor::Sharded { threads: 3 }, Executor::Actor] {
            let got = compute_distance_field(&map, &out.activation, exec, 1000);
            assert_eq!(got.grid, seq.grid, "{exec:?}");
            assert_eq!(got.trace, seq.trace, "{exec:?}");
        }
    }

    #[test]
    fn async_reaches_same_field() {
        let t = Topology::mesh(10, 10);
        let map = FaultMap::new(t, [c(5, 5), c(2, 7)]);
        let out = run_pipeline(&map, &PipelineConfig::default());
        let sync = compute_distance_field(&map, &out.activation, Executor::Sequential, 1000);
        let protocol = DistanceProtocol::new(&map, &out.activation);
        let a = ocp_distsim::run_async(&protocol, 99, 7, 10_000_000);
        assert!(a.converged);
        assert_eq!(a.states, sync.grid);
    }

    #[test]
    fn enclosed_pocket_is_itself_disabled() {
        // A ring of faults around a pocket: the pocket cannot be re-enabled
        // (the Figure 2(b) phenomenon writ large), so the field is 0 there —
        // the pocket *is* part of the disabled region.
        let t = Topology::mesh(9, 9);
        let ring: Vec<Coord> = ocp_geometry::Rect::new(c(2, 2), c(6, 6))
            .cells()
            .filter(|cc| cc.x == 2 || cc.x == 6 || cc.y == 2 || cc.y == 6)
            .collect();
        let (_, field) = field_for(t, &ring);
        assert_eq!(field.at(c(4, 4)), 0);
        // Outside the ring the field grows normally.
        assert_eq!(field.at(c(0, 4)), 2);
    }

    #[test]
    fn wall_distance_measured_through_healthy_nodes() {
        // A vertical wall of faults: distances grow away from it on both
        // sides; the route "through" the wall does not exist.
        let t = Topology::mesh(9, 9);
        let wall: Vec<Coord> = (2..=6).map(|y| c(4, y)).collect();
        let (_, field) = field_for(t, &wall);
        assert_eq!(field.at(c(3, 4)), 1);
        assert_eq!(field.at(c(0, 4)), 4);
        assert_eq!(field.at(c(8, 4)), 4);
        // Corner nodes are farther (must path around).
        assert!(field.at(c(0, 0)) >= 4);
    }
}
