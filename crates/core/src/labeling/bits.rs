//! Word-parallel bit-packed kernels for the two labeling phases.
//!
//! Both phase rules are pure boolean neighborhood functions, so one
//! [`BitGrid`] bit per node and a handful of shifts/ANDs/ORs evaluate 64
//! nodes per machine word:
//!
//! * **Phase 1** tracks the *unsafe* bit. Ghosts are safe (`0`), so mesh
//!   boundaries shifting in zeros are already correct. Definition 2b turns
//!   into `next = cur | ((w | e) & (n | s) & nonfaulty)` and Definition 2a
//!   into `next = cur | (maj2(w, e, n, s) & nonfaulty)`.
//! * **Phase 2** tracks the *disabled* bit. Ghosts are enabled (`0`). A
//!   disabled node stays disabled iff at most one neighbor is enabled,
//!   i.e. at least three of the four resolved neighbor slots are
//!   disabled: `next = cur & (faulty | maj3(w, e, n, s))`.
//!
//! On top of the word kernels sits a **row-level frontier**: after round
//! 1, only rows within distance 1 of a row that changed are recomputed
//! (wrapping across the torus seam), which is the bitboard rendering of
//! the frontier executor's dirty set. With `threads > 1` the rows are cut
//! into bands run on `std::thread::scope` workers that exchange halo rows
//! over crossbeam channels each round, mirroring `ocp-distsim`'s sharded
//! executor — deterministic regardless of worker count.
//!
//! Every engine here preserves the *exact* lockstep semantics of the
//! sequential reference executor: same per-round change counts (including
//! the trailing quiet round), same message accounting, same convergence
//! flag — the equivalence tests pin byte-identical grids and traces.

use crate::labeling::enablement::{ActivationState, EnablementOutcome};
use crate::labeling::safety::{SafetyOutcome, SafetyRule, SafetyState};
use crate::status::{FaultMap, Health};
use crossbeam::channel::{unbounded, Receiver, Sender};
use ocp_distsim::{ConvergenceError, RunTrace};
use ocp_mesh::{gather_row_east, gather_row_west, BitGrid, Grid, TopologyKind};

/// `1` where at least two of the four inputs are `1`.
#[inline]
fn maj2(a: u64, b: u64, c: u64, d: u64) -> u64 {
    (a & b) | ((a | b) & (c | d)) | (c & d)
}

/// `1` where at least three of the four inputs are `1`.
#[inline]
fn maj3(a: u64, b: u64, c: u64, d: u64) -> u64 {
    ((a & b) & (c | d)) | ((c & d) & (a | b))
}

/// The per-word transition of one labeling phase.
#[derive(Clone, Copy)]
enum WordRule {
    /// Phase 1, Definition 2a (`cur` = unsafe bits).
    SafetyTwoNeighbors,
    /// Phase 1, Definition 2b (`cur` = unsafe bits).
    SafetyBothDimensions,
    /// Phase 2, Definition 3 (`cur` = disabled bits).
    Enablement,
}

impl WordRule {
    /// 64 nodes' lockstep update in one word. `w/e/n/s` carry the
    /// neighbor bit of each node in the matching direction; padding bits
    /// stay zero because `nonfaulty` is zero there (phase 1) and `cur` is
    /// zero there (phase 2).
    #[inline]
    fn step(self, cur: u64, [w, e, n, s]: [u64; 4], faulty: u64, nonfaulty: u64) -> u64 {
        match self {
            WordRule::SafetyTwoNeighbors => cur | (maj2(w, e, n, s) & nonfaulty),
            WordRule::SafetyBothDimensions => cur | ((w | e) & (n | s) & nonfaulty),
            WordRule::Enablement => cur & (faulty | maj3(w, e, n, s)),
        }
    }
}

/// Status messages per exchange round — identical accounting to the
/// lockstep executors: every nonfaulty node sends its state over each of
/// its real links. Computed in closed form (O(faults), not O(nodes)):
/// a torus node always has four real links (wrap links exist even at
/// degenerate sizes, with multiplicity), a mesh node loses one per
/// machine border it sits on.
fn messages_per_round(map: &FaultMap) -> u64 {
    let t = map.topology();
    let (w, h) = (u64::from(t.width()), u64::from(t.height()));
    let wrap = t.kind() == TopologyKind::Torus;
    let all: u64 = if wrap {
        4 * w * h
    } else {
        4 * w * h - 2 * w - 2 * h
    };
    let mut faulty_links = 0u64;
    for (i, health) in map.health_grid().as_slice().iter().enumerate() {
        if *health == Health::Faulty {
            faulty_links += if wrap {
                4
            } else {
                let (x, y) = (i as u64 % w, i as u64 / w);
                4 - u64::from(x == 0)
                    - u64::from(x == w - 1)
                    - u64::from(y == 0)
                    - u64::from(y == h - 1)
            };
        }
    }
    all - faulty_links
}

/// Runs one phase's word kernel to quiescence (or the round cap).
fn run_bits(
    init: &BitGrid,
    faulty: &BitGrid,
    nonfaulty: &BitGrid,
    rule: WordRule,
    threads: usize,
    max_rounds: u32,
    per_round: u64,
) -> (BitGrid, RunTrace) {
    let shards = threads.min(init.topology().height() as usize);
    if shards <= 1 {
        run_single(init, faulty, nonfaulty, rule, max_rounds, per_round)
    } else {
        run_tiled(init, faulty, nonfaulty, rule, shards, max_rounds, per_round)
    }
}

/// Single-threaded kernel with the row-level frontier.
fn run_single(
    init: &BitGrid,
    faulty: &BitGrid,
    nonfaulty: &BitGrid,
    rule: WordRule,
    max_rounds: u32,
    per_round: u64,
) -> (BitGrid, RunTrace) {
    let t = init.topology();
    let h = t.height() as usize;
    let wpr = init.words_per_row();
    let wrap = t.kind() == TopologyKind::Torus;

    let mut cur = init.clone();
    let mut nxt = init.clone();
    let zeros = vec![0u64; wpr];
    let mut gw = vec![0u64; wpr];
    let mut ge = vec![0u64; wpr];
    // Row frontier: round 1 sweeps all rows; afterwards only rows within
    // distance 1 of a changed row can change.
    let mut dirty = vec![true; h];
    let mut row_changed = vec![false; h];

    let mut changes_per_round = Vec::new();
    let mut messages_sent = 0u64;
    let mut converged = false;

    while (changes_per_round.len() as u32) < max_rounds {
        let mut changed = 0u32;
        for y in 0..h {
            let gy = y as u32;
            if !dirty[y] {
                row_changed[y] = false;
                nxt.row_mut(gy).copy_from_slice(cur.row(gy));
                continue;
            }
            cur.gather_west(gy, &mut gw);
            cur.gather_east(gy, &mut ge);
            let north = cur.row_above(gy).unwrap_or(&zeros);
            let south = cur.row_below(gy).unwrap_or(&zeros);
            let crow = cur.row(gy);
            let frow = faulty.row(gy);
            let nfrow = nonfaulty.row(gy);
            let mut diff = 0u32;
            let out = nxt.row_mut(gy);
            for k in 0..wpr {
                let v = rule.step(
                    crow[k],
                    [gw[k], ge[k], north[k], south[k]],
                    frow[k],
                    nfrow[k],
                );
                diff += (v ^ crow[k]).count_ones();
                out[k] = v;
            }
            changed += diff;
            row_changed[y] = diff > 0;
        }
        messages_sent += per_round;
        changes_per_round.push(changed);
        if changed == 0 {
            converged = true;
            break;
        }
        std::mem::swap(&mut cur, &mut nxt);
        for y in 0..h {
            let above = if y + 1 < h {
                row_changed[y + 1]
            } else {
                wrap && row_changed[0]
            };
            let below = if y > 0 {
                row_changed[y - 1]
            } else {
                wrap && row_changed[h - 1]
            };
            dirty[y] = row_changed[y] || above || below;
        }
    }
    (
        cur,
        RunTrace::new(changes_per_round, messages_sent, converged),
    )
}

/// Multi-threaded tile kernel: row bands on scoped threads, halo rows
/// exchanged over crossbeam channels each round, per-band row frontiers
/// (band edges go dirty when a received halo row differs from the
/// previous round's).
fn run_tiled(
    init: &BitGrid,
    faulty: &BitGrid,
    nonfaulty: &BitGrid,
    rule: WordRule,
    shards: usize,
    max_rounds: u32,
    per_round: u64,
) -> (BitGrid, RunTrace) {
    let t = init.topology();
    let h = t.height() as usize;
    let wpr = init.words_per_row();
    let wrap = t.kind() == TopologyKind::Torus;

    let plans: Vec<(usize, usize)> = (0..shards)
        .map(|i| (i * h / shards, (i + 1) * h / shards))
        .collect();

    // Directed halo channels, wired exactly like the sharded executor:
    // `to_above[i]` carries band i's top row to the band above, which
    // receives it as `from_below`; the torus wraps top to bottom.
    let mut to_above: Vec<Option<Sender<Vec<u64>>>> = (0..shards).map(|_| None).collect();
    let mut to_below: Vec<Option<Sender<Vec<u64>>>> = (0..shards).map(|_| None).collect();
    let mut from_below: Vec<Option<Receiver<Vec<u64>>>> = (0..shards).map(|_| None).collect();
    let mut from_above: Vec<Option<Receiver<Vec<u64>>>> = (0..shards).map(|_| None).collect();
    for i in 0..shards {
        let above = if i + 1 < shards {
            Some(i + 1)
        } else if wrap {
            Some(0)
        } else {
            None
        };
        if let Some(j) = above {
            let (tx, rx) = unbounded();
            to_above[i] = Some(tx);
            from_below[j] = Some(rx);
            let (tx, rx) = unbounded();
            to_below[j] = Some(tx);
            from_above[i] = Some(rx);
        }
    }

    let (report_tx, report_rx) = unbounded::<u32>();
    let mut control_txs = Vec::with_capacity(shards);
    let mut control_rxs = Vec::with_capacity(shards);
    for _ in 0..shards {
        let (tx, rx) = unbounded::<bool>();
        control_txs.push(tx);
        control_rxs.push(rx);
    }
    let (result_tx, result_rx) = unbounded::<(usize, Vec<u64>)>();

    let mut changes_per_round: Vec<u32> = Vec::new();
    let mut converged = false;

    std::thread::scope(|scope| {
        for (i, &(start, end)) in plans.iter().enumerate() {
            let to_above = to_above[i].take();
            let to_below = to_below[i].take();
            let from_below = from_below[i].take();
            let from_above = from_above[i].take();
            let report = report_tx.clone();
            let control = control_rxs[i].clone();
            let results = result_tx.clone();
            scope.spawn(move || {
                tile_worker(
                    init, faulty, nonfaulty, rule, start, end, to_above, to_below, from_below,
                    from_above, report, control, results,
                );
            });
        }

        // Coordinator: reduce per-band change counts, broadcast go/stop.
        loop {
            let mut changed = 0u32;
            for _ in 0..shards {
                changed += report_rx.recv().expect("tile died before reporting");
            }
            changes_per_round.push(changed);
            let go = changed > 0 && (changes_per_round.len() as u32) < max_rounds;
            if changed == 0 {
                converged = true;
            }
            for tx in &control_txs {
                tx.send(go).expect("tile died before control");
            }
            if !go {
                break;
            }
        }
    });
    drop(result_tx);

    let mut out = init.clone();
    while let Ok((start, band)) = result_rx.recv() {
        for (offset, row) in band.chunks(wpr).enumerate() {
            out.row_mut((start + offset) as u32).copy_from_slice(row);
        }
    }

    let messages_sent = per_round * changes_per_round.len() as u64;
    (
        out,
        RunTrace::new(changes_per_round, messages_sent, converged),
    )
}

#[allow(clippy::too_many_arguments)]
fn tile_worker(
    init: &BitGrid,
    faulty: &BitGrid,
    nonfaulty: &BitGrid,
    rule: WordRule,
    start: usize,
    end: usize,
    to_above: Option<Sender<Vec<u64>>>,
    to_below: Option<Sender<Vec<u64>>>,
    from_below: Option<Receiver<Vec<u64>>>,
    from_above: Option<Receiver<Vec<u64>>>,
    report: Sender<u32>,
    control: Receiver<bool>,
    results: Sender<(usize, Vec<u64>)>,
) {
    let t = init.topology();
    let width = t.width();
    let wrap = t.kind() == TopologyKind::Torus;
    let wpr = init.words_per_row();
    let rows = end - start;

    let mut cur: Vec<u64> = Vec::with_capacity(rows * wpr);
    for y in start..end {
        cur.extend_from_slice(init.row(y as u32));
    }
    let mut nxt = cur.clone();
    let zeros = vec![0u64; wpr];
    let mut gw = vec![0u64; wpr];
    let mut ge = vec![0u64; wpr];
    let mut prev_halo_below = zeros.clone();
    let mut prev_halo_above = zeros.clone();
    let mut row_changed = vec![false; rows];
    let mut dirty = vec![true; rows];
    let mut first = true;

    loop {
        // Halo exchange. Send before receive: the channels are unbounded,
        // so this cannot deadlock, and FIFO order keeps rounds aligned.
        if let Some(tx) = &to_above {
            tx.send(cur[(rows - 1) * wpr..].to_vec())
                .expect("halo peer died");
        }
        if let Some(tx) = &to_below {
            tx.send(cur[..wpr].to_vec()).expect("halo peer died");
        }
        let halo_below = match &from_below {
            Some(rx) => rx.recv().expect("halo peer died"),
            None => zeros.clone(),
        };
        let halo_above = match &from_above {
            Some(rx) => rx.recv().expect("halo peer died"),
            None => zeros.clone(),
        };

        // Band-local row frontier: interior rows go dirty off neighbor
        // rows' changes; edge rows additionally off a changed halo.
        let below_changed = first || halo_below != prev_halo_below;
        let above_changed = first || halo_above != prev_halo_above;
        if !first {
            for ly in 0..rows {
                let south = if ly > 0 {
                    row_changed[ly - 1]
                } else {
                    below_changed
                };
                let north = if ly + 1 < rows {
                    row_changed[ly + 1]
                } else {
                    above_changed
                };
                dirty[ly] = row_changed[ly] || south || north;
            }
        }

        let mut changed = 0u32;
        for ly in 0..rows {
            if !dirty[ly] {
                row_changed[ly] = false;
                nxt[ly * wpr..(ly + 1) * wpr].copy_from_slice(&cur[ly * wpr..(ly + 1) * wpr]);
                continue;
            }
            let gy = (start + ly) as u32;
            let crow = &cur[ly * wpr..(ly + 1) * wpr];
            gather_row_west(crow, width, wrap, &mut gw);
            gather_row_east(crow, width, wrap, &mut ge);
            let north: &[u64] = if ly + 1 < rows {
                &cur[(ly + 1) * wpr..(ly + 2) * wpr]
            } else {
                &halo_above
            };
            let south: &[u64] = if ly > 0 {
                &cur[(ly - 1) * wpr..ly * wpr]
            } else {
                &halo_below
            };
            let frow = faulty.row(gy);
            let nfrow = nonfaulty.row(gy);
            let mut diff = 0u32;
            for k in 0..wpr {
                let v = rule.step(
                    crow[k],
                    [gw[k], ge[k], north[k], south[k]],
                    frow[k],
                    nfrow[k],
                );
                diff += (v ^ crow[k]).count_ones();
                nxt[ly * wpr + k] = v;
            }
            changed += diff;
            row_changed[ly] = diff > 0;
        }
        std::mem::swap(&mut cur, &mut nxt);
        prev_halo_below = halo_below;
        prev_halo_above = halo_above;
        first = false;

        report.send(changed).expect("coordinator died");
        if !control.recv().expect("coordinator died") {
            break;
        }
    }
    results.send((start, cur)).expect("collector died");
}

/// Bit mask of the faulty nodes.
fn faulty_bits(map: &FaultMap) -> BitGrid {
    BitGrid::from_cells(map.topology(), map.health_grid().as_slice(), |&h| {
        h == Health::Faulty
    })
}

/// Bit mask of the nonfaulty nodes.
fn nonfaulty_bits(map: &FaultMap) -> BitGrid {
    BitGrid::from_cells(map.topology(), map.health_grid().as_slice(), |&h| {
        h == Health::Healthy
    })
}

/// Phase 1 on the bit engine. `warm` resumes from a previous converged
/// safety grid (the maintenance warm-start: faults only ever grow the
/// unsafe set); `None` is the cold start where only faults are unsafe.
///
/// Low-level like [`compute_safety`](crate::labeling::safety::compute_safety):
/// a stall at `max_rounds` is only reported through the trace. Prefer
/// [`try_compute_safety_bits`] when the grid is treated as a fixpoint.
///
/// # Panics
/// Panics if `warm` covers a different topology than `map`.
pub fn compute_safety_bits(
    map: &FaultMap,
    rule: SafetyRule,
    warm: Option<&Grid<SafetyState>>,
    threads: usize,
    max_rounds: u32,
) -> SafetyOutcome {
    let t = map.topology();
    let word_rule = match rule {
        SafetyRule::TwoUnsafeNeighbors => WordRule::SafetyTwoNeighbors,
        SafetyRule::BothDimensions => WordRule::SafetyBothDimensions,
    };
    let faulty = faulty_bits(map);
    let nonfaulty = nonfaulty_bits(map);
    // Initial unsafe set: the faults, plus — warm — everything the
    // previous fixpoint already labeled unsafe.
    let init = match warm {
        None => faulty.clone(),
        Some(prev) => {
            assert_eq!(
                t,
                prev.topology(),
                "warm-start safety grid belongs to a different machine"
            );
            let mut bits = BitGrid::from_cells(t, prev.as_slice(), |&s| s == SafetyState::Unsafe);
            bits.union_with(&faulty);
            bits
        }
    };
    let (bits, trace) = run_bits(
        &init,
        &faulty,
        &nonfaulty,
        word_rule,
        threads,
        max_rounds,
        messages_per_round(map),
    );
    SafetyOutcome {
        grid: bits.unpack(|b| {
            if b {
                SafetyState::Unsafe
            } else {
                SafetyState::Safe
            }
        }),
        trace,
    }
}

/// [`compute_safety_bits`] with the convergence watchdog.
pub fn try_compute_safety_bits(
    map: &FaultMap,
    rule: SafetyRule,
    warm: Option<&Grid<SafetyState>>,
    threads: usize,
    max_rounds: u32,
) -> Result<SafetyOutcome, ConvergenceError> {
    let out = compute_safety_bits(map, rule, warm, threads, max_rounds);
    if out.trace.converged {
        Ok(out)
    } else {
        Err(
            ConvergenceError::round_cap_from_trace(max_rounds, &out.trace)
                .with_label("phase-1 safety labeling"),
        )
    }
}

/// Phase 2 on the bit engine, consuming phase 1's converged safety grid.
///
/// # Panics
/// Panics if the safety grid covers a different topology than `map`.
pub fn compute_enablement_bits(
    map: &FaultMap,
    safety: &Grid<SafetyState>,
    threads: usize,
    max_rounds: u32,
) -> EnablementOutcome {
    let t = map.topology();
    assert_eq!(
        t,
        safety.topology(),
        "safety grid belongs to a different machine"
    );
    let faulty = faulty_bits(map);
    let nonfaulty = nonfaulty_bits(map);
    // Initially disabled: the unsafe nodes plus (defensively) all faults.
    let mut init = BitGrid::from_cells(t, safety.as_slice(), |&s| s == SafetyState::Unsafe);
    init.union_with(&faulty);
    let (bits, trace) = run_bits(
        &init,
        &faulty,
        &nonfaulty,
        WordRule::Enablement,
        threads,
        max_rounds,
        messages_per_round(map),
    );
    EnablementOutcome {
        grid: bits.unpack(|b| {
            if b {
                ActivationState::Disabled
            } else {
                ActivationState::Enabled
            }
        }),
        trace,
    }
}

/// [`compute_enablement_bits`] with the convergence watchdog.
pub fn try_compute_enablement_bits(
    map: &FaultMap,
    safety: &Grid<SafetyState>,
    threads: usize,
    max_rounds: u32,
) -> Result<EnablementOutcome, ConvergenceError> {
    let out = compute_enablement_bits(map, safety, threads, max_rounds);
    if out.trace.converged {
        Ok(out)
    } else {
        Err(
            ConvergenceError::round_cap_from_trace(max_rounds, &out.trace)
                .with_label("phase-2 enablement labeling"),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::labeling::enablement::compute_enablement;
    use crate::labeling::safety::compute_safety;
    use ocp_distsim::Executor;
    use ocp_mesh::{Coord, Topology};
    use rand::{rngs::SmallRng, seq::SliceRandom, Rng, SeedableRng};

    fn random_map(t: Topology, faults: usize, seed: u64) -> FaultMap {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut all: Vec<Coord> = t.coords().collect();
        all.shuffle(&mut rng);
        FaultMap::new(t, all.into_iter().take(faults))
    }

    fn check_both_phases(map: &FaultMap, rule: SafetyRule, threads: usize) {
        let cap = 400;
        let ref_safety = compute_safety(map, rule, Executor::Sequential, cap);
        let bit_safety = compute_safety_bits(map, rule, None, threads, cap);
        assert_eq!(bit_safety.grid, ref_safety.grid, "{rule:?} t={threads}");
        assert_eq!(bit_safety.trace, ref_safety.trace, "{rule:?} t={threads}");

        let ref_enable = compute_enablement(map, &ref_safety.grid, Executor::Sequential, cap);
        let bit_enable = compute_enablement_bits(map, &bit_safety.grid, threads, cap);
        assert_eq!(bit_enable.grid, ref_enable.grid, "{rule:?} t={threads}");
        assert_eq!(bit_enable.trace, ref_enable.trace, "{rule:?} t={threads}");
    }

    #[test]
    fn matches_sequential_across_word_boundaries() {
        // Widths straddling the 64-bit word edge, both kinds, both rules.
        for &(w, h) in &[(9u32, 7u32), (63, 5), (64, 4), (65, 4), (70, 9)] {
            for kind in [Topology::mesh(w, h), Topology::torus(w, h)] {
                let map = random_map(kind, (w * h / 12) as usize, u64::from(w * 1000 + h));
                for rule in [SafetyRule::TwoUnsafeNeighbors, SafetyRule::BothDimensions] {
                    check_both_phases(&map, rule, 1);
                }
            }
        }
    }

    #[test]
    fn tiled_engine_matches_across_thread_counts() {
        let t = Topology::mesh(40, 33);
        let map = random_map(t, 60, 7);
        for threads in [2, 3, 8, 64] {
            check_both_phases(&map, SafetyRule::BothDimensions, threads);
        }
        let t = Topology::torus(31, 17);
        let map = random_map(t, 30, 9);
        for threads in [2, 5, 17] {
            check_both_phases(&map, SafetyRule::TwoUnsafeNeighbors, threads);
        }
    }

    #[test]
    fn warm_start_matches_warm_protocol_semantics() {
        // Bit warm start must reproduce the maintenance warm run: initial
        // state = previous fixpoint + new faults.
        let t = Topology::mesh(24, 24);
        let mut rng = SmallRng::seed_from_u64(42);
        for trial in 0..5 {
            let base = random_map(t, 30, 100 + trial);
            let cold = compute_safety(&base, SafetyRule::BothDimensions, Executor::Sequential, 400);
            assert!(cold.trace.converged);
            let extra = Coord::new(rng.gen_range(0..24), rng.gen_range(0..24));
            let updated = base.with_additional_fault(extra);

            // Oracle: a cold run on the updated map reaches the same
            // fixpoint (phase 1 is monotone in the fault set)...
            let oracle = compute_safety(
                &updated,
                SafetyRule::BothDimensions,
                Executor::Sequential,
                400,
            );
            let warm = compute_safety_bits(
                &updated,
                SafetyRule::BothDimensions,
                Some(&cold.grid),
                1,
                400,
            );
            // ...and the warm bit run lands on it.
            assert_eq!(warm.grid, oracle.grid, "trial {trial}");
            assert!(warm.trace.converged);
        }
    }

    #[test]
    fn fault_free_machine_converges_in_one_quiet_round() {
        for t in [Topology::mesh(10, 10), Topology::torus(65, 3)] {
            let map = FaultMap::healthy(t);
            let out = compute_safety_bits(&map, SafetyRule::BothDimensions, None, 1, 10);
            assert_eq!(out.trace.changes_per_round, vec![0]);
            assert!(out.trace.converged);
            assert_eq!(out.grid.count_where(|&s| s == SafetyState::Unsafe), 0);
        }
    }

    #[test]
    fn round_cap_surfaces_as_convergence_error() {
        // A long diagonal chain needs many phase-1 rounds; cap 1 stalls.
        let faults: Vec<Coord> = (0..8).map(|i| Coord::new(i, i)).collect();
        let map = FaultMap::new(Topology::mesh(10, 10), faults);
        let err = try_compute_safety_bits(&map, SafetyRule::BothDimensions, None, 1, 1)
            .expect_err("cap of 1 cannot converge");
        let text = err.to_string();
        assert!(text.contains("phase-1 safety labeling"), "{text}");
        assert!(text.contains("1 rounds"), "{text}");
    }

    #[test]
    fn dense_random_sweep_small_machines() {
        let mut rng = SmallRng::seed_from_u64(0xB175);
        for trial in 0..30u64 {
            let w = rng.gen_range(1..14);
            let h = rng.gen_range(1..14);
            let t = if rng.gen_bool(0.5) {
                Topology::mesh(w, h)
            } else {
                Topology::torus(w, h)
            };
            let map = random_map(t, rng.gen_range(0..(t.len() / 2 + 1)), trial);
            let rule = if rng.gen_bool(0.5) {
                SafetyRule::TwoUnsafeNeighbors
            } else {
                SafetyRule::BothDimensions
            };
            check_both_phases(&map, rule, rng.gen_range(1..5));
        }
    }
}
