//! Machine-checking the paper's theorems on concrete outcomes.
//!
//! Every claim Section 4 proves is turned into an executable check over a
//! converged [`PipelineOutcome`]:
//!
//! | Check | Paper claim |
//! |---|---|
//! | [`Violation::FaultNotCovered`] | faults are unsafe and disabled |
//! | [`Violation::BlockNotRectangle`] | faulty blocks are rectangles (Section 3) |
//! | [`Violation::BlocksTooClose`] | block distance ≥ 3 (Def 2a) / ≥ 2 (Def 2b) |
//! | [`Violation::RegionNotConvex`] | Theorem 1 |
//! | [`Violation::CornerNotFaulty`] | Lemma 1 |
//! | [`Violation::RegionNotMinimal`] | Theorem 2 (region = orthogonal convex closure of its faults) |
//! | [`Violation::CorollaryViolated`] | Corollary (regions of a block cost ≤ the block-wide minimal polygon) |
//! | [`Violation::RegionsTooClose`] | disabled regions pairwise distance ≥ 2 |
//! | [`Violation::RegionOutsideBlock`] | phase 2 only removes nodes, never adds |
//!
//! Since the certificate work (`DESIGN.md` §10), [`verify`] is a thin
//! wrapper over [`EpochCertificate`](crate::certificate::EpochCertificate):
//! it distills the outcome into a certificate and immediately re-checks
//! it. That gives tests and the serving publish path one shared, heavily
//! exercised checker — and makes `verify` stricter than it used to be,
//! because the checker re-extracts blocks/regions from the raw grids and
//! cross-checks the outcome's declared vectors against them
//! ([`Violation::OutcomeInconsistent`]).

use crate::certificate::EpochCertificate;
use crate::pipeline::PipelineOutcome;
use crate::status::FaultMap;
use ocp_mesh::Coord;
use std::fmt;

/// One broken invariant.
#[derive(Clone, Debug, PartialEq)]
pub enum Violation {
    /// A faulty node ended up safe or enabled.
    FaultNotCovered {
        /// The fault in question.
        fault: Coord,
    },
    /// A faulty block is not a full rectangle.
    BlockNotRectangle {
        /// Index into `outcome.blocks`.
        block: usize,
    },
    /// Two faulty blocks are closer than the rule's bound.
    BlocksTooClose {
        /// Indices into `outcome.blocks`.
        blocks: (usize, usize),
        /// Observed distance.
        distance: u32,
        /// Required minimum.
        required: u32,
    },
    /// A disabled region is not orthogonally convex (Theorem 1).
    RegionNotConvex {
        /// Index into `outcome.regions`.
        region: usize,
    },
    /// A corner node of a disabled region is nonfaulty (Lemma 1).
    CornerNotFaulty {
        /// Index into `outcome.regions`.
        region: usize,
        /// The offending corner (planar coordinates).
        corner: Coord,
    },
    /// A disabled region differs from the orthogonal convex closure of its
    /// faults (Theorem 2: it must be the smallest such polygon).
    RegionNotMinimal {
        /// Index into `outcome.regions`.
        region: usize,
        /// Region size vs closure size.
        sizes: (usize, usize),
    },
    /// The disabled regions of a block contain more nonfaulty nodes than
    /// the smallest orthogonal convex polygon covering all its faults.
    CorollaryViolated {
        /// Index into `outcome.blocks`.
        block: usize,
        /// Nonfaulty nodes in the block's regions vs in the closure.
        costs: (usize, usize),
    },
    /// Two disabled regions are closer than distance 2.
    RegionsTooClose {
        /// Indices into `outcome.regions`.
        regions: (usize, usize),
        /// Observed distance.
        distance: u32,
    },
    /// A disabled node is outside every faulty block.
    RegionOutsideBlock {
        /// Index into `outcome.regions`.
        region: usize,
    },
    /// A phase failed to converge within its round cap.
    NotConverged {
        /// `"safety"` or `"enablement"`.
        phase: &'static str,
    },
    /// The structural grid digest recorded in a certificate differs from
    /// the digest of the outcome being checked: the certificate describes
    /// a different machine state.
    DigestMismatch {
        /// Digest the certificate carries.
        expected: u64,
        /// Digest of the outcome under check.
        actual: u64,
    },
    /// A certificate field (rule, topology, fault count, or a distilled
    /// block/region fact) disagrees with the outcome under check.
    CertificateMismatch {
        /// Which field disagreed.
        what: String,
    },
    /// The outcome's declared `blocks`/`regions` vectors disagree with the
    /// components re-extracted from its own safety/activation grids — the
    /// outcome is internally inconsistent.
    OutcomeInconsistent {
        /// What disagreed.
        what: String,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// What a successful verification covered.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct VerifyReport {
    /// Blocks whose rectangularity was checked planarly.
    pub blocks_checked: usize,
    /// Regions whose convexity/minimality was checked planarly.
    pub regions_checked: usize,
    /// Blocks that wrap all the way around a torus: no planar embedding
    /// exists, so the (mesh-oriented) geometric claims are skipped for
    /// them. Always 0 on meshes; only occurs at high relative fault
    /// density on small tori.
    pub wrapped_blocks: usize,
    /// Regions skipped for the same reason.
    pub wrapped_regions: usize,
}

/// Checks every Section 3/4 claim against a converged outcome. Returns all
/// violations found (empty error never occurs — `Ok(report)` means
/// verified, with the report saying what was covered).
///
/// Implemented by distilling the outcome into an
/// [`EpochCertificate`](crate::certificate::EpochCertificate) and
/// re-checking it — the identical code path the serving layer runs before
/// every epoch publish.
pub fn verify(map: &FaultMap, outcome: &PipelineOutcome) -> Result<VerifyReport, Vec<Violation>> {
    EpochCertificate::describe(0, map, outcome).check(map, outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::labeling::enablement::ActivationState;
    use crate::labeling::safety::{SafetyRule, SafetyState};
    use crate::pipeline::{run_pipeline, PipelineConfig};
    use ocp_mesh::Topology;

    fn c(x: i32, y: i32) -> Coord {
        Coord::new(x, y)
    }

    fn check(t: Topology, faults: &[Coord], rule: SafetyRule) {
        let map = FaultMap::new(t, faults.iter().copied());
        let out = run_pipeline(
            &map,
            &PipelineConfig {
                rule,
                ..PipelineConfig::default()
            },
        );
        if let Err(v) = verify(&map, &out) {
            panic!("{rule:?} on {t:?} with {faults:?}: {v:?}");
        }
    }

    #[test]
    fn paper_examples_verify() {
        for rule in [SafetyRule::TwoUnsafeNeighbors, SafetyRule::BothDimensions] {
            check(Topology::mesh(6, 6), &[c(1, 3), c(2, 1), c(3, 2)], rule);
            check(Topology::mesh(8, 8), &[c(3, 3), c(4, 4)], rule);
            check(Topology::mesh(8, 8), &[], rule);
        }
    }

    #[test]
    fn random_patterns_verify_mesh_and_torus() {
        use rand::{rngs::SmallRng, seq::SliceRandom, SeedableRng};
        for t in [Topology::mesh(20, 20), Topology::torus(20, 20)] {
            for rule in [SafetyRule::TwoUnsafeNeighbors, SafetyRule::BothDimensions] {
                for seed in 0..10u64 {
                    let mut rng = SmallRng::seed_from_u64(seed);
                    let mut all: Vec<Coord> = t.coords().collect();
                    all.shuffle(&mut rng);
                    let faults: Vec<Coord> = all.into_iter().take(24).collect();
                    check(t, &faults, rule);
                }
            }
        }
    }

    #[test]
    fn verify_detects_tampered_outcome() {
        let map = FaultMap::new(Topology::mesh(8, 8), [c(3, 3), c(4, 4)]);
        let mut out = run_pipeline(&map, &PipelineConfig::default());
        // Enable a faulty node by hand — verification must object.
        out.activation.set(c(3, 3), ActivationState::Enabled);
        out.safety.set(c(3, 3), SafetyState::Safe);
        let errs = verify(&map, &out).unwrap_err();
        assert!(errs
            .iter()
            .any(|v| matches!(v, Violation::FaultNotCovered { .. })));
    }
}
