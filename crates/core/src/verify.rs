//! Machine-checking the paper's theorems on concrete outcomes.
//!
//! Every claim Section 4 proves is turned into an executable check over a
//! converged [`PipelineOutcome`]:
//!
//! | Check | Paper claim |
//! |---|---|
//! | [`Violation::FaultNotCovered`] | faults are unsafe and disabled |
//! | [`Violation::BlockNotRectangle`] | faulty blocks are rectangles (Section 3) |
//! | [`Violation::BlocksTooClose`] | block distance ≥ 3 (Def 2a) / ≥ 2 (Def 2b) |
//! | [`Violation::RegionNotConvex`] | Theorem 1 |
//! | [`Violation::CornerNotFaulty`] | Lemma 1 |
//! | [`Violation::RegionNotMinimal`] | Theorem 2 (region = orthogonal convex closure of its faults) |
//! | [`Violation::CorollaryViolated`] | Corollary (regions of a block cost ≤ the block-wide minimal polygon) |
//! | [`Violation::RegionsTooClose`] | disabled regions pairwise distance ≥ 2 |
//! | [`Violation::RegionOutsideBlock`] | phase 2 only removes nodes, never adds |

use crate::labeling::enablement::ActivationState;
use crate::labeling::safety::{SafetyRule, SafetyState};
use crate::pipeline::PipelineOutcome;
use crate::status::FaultMap;
use ocp_geometry::{corner_nodes, is_orthogonally_convex, orthogonal_convex_closure};
use ocp_mesh::Coord;
use std::fmt;

/// One broken invariant.
#[derive(Clone, Debug, PartialEq)]
pub enum Violation {
    /// A faulty node ended up safe or enabled.
    FaultNotCovered {
        /// The fault in question.
        fault: Coord,
    },
    /// A faulty block is not a full rectangle.
    BlockNotRectangle {
        /// Index into `outcome.blocks`.
        block: usize,
    },
    /// Two faulty blocks are closer than the rule's bound.
    BlocksTooClose {
        /// Indices into `outcome.blocks`.
        blocks: (usize, usize),
        /// Observed distance.
        distance: u32,
        /// Required minimum.
        required: u32,
    },
    /// A disabled region is not orthogonally convex (Theorem 1).
    RegionNotConvex {
        /// Index into `outcome.regions`.
        region: usize,
    },
    /// A corner node of a disabled region is nonfaulty (Lemma 1).
    CornerNotFaulty {
        /// Index into `outcome.regions`.
        region: usize,
        /// The offending corner (planar coordinates).
        corner: Coord,
    },
    /// A disabled region differs from the orthogonal convex closure of its
    /// faults (Theorem 2: it must be the smallest such polygon).
    RegionNotMinimal {
        /// Index into `outcome.regions`.
        region: usize,
        /// Region size vs closure size.
        sizes: (usize, usize),
    },
    /// The disabled regions of a block contain more nonfaulty nodes than
    /// the smallest orthogonal convex polygon covering all its faults.
    CorollaryViolated {
        /// Index into `outcome.blocks`.
        block: usize,
        /// Nonfaulty nodes in the block's regions vs in the closure.
        costs: (usize, usize),
    },
    /// Two disabled regions are closer than distance 2.
    RegionsTooClose {
        /// Indices into `outcome.regions`.
        regions: (usize, usize),
        /// Observed distance.
        distance: u32,
    },
    /// A disabled node is outside every faulty block.
    RegionOutsideBlock {
        /// Index into `outcome.regions`.
        region: usize,
    },
    /// A phase failed to converge within its round cap.
    NotConverged {
        /// `"safety"` or `"enablement"`.
        phase: &'static str,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// What a successful verification covered.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct VerifyReport {
    /// Blocks whose rectangularity was checked planarly.
    pub blocks_checked: usize,
    /// Regions whose convexity/minimality was checked planarly.
    pub regions_checked: usize,
    /// Blocks that wrap all the way around a torus: no planar embedding
    /// exists, so the (mesh-oriented) geometric claims are skipped for
    /// them. Always 0 on meshes; only occurs at high relative fault
    /// density on small tori.
    pub wrapped_blocks: usize,
    /// Regions skipped for the same reason.
    pub wrapped_regions: usize,
}

/// Checks every Section 3/4 claim against a converged outcome. Returns all
/// violations found (empty error never occurs — `Ok(report)` means
/// verified, with the report saying what was covered).
pub fn verify(map: &FaultMap, outcome: &PipelineOutcome) -> Result<VerifyReport, Vec<Violation>> {
    let mut violations = Vec::new();
    let mut report = VerifyReport::default();

    if !outcome.safety_trace.converged {
        violations.push(Violation::NotConverged { phase: "safety" });
    }
    if !outcome.enablement_trace.converged {
        violations.push(Violation::NotConverged {
            phase: "enablement",
        });
    }

    // Faults must be unsafe and disabled.
    for fault in map.faults() {
        if *outcome.safety.get(fault) != SafetyState::Unsafe
            || *outcome.activation.get(fault) != ActivationState::Disabled
        {
            violations.push(Violation::FaultNotCovered { fault });
        }
    }

    // Blocks: rectangles, pairwise distance.
    for (i, block) in outcome.blocks.iter().enumerate() {
        match &block.planar {
            None => report.wrapped_blocks += 1,
            Some(_) => {
                report.blocks_checked += 1;
                if !block.is_rectangle() {
                    violations.push(Violation::BlockNotRectangle { block: i });
                }
            }
        }
    }
    let required = match outcome.rule {
        SafetyRule::TwoUnsafeNeighbors => 3,
        SafetyRule::BothDimensions => 2,
    };
    let topology = map.topology();
    for i in 0..outcome.blocks.len() {
        for j in i + 1..outcome.blocks.len() {
            let d = topo_distance(topology, &outcome.blocks[i].cells, &outcome.blocks[j].cells);
            if d < required {
                violations.push(Violation::BlocksTooClose {
                    blocks: (i, j),
                    distance: d,
                    required,
                });
            }
        }
    }

    // Regions: convexity, corner lemma, minimality, containment.
    for (i, region) in outcome.regions.iter().enumerate() {
        let (Some(planar), Some(planar_faults)) = (&region.planar, &region.planar_faults) else {
            report.wrapped_regions += 1;
            continue;
        };
        report.regions_checked += 1;
        if !is_orthogonally_convex(planar) {
            violations.push(Violation::RegionNotConvex { region: i });
        }
        for corner in corner_nodes(planar) {
            if !planar_faults.contains(corner) {
                violations.push(Violation::CornerNotFaulty { region: i, corner });
            }
        }
        let closure = orthogonal_convex_closure(planar_faults);
        if &closure != planar {
            violations.push(Violation::RegionNotMinimal {
                region: i,
                sizes: (planar.len(), closure.len()),
            });
        }
        let covered = outcome
            .blocks
            .iter()
            .any(|b| b.cells.is_superset(&region.cells));
        if !covered {
            violations.push(Violation::RegionOutsideBlock { region: i });
        }
    }

    // Regions pairwise distance ≥ 2.
    for i in 0..outcome.regions.len() {
        for j in i + 1..outcome.regions.len() {
            let d = topo_distance(
                topology,
                &outcome.regions[i].cells,
                &outcome.regions[j].cells,
            );
            if d < 2 {
                violations.push(Violation::RegionsTooClose {
                    regions: (i, j),
                    distance: d,
                });
            }
        }
    }

    // Corollary, per block: nonfaulty cost of the block's regions vs the
    // smallest orthogonal convex polygon covering all the block's faults.
    for (bi, (block, group)) in outcome
        .blocks
        .iter()
        .zip(outcome.regions_per_block())
        .enumerate()
    {
        let Some(planar_block) = &block.planar else {
            continue;
        };
        // Map block faults into the block's planar embedding.
        let mapping =
            ocp_geometry::Region::unwrap_mapping(topology, &block.cells.iter().collect::<Vec<_>>());
        let Some(mapping) = mapping else { continue };
        let planar_faults =
            ocp_geometry::Region::from_cells(block.faults.iter().map(|f| mapping[&f]));
        let closure = orthogonal_convex_closure(&planar_faults);
        debug_assert!(planar_block.is_superset(&closure));
        let closure_cost = closure.len() - planar_faults.len();
        let regions_cost: usize = group.iter().map(|r| r.nonfaulty_count()).sum();
        if regions_cost > closure_cost {
            violations.push(Violation::CorollaryViolated {
                block: bi,
                costs: (regions_cost, closure_cost),
            });
        }
    }

    if violations.is_empty() {
        Ok(report)
    } else {
        Err(violations)
    }
}

/// Topology-aware minimum distance between two cell sets.
fn topo_distance(
    topology: ocp_mesh::Topology,
    a: &ocp_geometry::Region,
    b: &ocp_geometry::Region,
) -> u32 {
    let mut best = u32::MAX;
    for u in a.iter() {
        for v in b.iter() {
            best = best.min(topology.distance(u, v));
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{run_pipeline, PipelineConfig};
    use ocp_mesh::Topology;

    fn c(x: i32, y: i32) -> Coord {
        Coord::new(x, y)
    }

    fn check(t: Topology, faults: &[Coord], rule: SafetyRule) {
        let map = FaultMap::new(t, faults.iter().copied());
        let out = run_pipeline(
            &map,
            &PipelineConfig {
                rule,
                ..PipelineConfig::default()
            },
        );
        if let Err(v) = verify(&map, &out) {
            panic!("{rule:?} on {t:?} with {faults:?}: {v:?}");
        }
    }

    #[test]
    fn paper_examples_verify() {
        for rule in [SafetyRule::TwoUnsafeNeighbors, SafetyRule::BothDimensions] {
            check(Topology::mesh(6, 6), &[c(1, 3), c(2, 1), c(3, 2)], rule);
            check(Topology::mesh(8, 8), &[c(3, 3), c(4, 4)], rule);
            check(Topology::mesh(8, 8), &[], rule);
        }
    }

    #[test]
    fn random_patterns_verify_mesh_and_torus() {
        use rand::{rngs::SmallRng, seq::SliceRandom, SeedableRng};
        for t in [Topology::mesh(20, 20), Topology::torus(20, 20)] {
            for rule in [SafetyRule::TwoUnsafeNeighbors, SafetyRule::BothDimensions] {
                for seed in 0..10u64 {
                    let mut rng = SmallRng::seed_from_u64(seed);
                    let mut all: Vec<Coord> = t.coords().collect();
                    all.shuffle(&mut rng);
                    let faults: Vec<Coord> = all.into_iter().take(24).collect();
                    check(t, &faults, rule);
                }
            }
        }
    }

    #[test]
    fn verify_detects_tampered_outcome() {
        let map = FaultMap::new(Topology::mesh(8, 8), [c(3, 3), c(4, 4)]);
        let mut out = run_pipeline(&map, &PipelineConfig::default());
        // Enable a faulty node by hand — verification must object.
        out.activation.set(c(3, 3), ActivationState::Enabled);
        out.safety.set(c(3, 3), SafetyState::Safe);
        let errs = verify(&map, &out).unwrap_err();
        assert!(errs
            .iter()
            .any(|v| matches!(v, Violation::FaultNotCovered { .. })));
    }
}
