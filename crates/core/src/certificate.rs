//! Publish-time certificates: serializable, independently re-checkable
//! witnesses that a converged outcome satisfies the paper's theorems.
//!
//! [`verify`](crate::verify::verify) answers "does this outcome satisfy
//! Section 3/4?" for tests. A serving system needs a stronger artifact: a
//! compact, serializable **certificate** produced at publish time that
//! (a) pins down *what* was published — a structural digest of the grids
//! plus per-region witnesses — and (b) can be re-validated later, by
//! another process, after a crash, or against a snapshot replayed from a
//! write-ahead log, **without trusting the engine that produced it**.
//!
//! [`EpochCertificate::check`] therefore re-extracts faulty blocks and
//! disabled regions from the raw safety/activation grids and re-proves
//! every claim from scratch: the outcome's own `blocks`/`regions` vectors
//! are cross-checked against the grids rather than believed. A warm-start
//! relabeling bug that produces self-consistent-looking-but-wrong derived
//! data is caught the moment it disagrees with the grids or the theorems.
//!
//! The checker is built to run on the publish path of a live service, so
//! the quadratic cell-pair distance scans of the test-oriented verifier
//! are replaced by a bounding-box sweep with an exact boundary-cell scan
//! reserved for the rare close pairs ([`close_pairs`]).

use crate::blocks::{extract_blocks, FaultyBlock};
use crate::labeling::enablement::ActivationState;
use crate::labeling::safety::{SafetyRule, SafetyState};
use crate::pipeline::PipelineOutcome;
use crate::regions::{extract_regions, DisabledRegion};
use crate::status::{FaultMap, Health};
use crate::verify::{VerifyReport, Violation};
use ocp_geometry::{boundary_cells, closure_spans, corner_nodes, ClosureSpans, Rect, Region};
use ocp_mesh::{Coord, Topology, TopologyKind};
use serde::{Deserialize, Serialize};

/// Incremental FNV-1a hasher over bytes — dependency-free, stable across
/// platforms and runs, good enough to detect torn or tampered state (this
/// is an integrity check, not a cryptographic commitment). Also used by
/// `ocp-serve`'s epoch WAL for record checksums.
#[derive(Clone, Copy, Debug)]
pub struct Fnv1a(u64);

impl Fnv1a {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        Self(Self::OFFSET)
    }

    /// Feeds bytes into the hash.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }

    /// Feeds one little-endian `u64` into the hash.
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// The current hash value.
    pub fn finish(self) -> u64 {
        self.0
    }
}

impl Default for Fnv1a {
    fn default() -> Self {
        Self::new()
    }
}

/// One-shot FNV-1a of a byte slice.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = Fnv1a::new();
    h.write(bytes);
    h.finish()
}

/// Structural digest of a labeled machine: topology, rule, and one byte
/// per cell combining health, safety, and activation. Two outcomes digest
/// equal iff they label the same machine identically, so this is the
/// "what was published" identity the WAL persists per epoch.
pub fn outcome_digest(map: &FaultMap, outcome: &PipelineOutcome) -> u64 {
    let topology = map.topology();
    let mut h = Fnv1a::new();
    h.write(&[match topology.kind() {
        TopologyKind::Mesh => 0u8,
        TopologyKind::Torus => 1u8,
    }]);
    h.write_u64(topology.width() as u64);
    h.write_u64(topology.height() as u64);
    h.write(&[match outcome.rule {
        SafetyRule::TwoUnsafeNeighbors => 0u8,
        SafetyRule::BothDimensions => 1u8,
    }]);
    let health = map.health_grid().as_slice();
    let safety = outcome.safety.as_slice();
    let activation = outcome.activation.as_slice();
    for i in 0..health.len() {
        let byte = ((health[i] == Health::Faulty) as u8) << 2
            | ((safety[i] == SafetyState::Unsafe) as u8) << 1
            | (activation[i] == ActivationState::Disabled) as u8;
        h.write(&[byte]);
    }
    h.finish()
}

/// The minimum inter-block distance the rule guarantees (Def 2a / 2b).
pub(crate) fn required_block_distance(rule: SafetyRule) -> u32 {
    match rule {
        SafetyRule::TwoUnsafeNeighbors => 3,
        SafetyRule::BothDimensions => 2,
    }
}

/// One contiguous occupied run of a region row, in planar coordinates —
/// the row-interval form of a histogram-of-intervals convexity witness.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct RowInterval {
    /// Row coordinate.
    pub y: i32,
    /// Leftmost occupied cell of the row.
    pub x_min: i32,
    /// Rightmost occupied cell of the row.
    pub x_max: i32,
}

/// Compact facts about one faulty block (Section 3 claims).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct BlockFact {
    /// Member cells.
    pub cells: usize,
    /// Faulty member cells.
    pub faults: usize,
    /// Planar bounding box; `None` for a torus block that wraps all the
    /// way around and admits no planar embedding.
    pub bbox: Option<Rect>,
    /// Whether the block is a full rectangle (what Section 3 guarantees).
    pub rectangle: bool,
}

/// Per-region witness of Theorems 1/2 and Lemma 1.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RegionWitness {
    /// Member cells.
    pub cells: usize,
    /// Faulty member cells.
    pub faults: usize,
    /// Row intervals of the planar embedding, ascending in `y`. Together
    /// with the column-contiguity the checker re-derives, these witness
    /// orthogonal convexity (Theorem 1). Empty when `wrapped`.
    pub rows: Vec<RowInterval>,
    /// Corner nodes (Definition 4) of the planar embedding — Lemma 1 says
    /// each must be faulty. Empty when `wrapped`.
    pub corners: Vec<Coord>,
    /// Size of the orthogonal convex closure of the region's faults —
    /// Theorem 2's minimality witness (equals `cells` iff minimal).
    pub closure_cells: usize,
    /// True for a torus region with no planar embedding; the geometric
    /// witnesses are skipped for it (mirrors [`VerifyReport`]).
    pub wrapped: bool,
}

/// A compact, serializable certificate that one labeled epoch satisfies
/// every machine-checkable claim of the paper.
///
/// Produced by [`EpochCertificate::describe`] (pure distillation — no
/// judgment) and validated by [`EpochCertificate::check`], which re-proves
/// the claims from the raw grids without trusting the producing engine.
/// `ocp-serve` gates every epoch publication on `check` and persists
/// `grid_digest` in its write-ahead log so crash recovery can prove it
/// replayed to the same machine state.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct EpochCertificate {
    /// The epoch this certificate describes (0 for the initial cold run).
    pub epoch: u64,
    /// Safety rule the labeling ran under.
    pub rule: SafetyRule,
    /// The machine.
    pub topology: Topology,
    /// Faults in the map at this epoch.
    pub fault_count: usize,
    /// [`outcome_digest`] of the grids this certificate describes.
    pub grid_digest: u64,
    /// Minimum inter-block distance the rule guarantees (Def 2a / 2b).
    pub required_block_distance: u32,
    /// One fact set per faulty block, in `outcome.blocks` order.
    pub blocks: Vec<BlockFact>,
    /// One witness per disabled region, in `outcome.regions` order.
    pub regions: Vec<RegionWitness>,
}

impl EpochCertificate {
    /// Distills `outcome` into a certificate. This is the *producer* side:
    /// it records what the engine claims without judging it — validation
    /// is [`EpochCertificate::check`]'s job, on purpose a separate code
    /// path so the certificate can be re-checked by a party that never ran
    /// the engine.
    pub fn describe(epoch: u64, map: &FaultMap, outcome: &PipelineOutcome) -> Self {
        Self {
            epoch,
            rule: outcome.rule,
            topology: map.topology(),
            fault_count: map.fault_count(),
            grid_digest: outcome_digest(map, outcome),
            required_block_distance: required_block_distance(outcome.rule),
            blocks: outcome
                .blocks
                .iter()
                .map(|b| {
                    let bbox = b.bbox();
                    BlockFact {
                        cells: b.cells.len(),
                        faults: b.faults.len(),
                        bbox,
                        // Full rectangle iff the planar embedding fills
                        // its own bounding box — one pass, not two.
                        rectangle: match (&b.planar, bbox) {
                            (Some(planar), Some(bbox)) => bbox.area() == planar.len(),
                            _ => false,
                        },
                    }
                })
                .collect(),
            regions: outcome
                .regions
                .iter()
                .map(|r| match (&r.planar, &r.planar_faults) {
                    (Some(planar), Some(planar_faults)) => {
                        let profile = PlanarProfile::new(planar);
                        RegionWitness {
                            cells: r.cells.len(),
                            faults: r.faults.len(),
                            corners: profile.corners_of(planar),
                            rows: profile.row_intervals(),
                            closure_cells: closure_spans(planar_faults).len(),
                            wrapped: false,
                        }
                    }
                    _ => RegionWitness {
                        cells: r.cells.len(),
                        faults: r.faults.len(),
                        rows: Vec::new(),
                        corners: Vec::new(),
                        closure_cells: 0,
                        wrapped: true,
                    },
                })
                .collect(),
        }
    }

    /// Independently re-verifies that `outcome` (a) satisfies every
    /// Section 3/4 claim and (b) is the outcome this certificate
    /// describes. The outcome's own `blocks`/`regions` vectors are never
    /// trusted: on a mesh they are first *proven* to be exactly the
    /// maximal components of the raw safety/activation grids with flat
    /// `O(cells)` passes ([`EpochCertificate::validate_declared`]), after
    /// which every theorem is checked directly on the declared sets; on
    /// a torus, or whenever that proof fails, blocks and regions are
    /// re-extracted from the grids and the theorems are checked on that
    /// ground truth instead ([`Violation::OutcomeInconsistent`] flags the
    /// mismatch). Returns every violation found, never just the first.
    pub fn check(
        &self,
        map: &FaultMap,
        outcome: &PipelineOutcome,
    ) -> Result<VerifyReport, Vec<Violation>> {
        let mut violations = Vec::new();
        let mut report = VerifyReport::default();
        let topology = map.topology();

        if !outcome.safety_trace.converged {
            violations.push(Violation::NotConverged { phase: "safety" });
        }
        if !outcome.enablement_trace.converged {
            violations.push(Violation::NotConverged {
                phase: "enablement",
            });
        }

        // Identity: is this even the outcome the certificate describes?
        if self.rule != outcome.rule {
            violations.push(Violation::CertificateMismatch {
                what: "safety rule".into(),
            });
        }
        if self.topology != topology {
            violations.push(Violation::CertificateMismatch {
                what: "topology".into(),
            });
        }
        if self.fault_count != map.fault_count() {
            violations.push(Violation::CertificateMismatch {
                what: "fault count".into(),
            });
        }
        let required = required_block_distance(outcome.rule);
        if self.required_block_distance != required {
            violations.push(Violation::CertificateMismatch {
                what: "required block distance".into(),
            });
        }
        let actual_digest = outcome_digest(map, outcome);
        if actual_digest != self.grid_digest {
            violations.push(Violation::DigestMismatch {
                expected: self.grid_digest,
                actual: actual_digest,
            });
        }

        // Faults must be unsafe and disabled — read from the grids.
        let mut faults_covered = true;
        for fault in map.faults() {
            if *outcome.safety.get(fault) != SafetyState::Unsafe
                || *outcome.activation.get(fault) != ActivationState::Disabled
            {
                violations.push(Violation::FaultNotCovered { fault });
                faults_covered = false;
            }
        }

        // The fast path needs fault coverage: `validate_declared`'s
        // counting argument for fault-set exactness assumes every map
        // fault lies inside a stamped component.
        let declared = (topology.kind() == TopologyKind::Mesh && faults_covered)
            .then(|| self.validate_declared(map, outcome, &mut violations))
            .flatten();
        match declared {
            Some(state) => {
                self.check_declared(map, outcome, state, required, &mut violations, &mut report)
            }
            None => self.check_extracted(
                map,
                outcome,
                required,
                topology.kind() == TopologyKind::Torus,
                &mut violations,
                &mut report,
            ),
        }

        if violations.is_empty() {
            Ok(report)
        } else {
            Err(violations)
        }
    }

    /// Mesh-path proof that the outcome's declared blocks and regions are
    /// exactly the maximal 4-connected components of the safety and
    /// activation grids, and that their declared fault sets are exactly
    /// the fault map's faults within each component — without extracting
    /// anything. Four facts are established per family in flat `O(cells)`
    /// passes:
    ///
    /// 1. disjointness — stamping every declared cell into an owner array
    ///    detects overlaps (and out-of-bounds or empty sets);
    /// 2. parity — a grid sweep confirms stamped ⟺ unsafe (resp.
    ///    disabled), i.e. the family covers its grid class exactly;
    /// 3. maximality — no two *different* declared sets are 4-adjacent,
    ///    checked against each cell's right/down neighbors;
    /// 4. connectivity — each declared set is one component under a
    ///    vertical-run union-find ([`runs_connected`]).
    ///
    /// A family with all four properties *is* the unique decomposition of
    /// its grid class into maximal connected components, so on success
    /// the declared sets serve as ground truth for every theorem check.
    /// On failure the matching [`Violation::OutcomeInconsistent`] is
    /// pushed and `None` returned — the caller re-extracts instead.
    fn validate_declared(
        &self,
        map: &FaultMap,
        outcome: &PipelineOutcome,
        violations: &mut Vec<Violation>,
    ) -> Option<DeclaredState> {
        let topology = map.topology();
        let (block_owner, block_scans, blocks_ok) =
            scan_family(topology, outcome.blocks.iter().map(|b| &b.cells));
        let blocks_ok = blocks_ok
            && partition_matches_grid(topology, &block_owner, |c| {
                *outcome.safety.get(c) == SafetyState::Unsafe
            });
        if !blocks_ok {
            violations.push(Violation::OutcomeInconsistent {
                what: "blocks differ from the safety grid's unsafe components".into(),
            });
        }
        let (region_owner, region_scans, regions_ok) =
            scan_family(topology, outcome.regions.iter().map(|r| &r.cells));
        let regions_ok = regions_ok
            && partition_matches_grid(topology, &region_owner, |c| {
                *outcome.activation.get(c) == ActivationState::Disabled
            });
        if !regions_ok {
            violations.push(Violation::OutcomeInconsistent {
                what: "regions differ from the activation grid's disabled components".into(),
            });
        }
        if !blocks_ok || !regions_ok {
            return None;
        }
        // The theorem checks consume the declared fault sets, so those
        // must be exact too (the extraction path recomputes them from the
        // map instead).
        if !fault_sets_exact(map, &block_owner, outcome.blocks.iter().map(|b| &b.faults))
            || !fault_sets_exact(
                map,
                &region_owner,
                outcome.regions.iter().map(|r| &r.faults),
            )
        {
            violations.push(Violation::OutcomeInconsistent {
                what: "declared fault sets differ from the fault map".into(),
            });
            return None;
        }
        Some(DeclaredState {
            block_owner,
            block_scans,
            region_scans,
        })
    }

    /// Theorem and witness checks on a successfully validated declared
    /// decomposition — the mesh publish path. Planar embeddings on a
    /// mesh are the identity, so the declared machine-coordinate sets
    /// are their own planar ground truth and the producer's `planar`
    /// fields are never consulted.
    fn check_declared(
        &self,
        map: &FaultMap,
        outcome: &PipelineOutcome,
        state: DeclaredState,
        required: u32,
        violations: &mut Vec<Violation>,
        report: &mut VerifyReport,
    ) {
        let topology = map.topology();
        let DeclaredState {
            block_owner,
            block_scans,
            region_scans,
        } = state;
        report.blocks_checked = outcome.blocks.len();
        report.regions_checked = outcome.regions.len();

        // Section 3 blocks: rectangles, pairwise >= required apart, and
        // the certificate's distilled facts must match.
        if self.blocks.len() != outcome.blocks.len() {
            violations.push(Violation::CertificateMismatch {
                what: format!(
                    "block count: certificate {} vs outcome {}",
                    self.blocks.len(),
                    outcome.blocks.len()
                ),
            });
        }
        for (i, (block, scan)) in outcome.blocks.iter().zip(&block_scans).enumerate() {
            let rectangle = scan.bbox.is_some_and(|b| b.area() == scan.len);
            if !rectangle {
                violations.push(Violation::BlockNotRectangle { block: i });
            }
            if let Some(fact) = self.blocks.get(i) {
                let matches = fact.cells == scan.len
                    && fact.faults == block.faults.len()
                    && fact.bbox == scan.bbox
                    && fact.rectangle == rectangle;
                if !matches {
                    violations.push(Violation::CertificateMismatch {
                        what: format!("block {i} facts"),
                    });
                }
            }
        }
        let block_sets: Vec<&Region> = outcome.blocks.iter().map(|b| &b.cells).collect();
        for (i, j, distance) in close_pairs(topology, &block_sets, required) {
            violations.push(Violation::BlocksTooClose {
                blocks: (i, j),
                distance,
                required,
            });
        }

        // Regions: pairwise spacing, Theorems 1/2, Lemma 1, witnesses.
        if self.regions.len() != outcome.regions.len() {
            violations.push(Violation::CertificateMismatch {
                what: format!(
                    "region count: certificate {} vs outcome {}",
                    self.regions.len(),
                    outcome.regions.len()
                ),
            });
        }
        let declared: Vec<&Region> = outcome.regions.iter().map(|r| &r.cells).collect();
        for (i, j, distance) in close_pairs(topology, &declared, 2) {
            violations.push(Violation::RegionsTooClose {
                regions: (i, j),
                distance,
            });
        }

        let mut region_cost_per_block = vec![0usize; outcome.blocks.len()];
        let mut regions_per_block = vec![0usize; outcome.blocks.len()];
        let mut sole_region = vec![usize::MAX; outcome.blocks.len()];
        let mut closure_lens = vec![0usize; outcome.regions.len()];
        for (i, (region, scan)) in outcome.regions.iter().zip(&region_scans).enumerate() {
            let profile = scan.profile();
            let contiguous = profile.rows_contiguous();
            // Definition 1: contiguous rows + one run per column.
            if !contiguous || scan.column_gap {
                violations.push(Violation::RegionNotConvex { region: i });
            }
            let corners = if contiguous {
                profile.corners()
            } else {
                corner_nodes(&region.cells)
            };
            for &corner in &corners {
                if !region.faults.contains(corner) {
                    violations.push(Violation::CornerNotFaulty { region: i, corner });
                }
            }
            let closure = closure_spans(&region.faults);
            if !profile.matches_closure(&closure) {
                violations.push(Violation::RegionNotMinimal {
                    region: i,
                    sizes: (region.cells.len(), closure.len()),
                });
            }
            closure_lens[i] = closure.len();
            if let Some(witness) = self.regions.get(i) {
                let matches = witness.cells == region.cells.len()
                    && witness.faults == region.faults.len()
                    && !witness.wrapped
                    && witness.rows == profile.row_intervals()
                    && witness.corners == corners
                    && witness.closure_cells == closure.len();
                if !matches {
                    violations.push(Violation::CertificateMismatch {
                        what: format!("region {i} witness"),
                    });
                }
            }
            // Phase 2 only removes nodes: every cell of the region must
            // sit inside one block (read off the stamped owner array).
            let mut cells = scan
                .runs
                .iter()
                .flat_map(|&(x, y0, y1)| (y0..=y1).map(move |y| Coord::new(x, y)));
            let first_owner = cells
                .next()
                .map_or(usize::MAX, |c| block_owner[topology.index_of(c)]);
            if first_owner != usize::MAX
                && cells.all(|c| block_owner[topology.index_of(c)] == first_owner)
            {
                region_cost_per_block[first_owner] += region.cells.len() - region.faults.len();
                regions_per_block[first_owner] += 1;
                sole_region[first_owner] = i;
            } else {
                violations.push(Violation::RegionOutsideBlock { region: i });
            }
        }

        // Corollary, per block: the nonfaulty cost of a block's regions
        // is bounded by the smallest orthogonal convex polygon covering
        // all the block's faults.
        for (bi, block) in outcome.blocks.iter().enumerate() {
            if region_cost_per_block[bi] == 0 {
                continue; // the bound is nonnegative — nothing to violate
            }
            let faults = block.faults.len();
            // A block with a single region re-uses that region's closure:
            // the region's (validated) faults are a subset of the block's
            // with equal count, hence the same set and the same closure.
            let reuse = (regions_per_block[bi] == 1)
                .then(|| sole_region[bi])
                .filter(|&ri| outcome.regions[ri].faults.len() == faults);
            let closure_cells = match reuse {
                Some(ri) => closure_lens[ri],
                None => closure_spans(&block.faults).len(),
            };
            let closure_cost = closure_cells - faults;
            if region_cost_per_block[bi] > closure_cost {
                violations.push(Violation::CorollaryViolated {
                    block: bi,
                    costs: (region_cost_per_block[bi], closure_cost),
                });
            }
        }
    }

    /// Ground-truth path: re-extract blocks and regions from the raw
    /// grids and check every theorem on the extraction. Used for tori
    /// (whose seam adjacency the flat declared-validation passes do not
    /// model) and as the fallback when a mesh outcome's declared
    /// decomposition failed validation — the violations then describe
    /// the actual grid components. `verify_consistency` guards the
    /// declared-vs-extracted comparison; the mesh fallback already
    /// reported that mismatch.
    fn check_extracted(
        &self,
        map: &FaultMap,
        outcome: &PipelineOutcome,
        required: u32,
        verify_consistency: bool,
        violations: &mut Vec<Violation>,
        report: &mut VerifyReport,
    ) {
        let topology = map.topology();
        self.compare_facts(outcome, violations);

        let blocks = extract_blocks(map, &outcome.safety);
        if verify_consistency && !same_components(outcome.blocks.iter().map(|b| &b.cells), &blocks)
        {
            violations.push(Violation::OutcomeInconsistent {
                what: "blocks differ from the safety grid's unsafe components".into(),
            });
        }
        // Section 3: blocks are rectangles, pairwise >= required apart.
        for (i, block) in blocks.iter().enumerate() {
            match &block.planar {
                None => report.wrapped_blocks += 1,
                Some(_) => {
                    report.blocks_checked += 1;
                    if !block.is_rectangle() {
                        violations.push(Violation::BlockNotRectangle { block: i });
                    }
                }
            }
        }
        let block_sets: Vec<&Region> = blocks.iter().map(|b| &b.cells).collect();
        for (i, j, distance) in close_pairs(topology, &block_sets, required) {
            violations.push(Violation::BlocksTooClose {
                blocks: (i, j),
                distance,
                required,
            });
        }
        // Which block owns each cell (containment + the corollary).
        let mut owner: Vec<usize> = vec![usize::MAX; topology.len()];
        for (bi, block) in blocks.iter().enumerate() {
            for cell in block.cells.iter() {
                owner[topology.index_of(cell)] = bi;
            }
        }

        let regions = extract_regions(map, &outcome.activation);
        if verify_consistency
            && !same_components(outcome.regions.iter().map(|r| &r.cells), &regions)
        {
            violations.push(Violation::OutcomeInconsistent {
                what: "regions differ from the activation grid's disabled components".into(),
            });
        }
        // Regions pairwise >= 2 apart. Re-extracted components are
        // maximal and therefore >= 2 apart by construction, so this
        // theorem is checked on the *declared* regions — a service that
        // publishes two regions closer than the paper allows is caught
        // here even when its grids are merely split differently.
        let declared: Vec<&Region> = outcome.regions.iter().map(|r| &r.cells).collect();
        for (i, j, distance) in close_pairs(topology, &declared, 2) {
            violations.push(Violation::RegionsTooClose {
                regions: (i, j),
                distance,
            });
        }
        // Theorems 1/2 and Lemma 1 per re-extracted region.
        for (i, region) in regions.iter().enumerate() {
            match (&region.planar, &region.planar_faults) {
                (Some(planar), Some(planar_faults)) => {
                    report.regions_checked += 1;
                    let profile = PlanarProfile::new(planar);
                    if !profile.is_convex() {
                        violations.push(Violation::RegionNotConvex { region: i });
                    }
                    for corner in profile.corners_of(planar) {
                        if !planar_faults.contains(corner) {
                            violations.push(Violation::CornerNotFaulty { region: i, corner });
                        }
                    }
                    let closure = closure_spans(planar_faults);
                    if !profile.matches_closure(&closure) {
                        violations.push(Violation::RegionNotMinimal {
                            region: i,
                            sizes: (planar.len(), closure.len()),
                        });
                    }
                }
                _ => report.wrapped_regions += 1,
            }
        }

        // Phase 2 only removes nodes: every region sits inside a block.
        let mut region_cost_per_block = vec![0usize; blocks.len()];
        for (i, region) in regions.iter().enumerate() {
            let contained = region
                .cells
                .iter()
                .next()
                .map(|first| owner[topology.index_of(first)])
                .filter(|&bi| bi != usize::MAX)
                .is_some_and(|bi| {
                    if blocks[bi].cells.is_superset(&region.cells) {
                        region_cost_per_block[bi] += region.nonfaulty_count();
                        true
                    } else {
                        false
                    }
                });
            if !contained {
                violations.push(Violation::RegionOutsideBlock { region: i });
            }
        }

        // Corollary, per block: the nonfaulty cost of a block's regions
        // is bounded by the smallest orthogonal convex polygon covering
        // all the block's faults (`None` bound for unwrappable blocks).
        for (bi, block) in blocks.iter().enumerate() {
            if block.planar.is_none() {
                continue;
            }
            // On a mesh the block's faults are already planar; only
            // torus blocks need the seam translation.
            let planar_faults = if topology.kind() == TopologyKind::Mesh {
                block.faults.clone()
            } else {
                let cells: Vec<Coord> = block.cells.iter().collect();
                let Some(mapping) = Region::unwrap_mapping(topology, &cells) else {
                    continue;
                };
                Region::from_cells(block.faults.iter().map(|f| mapping[&f]))
            };
            let closure_cost = closure_spans(&planar_faults).len() - planar_faults.len();
            if region_cost_per_block[bi] > closure_cost {
                violations.push(Violation::CorollaryViolated {
                    block: bi,
                    costs: (region_cost_per_block[bi], closure_cost),
                });
            }
        }
    }

    /// Compares the certificate's distilled facts against the outcome's
    /// declared blocks/regions (order-aligned: `describe` preserves the
    /// outcome's ordering). A mismatch means this certificate describes a
    /// *different* outcome — the check that matters when a WAL-recovered
    /// certificate is validated against a replayed snapshot.
    fn compare_facts(&self, outcome: &PipelineOutcome, violations: &mut Vec<Violation>) {
        if self.blocks.len() != outcome.blocks.len() {
            violations.push(Violation::CertificateMismatch {
                what: format!(
                    "block count: certificate {} vs outcome {}",
                    self.blocks.len(),
                    outcome.blocks.len()
                ),
            });
        }
        for (i, (fact, block)) in self.blocks.iter().zip(&outcome.blocks).enumerate() {
            let matches = fact.cells == block.cells.len()
                && fact.faults == block.faults.len()
                && fact.bbox == block.bbox()
                && fact.rectangle == block.is_rectangle();
            if !matches {
                violations.push(Violation::CertificateMismatch {
                    what: format!("block {i} facts"),
                });
            }
        }
        if self.regions.len() != outcome.regions.len() {
            violations.push(Violation::CertificateMismatch {
                what: format!(
                    "region count: certificate {} vs outcome {}",
                    self.regions.len(),
                    outcome.regions.len()
                ),
            });
        }
        for (i, (witness, region)) in self.regions.iter().zip(&outcome.regions).enumerate() {
            let matches = witness.cells == region.cells.len()
                && witness.faults == region.faults.len()
                && match (&region.planar, &region.planar_faults) {
                    (Some(planar), Some(planar_faults)) => {
                        let profile = PlanarProfile::new(planar);
                        !witness.wrapped
                            && witness.rows == profile.row_intervals()
                            && witness.corners == profile.corners_of(planar)
                            && witness.closure_cells == closure_spans(planar_faults).len()
                    }
                    _ => witness.wrapped && witness.closure_cells == 0,
                };
            if !matches {
                violations.push(Violation::CertificateMismatch {
                    what: format!("region {i} witness"),
                });
            }
        }
    }
}

/// Row-table profile of a planar region: one pass over the cells, after
/// which every geometric question the certificate asks — row intervals,
/// Definition-1 convexity, Definition-4 corners, Theorem-2 closure
/// equality — is answered from the per-row `(x_min, x_max, count)` table
/// in `O(rows)` or `O(area)` flat-array time instead of per-cell set
/// probes. Semantics are identical to the `ocp-geometry` primitives; the
/// generic ones remain the fallback when a row has gaps.
struct PlanarProfile {
    /// `(y, x_min, x_max, count)` per occupied row, ascending in `y`.
    rows: Vec<(i32, i32, i32, usize)>,
    /// Total cell count.
    len: usize,
}

impl PlanarProfile {
    fn new(region: &Region) -> Self {
        let Some(bbox) = region.bbox() else {
            return Self {
                rows: Vec::new(),
                len: 0,
            };
        };
        let y0 = bbox.min.y;
        let height = (bbox.max.y - y0 + 1) as usize;
        let mut table: Vec<(i32, i32, usize)> = vec![(i32::MAX, i32::MIN, 0); height];
        for c in region.iter() {
            let row = &mut table[(c.y - y0) as usize];
            row.0 = row.0.min(c.x);
            row.1 = row.1.max(c.x);
            row.2 += 1;
        }
        Self {
            rows: table
                .into_iter()
                .enumerate()
                .filter(|(_, r)| r.2 > 0)
                .map(|(i, (lo, hi, n))| (y0 + i as i32, lo, hi, n))
                .collect(),
            len: region.len(),
        }
    }

    /// True when every occupied row is gap-free — the precondition for
    /// [`PlanarProfile::corners`].
    fn rows_contiguous(&self) -> bool {
        self.rows
            .iter()
            .all(|&(_, lo, hi, n)| n == (hi - lo + 1) as usize)
    }

    fn row_intervals(&self) -> Vec<RowInterval> {
        self.rows
            .iter()
            .map(|&(y, lo, hi, _)| RowInterval {
                y,
                x_min: lo,
                x_max: hi,
            })
            .collect()
    }

    /// Exactly `is_orthogonally_convex`: no row has a gap and every
    /// column's occupied rows form one contiguous `y`-interval.
    fn is_convex(&self) -> bool {
        if !self.rows_contiguous() {
            return false;
        }
        let Some(x0) = self.rows.iter().map(|r| r.1).min() else {
            return true;
        };
        let x1 = self.rows.iter().map(|r| r.2).max().expect("non-empty");
        let width = (x1 - x0 + 1) as usize;
        let mut first = vec![0i32; width];
        let mut last = vec![0i32; width];
        let mut count = vec![0usize; width];
        for &(y, lo, hi, _) in &self.rows {
            for x in (lo - x0) as usize..=(hi - x0) as usize {
                if count[x] == 0 {
                    first[x] = y;
                }
                last[x] = y;
                count[x] += 1;
            }
        }
        (0..width).all(|x| count[x] == 0 || count[x] == (last[x] - first[x] + 1) as usize)
    }

    /// Definition-4 corner nodes, sorted in `Coord` order. Valid only when
    /// [`PlanarProfile::rows_contiguous`]: then the only cells with
    /// x-dimension exposure are each row's two endpoints, so the scan is
    /// `O(rows)`.
    fn corners(&self) -> Vec<Coord> {
        debug_assert!(self.rows_contiguous());
        let mut out = Vec::new();
        for (i, &(y, lo, hi, _)) in self.rows.iter().enumerate() {
            let above = self
                .rows
                .get(i + 1)
                .filter(|r| r.0 == y + 1)
                .map(|&(_, lo, hi, _)| (lo, hi));
            let below = i
                .checked_sub(1)
                .map(|p| self.rows[p])
                .filter(|r| r.0 == y - 1)
                .map(|(_, lo, hi, _)| (lo, hi));
            let inside =
                |row: Option<(i32, i32)>, x: i32| row.is_some_and(|(lo, hi)| lo <= x && x <= hi);
            for x in [lo, hi] {
                if !inside(above, x) || !inside(below, x) {
                    out.push(Coord::new(x, y));
                }
                if lo == hi {
                    break; // single-cell row: one candidate only
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// True iff the profiled region is exactly the closure `spans`
    /// describes (Theorem 2's minimality), without materializing cells.
    fn matches_closure(&self, spans: &ClosureSpans) -> bool {
        self.len == spans.len()
            && self.rows.len() == spans.rows.len()
            && self
                .rows
                .iter()
                .zip(&spans.rows)
                .all(|(&(y, lo, hi, n), &(sy, slo, shi))| {
                    y == sy && lo == slo && hi == shi && n == (shi - slo + 1) as usize
                })
    }

    /// Corner nodes with the gapped-row fallback to the generic scan.
    fn corners_of(&self, planar: &Region) -> Vec<Coord> {
        if self.rows_contiguous() {
            self.corners()
        } else {
            corner_nodes(planar)
        }
    }
}

/// Artifacts of a successful declared-decomposition validation, carried
/// into the theorem checks so nothing is scanned twice: the per-cell
/// block owner array (containment) and the per-set scans (geometry).
struct DeclaredState {
    block_owner: Vec<usize>,
    block_scans: Vec<DeclaredScan>,
    region_scans: Vec<DeclaredScan>,
}

/// One declared cell set, scanned in a single pass over its (sorted)
/// cells: maximal vertical runs, bounding box, and a column-gap flag.
struct DeclaredScan {
    /// `(x, y0, y1)` maximal vertical runs in column-major order.
    runs: Vec<(i32, i32, i32)>,
    bbox: Option<Rect>,
    /// Some column holds more than one run — an orthogonal-convexity
    /// violation in the y dimension.
    column_gap: bool,
    len: usize,
}

impl DeclaredScan {
    /// Builds the row profile from the runs — a flat fill over the
    /// bounding-box height, with no second pass over the cell set.
    fn profile(&self) -> PlanarProfile {
        let Some(bbox) = self.bbox else {
            return PlanarProfile {
                rows: Vec::new(),
                len: 0,
            };
        };
        let y0 = bbox.min.y;
        let mut table: Vec<(i32, i32, usize)> =
            vec![(i32::MAX, i32::MIN, 0); bbox.height() as usize];
        for &(x, ry0, ry1) in &self.runs {
            for y in ry0..=ry1 {
                let row = &mut table[(y - y0) as usize];
                row.0 = row.0.min(x);
                row.1 = row.1.max(x);
                row.2 += 1;
            }
        }
        PlanarProfile {
            rows: table
                .into_iter()
                .enumerate()
                .filter(|(_, r)| r.2 > 0)
                .map(|(i, (lo, hi, n))| (y0 + i as i32, lo, hi, n))
                .collect(),
            len: self.len,
        }
    }
}

/// Stamps every set of a declared family into a per-cell owner array and
/// scans each set once. The returned flag is `false` on any overlap,
/// out-of-bounds cell, empty set, or disconnected set — the properties a
/// family of extracted components can never exhibit.
fn scan_family<'a>(
    topology: Topology,
    sets: impl Iterator<Item = &'a Region>,
) -> (Vec<usize>, Vec<DeclaredScan>, bool) {
    let mut owner = vec![usize::MAX; topology.len()];
    let mut scans = Vec::new();
    let mut ok = true;
    for (k, set) in sets.enumerate() {
        let mut runs: Vec<(i32, i32, i32)> = Vec::new();
        let mut column_gap = false;
        let (mut min, mut max) = (
            Coord::new(i32::MAX, i32::MAX),
            Coord::new(i32::MIN, i32::MIN),
        );
        for c in set.iter() {
            if !topology.contains(c) {
                ok = false;
                continue;
            }
            let i = topology.index_of(c);
            if owner[i] != usize::MAX {
                ok = false; // overlap within the family
            }
            owner[i] = k;
            min = Coord::new(min.x.min(c.x), min.y.min(c.y));
            max = Coord::new(max.x.max(c.x), max.y.max(c.y));
            // `Region` iterates in (x, y) order: cells of one column
            // arrive consecutively with ascending y.
            let extended = match runs.last_mut() {
                Some(last) if last.0 == c.x && last.2 + 1 == c.y => {
                    last.2 = c.y;
                    true
                }
                Some(last) => {
                    column_gap |= last.0 == c.x;
                    false
                }
                None => false,
            };
            if !extended {
                runs.push((c.x, c.y, c.y));
            }
        }
        ok &= !runs.is_empty() && runs_connected(&runs);
        scans.push(DeclaredScan {
            runs,
            bbox: (min.x <= max.x).then(|| Rect::new(min, max)),
            column_gap,
            len: set.len(),
        });
    }
    (owner, scans, ok)
}

/// True iff the stamped owner array agrees cell-for-cell with the grid
/// class (`in_class`) *and* no two distinct owners are 4-adjacent — i.e.
/// the declared family covers its class exactly and every declared set
/// is maximal. One flat sweep; only right/down neighbors are inspected
/// (mesh adjacency is symmetric).
fn partition_matches_grid(
    topology: Topology,
    owner: &[usize],
    mut in_class: impl FnMut(Coord) -> bool,
) -> bool {
    let (w, h) = (topology.width() as i32, topology.height() as i32);
    for y in 0..h {
        for x in 0..w {
            let c = Coord::new(x, y);
            let o = owner[topology.index_of(c)];
            if (o != usize::MAX) != in_class(c) {
                return false;
            }
            if o == usize::MAX {
                continue;
            }
            if x + 1 < w {
                let right = owner[topology.index_of(Coord::new(x + 1, y))];
                if right != usize::MAX && right != o {
                    return false;
                }
            }
            if y + 1 < h {
                let down = owner[topology.index_of(Coord::new(x, y + 1))];
                if down != usize::MAX && down != o {
                    return false;
                }
            }
        }
    }
    true
}

/// True iff each declared fault list is exactly the fault map's faults
/// within the declaring set. Each declared fault is verified to be a
/// real fault owned by its declarer, so no fault can be declared twice;
/// the total count then pins the sets exactly, because every map fault
/// lies inside some stamped cell (fault coverage and stamping parity
/// are checked before this runs).
fn fault_sets_exact<'a>(
    map: &FaultMap,
    owner: &[usize],
    declared: impl Iterator<Item = &'a Region>,
) -> bool {
    let topology = map.topology();
    let mut total = 0usize;
    for (k, faults) in declared.enumerate() {
        total += faults.len();
        for f in faults.iter() {
            if !topology.contains(f) || !map.is_faulty(f) || owner[topology.index_of(f)] != k {
                return false;
            }
        }
    }
    total == map.fault_count()
}

/// True iff a set of column-major vertical runs forms one 4-connected
/// component: runs in adjacent columns with overlapping y-intervals are
/// merged with a path-halving union-find (two-pointer per column pair),
/// then all runs must share a root.
fn runs_connected(runs: &[(i32, i32, i32)]) -> bool {
    if runs.len() <= 1 {
        return true;
    }
    let mut parent: Vec<u32> = (0..runs.len() as u32).collect();
    fn find(parent: &mut [u32], mut i: u32) -> u32 {
        while parent[i as usize] != i {
            parent[i as usize] = parent[parent[i as usize] as usize];
            i = parent[i as usize];
        }
        i
    }
    let (mut prev_start, mut prev_end) = (0usize, 0usize);
    let mut i = 0;
    while i < runs.len() {
        let x = runs[i].0;
        let start = i;
        while i < runs.len() && runs[i].0 == x {
            i += 1;
        }
        if prev_end > prev_start && runs[prev_start].0 == x - 1 {
            let mut j = prev_start;
            for k in start..i {
                let (_, y0, y1) = runs[k];
                while j < prev_end && runs[j].2 < y0 {
                    j += 1;
                }
                let mut jj = j;
                while jj < prev_end && runs[jj].1 <= y1 {
                    let (a, b) = (find(&mut parent, k as u32), find(&mut parent, jj as u32));
                    if a != b {
                        parent[a as usize] = b;
                    }
                    jj += 1;
                }
            }
        }
        prev_start = start;
        prev_end = i;
    }
    let root = find(&mut parent, 0);
    (1..runs.len() as u32).all(|k| find(&mut parent, k) == root)
}

/// True when the declared component list matches the extracted one as a
/// family of cell sets (order-insensitively — extraction order is scan
/// order, which a legitimate alternative pipeline need not share).
fn same_components<'a, I, T>(declared: I, extracted: &[T]) -> bool
where
    I: ExactSizeIterator<Item = &'a Region>,
    T: AsComponent,
{
    if declared.len() != extracted.len() {
        return false;
    }
    let mut declared: Vec<&Region> = declared.collect();
    let mut actual: Vec<&Region> = extracted.iter().map(AsComponent::cells).collect();
    declared.sort_by_key(|r| r.iter().next());
    actual.sort_by_key(|r| r.iter().next());
    declared.into_iter().zip(actual).all(|(d, a)| d == a)
}

/// The cell set of an extracted component (block or region).
trait AsComponent {
    fn cells(&self) -> &Region;
}

impl AsComponent for FaultyBlock {
    fn cells(&self) -> &Region {
        &self.cells
    }
}

impl AsComponent for DisabledRegion {
    fn cells(&self) -> &Region {
        &self.cells
    }
}

/// All pairs of cell sets at topology distance `< bound`, with their exact
/// distance. Built for publish-path budgets: a sweep over bounding boxes
/// (sorted by `min.x`, early exit once the x-gap alone reaches `bound`)
/// prunes almost every pair in O(1), and only the survivors pay an exact
/// boundary-cell scan — the minimum distance between two cell sets is
/// always attained at boundary cells of each. On tori the bounding-box
/// bound does not hold across the seam, so every pair is scanned exactly
/// (tori only appear at test scales in this workspace).
pub(crate) fn close_pairs(
    topology: Topology,
    sets: &[&Region],
    bound: u32,
) -> Vec<(usize, usize, u32)> {
    let mut out = Vec::new();
    if sets.len() < 2 {
        return out;
    }
    let mesh = topology.kind() == TopologyKind::Mesh;
    let boxes: Vec<Option<Rect>> = sets.iter().map(|s| s.bbox()).collect();
    let mut boundaries: Vec<Option<Vec<Coord>>> = vec![None; sets.len()];
    let mut order: Vec<usize> = (0..sets.len()).filter(|&i| boxes[i].is_some()).collect();
    order.sort_by_key(|&i| boxes[i].expect("filtered").min.x);
    for (pos, &i) in order.iter().enumerate() {
        let bi = boxes[i].expect("filtered");
        for &j in &order[pos + 1..] {
            let bj = boxes[j].expect("filtered");
            if mesh {
                if bj.min.x - bi.max.x >= bound as i32 {
                    // Sorted by min.x: every later set is even further.
                    break;
                }
                if bi.distance(bj) >= bound {
                    continue;
                }
            }
            let d = exact_min_distance(topology, sets, &mut boundaries, i, j);
            if d < bound {
                out.push((i.min(j), i.max(j), d));
            }
        }
    }
    out.sort_unstable();
    out
}

/// Exact minimum topology distance between two cell sets, scanning only
/// boundary cells (memoized per set across pairs).
fn exact_min_distance(
    topology: Topology,
    sets: &[&Region],
    boundaries: &mut [Option<Vec<Coord>>],
    i: usize,
    j: usize,
) -> u32 {
    for k in [i, j] {
        if boundaries[k].is_none() {
            boundaries[k] = Some(boundary_cells(sets[k]));
        }
    }
    let (a, b) = (
        boundaries[i].as_ref().expect("memoized"),
        boundaries[j].as_ref().expect("memoized"),
    );
    let mut best = u32::MAX;
    for &u in a {
        for &v in b {
            best = best.min(topology.distance(u, v));
            if best == 0 {
                return 0;
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{run_pipeline, PipelineConfig};
    use ocp_mesh::Topology;

    fn c(x: i32, y: i32) -> Coord {
        Coord::new(x, y)
    }

    fn converged(t: Topology, faults: &[Coord]) -> (FaultMap, PipelineOutcome) {
        let map = FaultMap::new(t, faults.iter().copied());
        let out = run_pipeline(&map, &PipelineConfig::default());
        (map, out)
    }

    #[test]
    fn valid_outcomes_certify_and_check() {
        for faults in [
            vec![],
            vec![c(1, 3), c(2, 1), c(3, 2)],
            vec![c(3, 3), c(4, 4)],
        ] {
            let (map, out) = converged(Topology::mesh(8, 8), &faults);
            let cert = EpochCertificate::describe(7, &map, &out);
            assert_eq!(cert.epoch, 7);
            assert_eq!(cert.fault_count, faults.len());
            let report = cert.check(&map, &out).expect("valid outcome certifies");
            assert_eq!(report.regions_checked, out.regions.len());
        }
    }

    #[test]
    fn certificate_serializes_and_round_trips() {
        let (map, out) = converged(Topology::mesh(8, 8), &[c(3, 3), c(4, 4), c(3, 5)]);
        let cert = EpochCertificate::describe(2, &map, &out);
        let json = serde_json::to_string(&cert).unwrap();
        let back: EpochCertificate = serde_json::from_str(&json).unwrap();
        assert_eq!(cert, back);
        back.check(&map, &out)
            .expect("deserialized cert still checks");
    }

    #[test]
    fn digest_tracks_every_grid_and_identity_change() {
        let (map, out) = converged(Topology::mesh(8, 8), &[c(3, 3)]);
        let d0 = outcome_digest(&map, &out);
        assert_eq!(d0, outcome_digest(&map, &out), "deterministic");
        let (map2, out2) = converged(Topology::mesh(8, 8), &[c(3, 4)]);
        assert_ne!(d0, outcome_digest(&map2, &out2), "different fault set");
        let (map3, out3) = converged(Topology::torus(8, 8), &[c(3, 3)]);
        assert_ne!(d0, outcome_digest(&map3, &out3), "different topology");
        let mut tampered = out.clone();
        tampered.activation.set(c(0, 0), ActivationState::Disabled);
        assert_ne!(d0, outcome_digest(&map, &tampered), "one flipped cell");
    }

    #[test]
    fn check_rejects_a_certificate_for_a_different_outcome() {
        let (map_a, out_a) = converged(Topology::mesh(10, 10), &[c(3, 3)]);
        let (map_b, out_b) = converged(Topology::mesh(10, 10), &[c(7, 7)]);
        let cert_a = EpochCertificate::describe(0, &map_a, &out_a);
        let errs = cert_a.check(&map_b, &out_b).unwrap_err();
        assert!(
            errs.iter()
                .any(|v| matches!(v, Violation::DigestMismatch { .. })),
            "{errs:?}"
        );
    }

    #[test]
    fn close_pairs_matches_brute_force() {
        use rand::{rngs::SmallRng, seq::SliceRandom, SeedableRng};
        for t in [Topology::mesh(20, 20), Topology::torus(20, 20)] {
            for seed in 0..6u64 {
                let mut rng = SmallRng::seed_from_u64(seed);
                let mut all: Vec<Coord> = t.coords().collect();
                all.shuffle(&mut rng);
                let faults: Vec<Coord> = all.into_iter().take(28).collect();
                let (_map, out) = converged(t, &faults);
                let sets: Vec<&Region> = out.regions.iter().map(|r| &r.cells).collect();
                for bound in [2u32, 4, 7] {
                    let fast = close_pairs(t, &sets, bound);
                    let mut brute = Vec::new();
                    for i in 0..sets.len() {
                        for j in i + 1..sets.len() {
                            let mut best = u32::MAX;
                            for u in sets[i].iter() {
                                for v in sets[j].iter() {
                                    best = best.min(t.distance(u, v));
                                }
                            }
                            if best < bound {
                                brute.push((i, j, best));
                            }
                        }
                    }
                    assert_eq!(fast, brute, "{t:?} seed {seed} bound {bound}");
                }
            }
        }
    }

    #[test]
    fn torus_wrapped_regions_are_witnessed_as_wrapped() {
        // A full row of faults on a small torus wraps around: no planar
        // embedding exists and the geometric witnesses are skipped.
        let t = Topology::torus(6, 6);
        let faults: Vec<Coord> = (0..6).map(|x| c(x, 2)).collect();
        let (map, out) = converged(t, &faults);
        let cert = EpochCertificate::describe(0, &map, &out);
        let report = cert.check(&map, &out).expect("wrapped outcome certifies");
        assert!(
            cert.regions.iter().any(|w| w.wrapped) || report.wrapped_regions == 0,
            "wrapped witnesses align with the report"
        );
        assert_eq!(
            cert.regions.iter().filter(|w| w.wrapped).count(),
            report.wrapped_regions
        );
    }

    #[test]
    fn fnv_is_stable() {
        // Reference vectors for FNV-1a 64-bit.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        let mut h = Fnv1a::new();
        h.write(b"ab");
        let mut g = Fnv1a::new();
        g.write(b"a");
        g.write(b"b");
        assert_eq!(h.finish(), g.finish(), "incremental == one-shot");
    }

    // ----- mutation-negative tests: each distinct corruption of a
    // converged outcome must be rejected with the matching violation -----

    /// The 2x3 block pattern: faults at the four corners of a 2-wide,
    /// 3-tall rectangle. Under the classical rule (Def 2a) the whole
    /// rectangle is one block and one region, with `(2,3)` and `(3,3)`
    /// nonfaulty members.
    fn two_by_three() -> (FaultMap, PipelineOutcome) {
        let map = FaultMap::new(Topology::mesh(10, 10), [c(2, 2), c(3, 2), c(2, 4), c(3, 4)]);
        let out = run_pipeline(
            &map,
            &PipelineConfig {
                rule: SafetyRule::TwoUnsafeNeighbors,
                ..PipelineConfig::default()
            },
        );
        assert_eq!(out.regions.len(), 1, "fixture: one merged 2x3 region");
        assert_eq!(out.regions[0].cells.len(), 6);
        (map, out)
    }

    fn rejects_with(
        map: &FaultMap,
        out: &PipelineOutcome,
        pred: impl Fn(&Violation) -> bool,
        label: &str,
    ) {
        let cert = EpochCertificate::describe(1, map, out);
        let errs = cert.check(map, out).expect_err(label);
        assert!(errs.iter().any(pred), "{label}: got {errs:?}");
    }

    #[test]
    fn mutation_relabel_fault_safe_is_rejected() {
        let (map, mut out) = two_by_three();
        out.safety.set(c(2, 2), SafetyState::Safe);
        out.activation.set(c(2, 2), ActivationState::Enabled);
        rejects_with(
            &map,
            &out,
            |v| matches!(v, Violation::FaultNotCovered { fault } if *fault == c(2, 2)),
            "fault relabeled safe",
        );
    }

    #[test]
    fn mutation_shaved_region_cell_is_rejected_as_nonconvex() {
        let (map, mut out) = two_by_three();
        // Shave the nonfaulty mid-edge cell (3,3): the region stays
        // connected through column x=2 but column x=3 now has a hole.
        assert!(!map.is_faulty(c(3, 3)), "mutation target must be nonfaulty");
        out.activation.set(c(3, 3), ActivationState::Enabled);
        rejects_with(
            &map,
            &out,
            |v| matches!(v, Violation::RegionNotConvex { .. }),
            "shaved region cell",
        );
    }

    #[test]
    fn mutation_widened_region_is_rejected_as_nonminimal() {
        let (map, mut out) = two_by_three();
        // Widen the region one cell past its closure: still orthogonally
        // convex, but no longer the *smallest* polygon covering its faults.
        out.activation.set(c(4, 3), ActivationState::Disabled);
        rejects_with(
            &map,
            &out,
            |v| matches!(v, Violation::RegionNotMinimal { .. }),
            "widened region",
        );
    }

    #[test]
    fn mutation_regions_below_spacing_are_rejected() {
        let (map, mut out) = two_by_three();
        // Re-declare the single region as two pieces at distance 1 — two
        // published regions closer than the paper's spacing bound. The
        // grids are untouched, so only the declared-region checks can
        // catch this.
        let region = out.regions.remove(0);
        let (left_cells, right_cells): (Vec<Coord>, Vec<Coord>) =
            region.cells.iter().partition(|cell| cell.x == 2);
        for cells in [left_cells, right_cells] {
            let faults = Region::from_cells(cells.iter().copied().filter(|&f| map.is_faulty(f)));
            let piece = Region::from_cells(cells);
            out.regions.push(DisabledRegion {
                planar: Some(piece.clone()),
                planar_faults: Some(faults.clone()),
                cells: piece,
                faults,
            });
        }
        rejects_with(
            &map,
            &out,
            |v| matches!(v, Violation::RegionsTooClose { distance: 1, .. }),
            "regions below spacing",
        );
    }

    #[test]
    fn mutation_merged_regions_across_the_gap_are_rejected() {
        // Two singleton regions at the legal distance 2; disabling the
        // bridge cell merges them into one grid component that no block
        // contains.
        let (map, mut out) = converged(Topology::mesh(10, 10), &[c(2, 2), c(2, 4)]);
        assert_eq!(out.regions.len(), 2);
        out.activation.set(c(2, 3), ActivationState::Disabled);
        rejects_with(
            &map,
            &out,
            |v| matches!(v, Violation::RegionOutsideBlock { .. }),
            "merged regions",
        );
    }

    #[test]
    fn mutation_tampered_closure_witness_is_rejected() {
        // The outcome is untouched — only the certificate's Theorem-2
        // minimality witness lies. Both checker paths must notice.
        let (map, out) = two_by_three();
        let mut cert = EpochCertificate::describe(1, &map, &out);
        cert.regions[0].closure_cells += 1;
        let errs = cert
            .check(&map, &out)
            .expect_err("tampered closure witness");
        assert!(
            errs.iter().any(
                |v| matches!(v, Violation::CertificateMismatch { what } if what.contains("witness"))
            ),
            "declared path: {errs:?}"
        );

        // Torus outcomes take the extracted path (compare_facts).
        let (map, out) = converged(Topology::torus(10, 10), &[c(3, 3)]);
        assert!(!out.regions.is_empty(), "fixture: at least one region");
        let mut cert = EpochCertificate::describe(1, &map, &out);
        cert.regions[0].closure_cells += 1;
        let errs = cert.check(&map, &out).expect_err("tampered torus witness");
        assert!(
            errs.iter().any(
                |v| matches!(v, Violation::CertificateMismatch { what } if what.contains("witness"))
            ),
            "extracted path: {errs:?}"
        );
    }

    #[test]
    fn mutation_tampered_declared_blocks_are_rejected() {
        let (map, mut out) = two_by_three();
        out.blocks.pop();
        rejects_with(
            &map,
            &out,
            |v| matches!(v, Violation::OutcomeInconsistent { .. }),
            "dropped declared block",
        );
    }
}
