//! The paper's open problem, made executable.
//!
//! Section 4 (and the conclusion) leave open: *"For a given faulty block,
//! find a set of orthogonal convex polygons that covers all the faults in
//! the block and contains a minimum number of nonfaulty nodes"* —
//! conjectured NP-complete (D. Z. Chen, private communication in the
//! paper).
//!
//! This module provides an **exact solver for small instances** by
//! exhaustive search over set partitions of the fault cells: a candidate
//! solution assigns each fault to a group; a group's polygon is the
//! orthogonal convex closure of its faults (the smallest polygon covering
//! them — Theorem 2's construction); a partition is *feasible* when the
//! groups' polygons are pairwise at Manhattan distance ≥ 2 (the separation
//! disabled regions themselves satisfy, so they remain distinct fault
//! regions for routing). The cost is the total number of nonfaulty nodes
//! across the polygons.
//!
//! The exact optimum lower-bounds the disabled-region decomposition, so
//! [`optimality_gap`] quantifies how much the (conjectured-hard) optimum
//! could still save over the paper's distributed construction — the
//! experiment the paper could not run.

use ocp_geometry::{orthogonal_convex_closure, Region};
use serde::{Deserialize, Serialize};

/// An exact solution of the open problem for one fault set.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct OptimalPartition {
    /// Fault groups of the optimal partition (each sorted).
    pub groups: Vec<Vec<ocp_mesh::Coord>>,
    /// The groups' polygons (orthogonal convex closures).
    pub polygons: Vec<Region>,
    /// Total nonfaulty nodes inside the polygons (the objective).
    pub cost: usize,
    /// Set partitions examined (search-effort telemetry).
    pub partitions_examined: u64,
}

/// Default cap on the number of faults the exact solver accepts. Bell(10)
/// = 115,975 partitions; with memoized subset closures that is fast, while
/// Bell(13) is already two orders of magnitude more.
pub const EXACT_FAULT_LIMIT: usize = 10;

/// Exactly solves the minimum-nonfaulty-cover problem for `faults`.
///
/// Returns `None` when `faults` is larger than `limit` (exhaustive search
/// would be intractable — the conjectured NP-completeness is the point of
/// the open problem).
///
/// ```
/// use ocp_core::partition::optimal_partition;
/// use ocp_geometry::{Region, Coord};
///
/// // Four faults at the corners of a 3x3 square: one polygon would have
/// // to fill all 5 interior cells, but four singleton polygons (pairwise
/// // distance 2) cover the faults for free.
/// let corners = Region::from_cells([
///     Coord::new(0, 0), Coord::new(2, 0), Coord::new(0, 2), Coord::new(2, 2),
/// ]);
/// let best = optimal_partition(&corners, 8).unwrap();
/// assert_eq!(best.cost, 0);
/// assert_eq!(best.polygons.len(), 4);
/// ```
pub fn optimal_partition(faults: &Region, limit: usize) -> Option<OptimalPartition> {
    let cells: Vec<ocp_mesh::Coord> = faults.iter().collect();
    let n = cells.len();
    if n == 0 {
        return Some(OptimalPartition {
            groups: Vec::new(),
            polygons: Vec::new(),
            cost: 0,
            partitions_examined: 1,
        });
    }
    if n > limit {
        return None;
    }

    // Memoize the closure and cost of every fault subset (2^n of them).
    let subsets = 1usize << n;
    let mut closures: Vec<Option<Region>> = vec![None; subsets];
    let mut costs: Vec<usize> = vec![0; subsets];
    for mask in 1..subsets {
        let group = Region::from_cells((0..n).filter(|i| mask & (1 << i) != 0).map(|i| cells[i]));
        let closure = orthogonal_convex_closure(&group);
        costs[mask] = closure.len() - group.len();
        closures[mask] = Some(closure);
    }
    // Pairwise compatibility of groups is checked lazily between closure
    // regions (distance ≥ 2).
    let compatible = |a: usize, b: usize| -> bool {
        let (ca, cb) = (closures[a].as_ref().unwrap(), closures[b].as_ref().unwrap());
        match ca.distance(cb) {
            Some(d) => d >= 2,
            None => true,
        }
    };

    // Enumerate set partitions via restricted growth strings, pruning on
    // cost. Groups are represented by their bitmasks.
    let mut best_cost = usize::MAX;
    let mut best_groups: Vec<usize> = Vec::new();
    let mut examined: u64 = 0;

    #[allow(clippy::too_many_arguments)]
    fn recurse(
        i: usize,
        n: usize,
        groups: &mut Vec<usize>,
        running_cost: usize,
        costs: &[usize],
        compatible: &dyn Fn(usize, usize) -> bool,
        best_cost: &mut usize,
        best_groups: &mut Vec<usize>,
        examined: &mut u64,
    ) {
        if running_cost >= *best_cost {
            return; // prune: cost only grows
        }
        if i == n {
            *examined += 1;
            // Feasibility: pairwise separation of the groups' polygons.
            for a in 0..groups.len() {
                for b in a + 1..groups.len() {
                    if !compatible(groups[a], groups[b]) {
                        return;
                    }
                }
            }
            *best_cost = running_cost;
            *best_groups = groups.clone();
            return;
        }
        let bit = 1usize << i;
        // Join an existing group...
        for g in 0..groups.len() {
            let old = groups[g];
            let new = old | bit;
            let delta = costs[new] - costs[old];
            groups[g] = new;
            recurse(
                i + 1,
                n,
                groups,
                running_cost + delta,
                costs,
                compatible,
                best_cost,
                best_groups,
                examined,
            );
            groups[g] = old;
        }
        // ...or open a new one (restricted growth keeps partitions unique).
        groups.push(bit);
        recurse(
            i + 1,
            n,
            groups,
            running_cost + costs[bit],
            costs,
            compatible,
            best_cost,
            best_groups,
            examined,
        );
        groups.pop();
    }

    let mut groups = Vec::new();
    recurse(
        0,
        n,
        &mut groups,
        0,
        &costs,
        &compatible,
        &mut best_cost,
        &mut best_groups,
        &mut examined,
    );
    // The all-singletons partition is always feasible? Not necessarily —
    // two faults at distance 1 are one cell each but closer than 2. The
    // whole-set single group is always feasible, so a solution exists.
    debug_assert!(best_cost != usize::MAX);

    // Normalize: a group's closure may be disconnected (faults sharing no
    // line); each connected component is its own polygon, with identical
    // total cost, and components of a closed set are automatically ≥ 2
    // apart (distance-1 or colinear-distance-2 cells would have been
    // merged by the closure). Splitting yields the canonical finest form.
    let mut polygons: Vec<Region> = Vec::new();
    let mut group_cells: Vec<Vec<ocp_mesh::Coord>> = Vec::new();
    for &mask in &best_groups {
        let group: Vec<ocp_mesh::Coord> = (0..n)
            .filter(|i| mask & (1 << i) != 0)
            .map(|i| cells[i])
            .collect();
        let closure = orthogonal_convex_closure(&Region::from_cells(group.iter().copied()));
        for component in split_components(&closure) {
            let members: Vec<ocp_mesh::Coord> = group
                .iter()
                .copied()
                .filter(|&f| component.contains(f))
                .collect();
            debug_assert!(!members.is_empty());
            polygons.push(component);
            group_cells.push(members);
        }
    }
    Some(OptimalPartition {
        groups: group_cells,
        polygons,
        cost: best_cost,
        partitions_examined: examined,
    })
}

/// Connected components of a planar region (4-connectivity).
fn split_components(region: &Region) -> Vec<Region> {
    let mut remaining: std::collections::BTreeSet<ocp_mesh::Coord> = region.iter().collect();
    let mut out = Vec::new();
    while let Some(&start) = remaining.iter().next() {
        let mut comp = Vec::new();
        let mut stack = vec![start];
        remaining.remove(&start);
        while let Some(c) = stack.pop() {
            comp.push(c);
            for nb in c.raw_neighbors() {
                if remaining.remove(&nb) {
                    stack.push(nb);
                }
            }
        }
        out.push(Region::from_cells(comp));
    }
    out
}

/// Gap between the disabled-region decomposition of one faulty block and
/// the exact optimum for the same faults.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct OptimalityGap {
    /// Nonfaulty nodes inside the block's disabled regions.
    pub dr_cost: usize,
    /// Nonfaulty nodes in the optimal partition.
    pub optimal_cost: usize,
}

impl OptimalityGap {
    /// Absolute number of extra nonfaulty nodes the distributed
    /// construction sacrifices over the optimum.
    pub fn excess(&self) -> usize {
        self.dr_cost - self.optimal_cost
    }
}

/// Measures the gap for one block, given the disabled regions extracted
/// from it. Returns `None` when the block exceeds the exact solver's fault
/// limit or wraps a torus.
pub fn optimality_gap(
    block: &crate::blocks::FaultyBlock,
    regions_of_block: &[&crate::regions::DisabledRegion],
    limit: usize,
) -> Option<OptimalityGap> {
    // Work in planar coordinates so closures are meaningful on tori. For
    // meshes (and torus blocks that didn't cross a seam) the embedding is
    // the identity and the faults are already planar; translated seam
    // blocks are skipped (rare, small-torus-only).
    let planar = block.planar.as_ref()?;
    if &block.cells != planar {
        return None;
    }
    let dr_cost: usize = regions_of_block.iter().map(|r| r.nonfaulty_count()).sum();
    let optimal = optimal_partition(&block.faults, limit)?;
    debug_assert!(
        optimal.cost <= dr_cost,
        "optimum can never exceed the DR cost"
    );
    Some(OptimalityGap {
        dr_cost,
        optimal_cost: optimal.cost,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocp_mesh::Coord;

    fn c(x: i32, y: i32) -> Coord {
        Coord::new(x, y)
    }

    fn region(raw: &[(i32, i32)]) -> Region {
        Region::from_cells(raw.iter().map(|&(x, y)| c(x, y)))
    }

    #[test]
    fn empty_and_singleton() {
        let empty = optimal_partition(&Region::new(), 8).unwrap();
        assert_eq!(empty.cost, 0);
        let single = optimal_partition(&region(&[(3, 3)]), 8).unwrap();
        assert_eq!(single.cost, 0);
        assert_eq!(single.groups.len(), 1);
    }

    #[test]
    fn far_apart_faults_split_for_free() {
        let opt = optimal_partition(&region(&[(0, 0), (10, 10)]), 8).unwrap();
        assert_eq!(opt.cost, 0);
        assert_eq!(opt.groups.len(), 2);
    }

    #[test]
    fn diagonal_pair_splits_into_singletons() {
        // Distance 2: the two singleton polygons are feasible and free;
        // grouping them would cost 2 (the 2x2 closure).
        let opt = optimal_partition(&region(&[(0, 0), (1, 1)]), 8).unwrap();
        assert_eq!(opt.cost, 0);
        assert_eq!(opt.groups.len(), 2);
    }

    #[test]
    fn adjacent_faults_must_stay_together() {
        // Distance 1 singletons are infeasible (closures too close), so the
        // only solution is one group — which costs nothing since the
        // closure of a domino is the domino.
        let opt = optimal_partition(&region(&[(0, 0), (1, 0)]), 8).unwrap();
        assert_eq!(opt.groups.len(), 1);
        assert_eq!(opt.cost, 0);
    }

    #[test]
    fn section3_example_optimum_is_free() {
        // Faults (1,3),(2,1),(3,2): three singletons pairwise distance
        // 2-3 -> cost 0, like the disabled regions.
        let opt = optimal_partition(&region(&[(1, 3), (2, 1), (3, 2)]), 8).unwrap();
        assert_eq!(opt.cost, 0);
        assert_eq!(opt.groups.len(), 3);
    }

    #[test]
    fn optimum_beats_single_region_when_splitting_helps() {
        // An L of faults plus one fault diagonal to its elbow: keeping all
        // in one polygon forces closure fill; splitting the diagonal fault
        // off is blocked by distance... construct a case with a real gap:
        // faults at corners of a 3x3 square. One polygon costs
        // closure = full plus shape? corners (0,0),(2,0),(0,2),(2,2):
        // closure fills the whole 3x3 (cost 5). Optimal: each corner alone,
        // pairwise distance 2 -> feasible, cost 0.
        let corners = region(&[(0, 0), (2, 0), (0, 2), (2, 2)]);
        let opt = optimal_partition(&corners, 8).unwrap();
        assert_eq!(opt.cost, 0);
        assert_eq!(opt.groups.len(), 4);
        let single = orthogonal_convex_closure(&corners);
        assert_eq!(single.len() - 4, 5); // one-polygon cost would be 5
    }

    #[test]
    fn l_triomino_is_free() {
        // (0,0),(1,0),(1,1): an L-triomino is already orthogonally convex,
        // so keeping it whole costs nothing (and splitting is infeasible —
        // the cells are adjacent).
        let opt = optimal_partition(&region(&[(0, 0), (1, 0), (1, 1)]), 8).unwrap();
        assert_eq!(opt.cost, 0);
        assert_eq!(opt.groups.len(), 1);
    }

    #[test]
    fn forced_grouping_with_cost() {
        // A U of faults: every partition that severs the bottom bar leaves
        // two polygons at distance 1 (infeasible), so the whole U must be
        // one polygon, whose closure fills the 2-cell pocket. Optimum = 2.
        let u = region(&[(0, 0), (0, 1), (0, 2), (1, 0), (2, 0), (2, 1), (2, 2)]);
        let opt = optimal_partition(&u, 8).unwrap();
        assert_eq!(opt.cost, 2);
        assert_eq!(opt.groups.len(), 1);
        assert_eq!(opt.polygons[0].len(), 9);
    }

    #[test]
    fn over_limit_returns_none() {
        let many = region(&[
            (0, 0),
            (2, 0),
            (4, 0),
            (6, 0),
            (8, 0),
            (0, 2),
            (2, 2),
            (4, 2),
            (6, 2),
            (8, 2),
            (10, 2),
        ]);
        assert!(optimal_partition(&many, 10).is_none());
        assert!(optimal_partition(&many, 11).is_some());
    }

    #[test]
    fn polygons_are_convex_and_cover_their_groups() {
        let faults = region(&[(0, 0), (1, 1), (4, 0), (5, 2), (4, 4)]);
        let opt = optimal_partition(&faults, 8).unwrap();
        for (group, poly) in opt.groups.iter().zip(&opt.polygons) {
            assert!(ocp_geometry::is_orthogonally_convex(poly));
            for &f in group {
                assert!(poly.contains(f));
            }
        }
        // Total faults preserved.
        let total: usize = opt.groups.iter().map(|g| g.len()).sum();
        assert_eq!(total, faults.len());
    }

    #[test]
    fn dr_decomposition_gap_is_zero_on_simple_blocks() {
        use crate::pipeline::{run_pipeline, PipelineConfig};
        use crate::status::FaultMap;
        use ocp_mesh::Topology;
        let map = FaultMap::new(Topology::mesh(8, 8), [c(2, 2), c(3, 3), c(2, 4)]);
        let out = run_pipeline(&map, &PipelineConfig::default());
        assert_eq!(out.blocks.len(), 1);
        let grouped = out.regions_per_block();
        let gap = optimality_gap(&out.blocks[0], &grouped[0], 8).unwrap();
        assert!(gap.optimal_cost <= gap.dr_cost);
    }
}
