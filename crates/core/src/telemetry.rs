//! Hooks from the labeling pipeline into the global `ocp-obs` registry.
//!
//! Each labeling phase records **exactly once per logical run**, at the
//! engine-dispatch boundary (`compute_*_with` / the maintenance warm
//! path) — never inside an engine, so no path double-counts. That
//! exactly-once discipline is what the metrics-oracle test suite pins: the
//! exported counter deltas must equal the `RunTrace` ground truth.
//!
//! All functions here are no-ops while [`ocp_obs::enabled`] is false; the
//! disabled cost is the one relaxed load inside [`PhaseTimer::start`].

use crate::labeling::LabelEngine;
use crate::pipeline::PipelineOutcome;
use ocp_distsim::RunTrace;
use std::time::Instant;

/// Captures a start time only when observability is on, so the disabled
/// path never calls the clock.
pub(crate) struct PhaseTimer(Option<Instant>);

impl PhaseTimer {
    /// Starts timing iff observability is enabled.
    pub fn start() -> Self {
        Self(ocp_obs::enabled().then(Instant::now))
    }
}

fn as_nanos(d: std::time::Duration) -> u64 {
    d.as_nanos().min(u64::MAX as u128) as u64
}

/// Records one completed labeling phase run. `phase` is `safety`,
/// `safety-warm`, or `enablement`.
pub(crate) fn record_phase(
    phase: &'static str,
    engine: LabelEngine,
    trace: &RunTrace,
    timer: PhaseTimer,
) {
    let Some(start) = timer.0 else { return };
    let elapsed = start.elapsed();
    let engine_label = engine.label();
    let labels: &[(&str, &str)] = &[("engine", &engine_label), ("phase", phase)];
    let reg = ocp_obs::global();
    reg.counter(
        "ocp_labeling_runs_total",
        "Labeling phase runs completed, by engine and phase.",
        labels,
    )
    .inc();
    reg.counter(
        "ocp_labeling_rounds_total",
        "Rounds executed (including the trailing quiet round), by engine and phase.",
        labels,
    )
    .add(u64::from(trace.rounds_executed()));
    reg.counter(
        "ocp_labeling_flips_total",
        "Node state flips summed over all rounds, by engine and phase.",
        labels,
    )
    .add(trace.total_changes());
    reg.counter(
        "ocp_labeling_messages_total",
        "Status messages charged by the paper's accounting (each participating node's real links, every round), by engine and phase.",
        labels,
    )
    .add(trace.messages_sent);
    if !trace.converged {
        reg.counter(
            "ocp_labeling_unconverged_total",
            "Phase runs that stopped at the round cap without a quiet round.",
            labels,
        )
        .inc();
    }
    reg.histogram(
        "ocp_labeling_phase_duration_ns",
        "Wall-clock duration of one labeling phase run, nanoseconds.",
        labels,
    )
    .record(as_nanos(elapsed));
    ocp_obs::tracer()
        .span_at(&format!("labeling/{phase}"), start)
        .field("engine", &engine_label)
        .field("rounds", trace.rounds_executed())
        .field("flips", trace.total_changes())
        .field("converged", trace.converged)
        .finish();
}

/// Records one completed two-phase pipeline run.
pub(crate) fn record_pipeline(engine: LabelEngine, outcome: &PipelineOutcome, timer: PhaseTimer) {
    let Some(start) = timer.0 else { return };
    let engine_label = engine.label();
    let labels: &[(&str, &str)] = &[("engine", &engine_label)];
    let reg = ocp_obs::global();
    reg.counter(
        "ocp_pipeline_runs_total",
        "Full two-phase pipeline runs completed, by engine.",
        labels,
    )
    .inc();
    reg.histogram(
        "ocp_pipeline_duration_ns",
        "Wall-clock duration of one full pipeline run, nanoseconds.",
        labels,
    )
    .record(as_nanos(start.elapsed()));
    ocp_obs::tracer()
        .span_at("pipeline", start)
        .field("engine", &engine_label)
        .field("blocks", outcome.blocks.len())
        .field("regions", outcome.regions.len())
        .field("safety_rounds", outcome.safety_trace.rounds_executed())
        .field(
            "enablement_rounds",
            outcome.enablement_trace.rounds_executed(),
        )
        .finish();
}
