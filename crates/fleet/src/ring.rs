//! Consistent-hash tenant placement.
//!
//! Tenants are assigned to a fixed number of **shards** through a
//! consistent-hash ring with virtual nodes: each shard contributes many
//! points on a `u64` ring, and a tenant lands on the shard owning the
//! first point at or after the tenant's own hash. The properties the
//! fleet cares about:
//!
//! * **Determinism** — placement is a pure function of the tenant name
//!   and the shard count, so a recovered fleet reconstructs the exact
//!   same placement without persisting it.
//! * **Stability** — growing the fleet from `n` to `n+1` shards moves
//!   only `~1/(n+1)` of tenants, because only ring intervals claimed by
//!   the new shard's virtual nodes change owners.
//! * **Balance** — virtual nodes (128 per shard by default) smooth the
//!   interval sizes so tenant counts stay within a small factor across
//!   shards.
//!
//! Shard ids are the bounded-cardinality label the fleet's Prometheus
//! page uses (see [`ocp_obs::tenant_label`]): metrics never carry raw
//! tenant names, so a hostile tenant cannot blow up series cardinality.
//!
//! The hash is FNV-1a over the UTF-8 bytes — dependency-free, stable
//! across platforms and releases, and good enough for placement (this is
//! load spreading, not an adversarial hash table).

/// Virtual nodes per shard: enough to keep per-shard tenant counts
/// within a small factor of each other at fleet sizes this crate targets
/// (2–64 shards).
pub const VNODES_PER_SHARD: usize = 128;

/// FNV-1a offset basis (64-bit).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime (64-bit).
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// 64-bit FNV-1a over `bytes`.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Finalizing avalanche (splitmix64's mixer). Raw FNV-1a of short,
/// near-identical keys ("shard0/vnode1", "shard0/vnode2", …) clusters
/// badly on the ring — low bytes barely diffuse into high bits — so ring
/// points and lookup keys both pass through this mixer.
fn mix64(mut h: u64) -> u64 {
    h ^= h >> 30;
    h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^ (h >> 31)
}

/// The ring-point hash: FNV-1a with a finalizing avalanche.
fn point_hash(bytes: &[u8]) -> u64 {
    mix64(fnv1a(bytes))
}

/// A consistent-hash ring mapping tenant names to shard ids.
#[derive(Clone, Debug)]
pub struct HashRing {
    /// `(ring_point, shard)` sorted by point; lookup is a binary search
    /// for the first point ≥ the key hash, wrapping to the start.
    points: Vec<(u64, usize)>,
    shards: usize,
}

impl HashRing {
    /// Builds a ring for `shards` shards with [`VNODES_PER_SHARD`]
    /// virtual nodes each.
    ///
    /// # Panics
    /// Panics if `shards` is zero.
    pub fn new(shards: usize) -> Self {
        assert!(shards > 0, "a fleet needs at least one shard");
        let mut points = Vec::with_capacity(shards * VNODES_PER_SHARD);
        for shard in 0..shards {
            for vnode in 0..VNODES_PER_SHARD {
                let key = format!("shard{shard}/vnode{vnode}");
                points.push((point_hash(key.as_bytes()), shard));
            }
        }
        points.sort_unstable();
        points.dedup_by_key(|&mut (p, _)| p);
        Self { points, shards }
    }

    /// The shard owning `tenant`.
    pub fn shard(&self, tenant: &str) -> usize {
        let h = point_hash(tenant.as_bytes());
        let idx = self.points.partition_point(|&(p, _)| p < h);
        // Wrap past the last point back to the first (it's a ring).
        let (_, shard) = self.points[idx % self.points.len()];
        shard
    }

    /// Number of shards the ring was built for.
    pub fn shards(&self) -> usize {
        self.shards
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Published FNV-1a 64-bit test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn placement_is_deterministic() {
        let a = HashRing::new(8);
        let b = HashRing::new(8);
        for name in ["alice", "bob", "tenant-42", "x"] {
            assert_eq!(a.shard(name), b.shard(name));
            assert!(a.shard(name) < 8);
        }
    }

    #[test]
    fn growing_the_fleet_moves_few_tenants() {
        let before = HashRing::new(8);
        let after = HashRing::new(9);
        let tenants: Vec<String> = (0..2_000).map(|i| format!("tenant-{i}")).collect();
        let moved = tenants
            .iter()
            .filter(|t| before.shard(t) != after.shard(t))
            .count();
        // Ideal is 1/9 ≈ 222; allow generous slack, but far below the
        // ~7/8 a modulo hash would reshuffle.
        assert!(
            moved < 2_000 / 3,
            "consistent hashing moved {moved}/2000 tenants"
        );
    }

    #[test]
    fn virtual_nodes_keep_shards_balanced() {
        let ring = HashRing::new(4);
        let mut counts = [0usize; 4];
        for i in 0..4_000 {
            counts[ring.shard(&format!("tenant-{i}"))] += 1;
        }
        let (min, max) = (*counts.iter().min().unwrap(), *counts.iter().max().unwrap());
        assert!(min > 0, "a shard received no tenants: {counts:?}");
        assert!(max < min * 3, "imbalanced placement: {counts:?}");
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_is_rejected() {
        let _ = HashRing::new(0);
    }
}
