//! The fleet itself: N independent [`MeshService`] instances behind one
//! address space of tenant names.
//!
//! ## Isolation model
//!
//! Every tenant owns a **whole** mesh service — its own writer thread,
//! event queue, epoch chain, WAL file, and certificate history. The
//! fleet layer adds only *placement* (a consistent-hash ring assigning
//! each tenant to a shard id, used as the bounded-cardinality metrics
//! label), *admission* (per-tenant token buckets plus fleet-wide
//! connection/byte budgets), and *lifecycle* (create/drop/list, durable
//! manifest, graceful drain). Nothing is shared between tenants'
//! epoch machinery, which is what makes the isolation test in this
//! module meaningful rather than vacuous: fault churn, epoch advance,
//! and WAL recovery on tenant A cannot touch tenant B's state because
//! no code path connects them.
//!
//! ## Durability
//!
//! With [`FleetConfig::wal_dir`] set, each tenant's epochs are logged to
//! `<wal_dir>/<name>.wal` and the tenant roster itself is persisted to
//! `<wal_dir>/manifest.json` (rewritten atomically on every create and
//! drop). [`Fleet::recover`] rebuilds the whole fleet from that
//! directory: the manifest restores the roster and each tenant's
//! service is resurrected by [`MeshService::recover`] — placement needs
//! no persistence because the hash ring is deterministic.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Duration;

use ocp_obs::Registry;
use ocp_serve::{MeshService, Request, ServeConfig, ServiceHandle, StatsReport};

use crate::admission::{FleetBudget, TokenBucket};
use crate::api::{FleetRequest, FleetResponse, FleetStatsReply, TenantInfo, TenantSpec};
use crate::ring::HashRing;

/// Tenant names must be non-empty, at most this long, and drawn from
/// `[a-z0-9_-]` — the alphabet that embeds safely in WAL file names and
/// JSON without escaping.
pub const MAX_TENANT_NAME_LEN: usize = 64;

/// Fleet-level configuration.
#[derive(Clone, Debug)]
pub struct FleetConfig {
    /// Shards on the consistent-hash ring (the metrics label space).
    pub shards: usize,
    /// When set, tenants are WAL-backed under this directory and the
    /// roster is persisted to `manifest.json` there.
    pub wal_dir: Option<PathBuf>,
    /// Hard cap on live tenants.
    pub max_tenants: usize,
    /// Per-tenant admission bucket: burst capacity (tokens).
    pub tenant_burst: u64,
    /// Per-tenant admission bucket: sustained refill rate (tokens/sec).
    pub tenant_rate: u64,
    /// Fleet-wide connection budget (applied by the TCP front).
    pub max_connections: u64,
    /// Fleet-wide in-flight request byte budget.
    pub max_inflight_bytes: u64,
    /// Base per-tenant service config; each tenant's [`TenantSpec`]
    /// overrides the safety rule and certificate mode.
    pub serve: ServeConfig,
}

impl Default for FleetConfig {
    fn default() -> Self {
        Self {
            shards: 4,
            wal_dir: None,
            max_tenants: 64,
            tenant_burst: 100_000,
            tenant_rate: 100_000,
            max_connections: 16_384,
            max_inflight_bytes: 64 << 20,
            serve: ServeConfig::default(),
        }
    }
}

/// One live tenant.
struct TenantEntry {
    shard: usize,
    durable: bool,
    spec: TenantSpec,
    /// The owning service; taken out on drop/shutdown.
    service: MeshService,
    /// Prototype query handle, cloned per dispatch.
    handle: ServiceHandle,
    bucket: Arc<TokenBucket>,
}

/// Fleet-lifetime counters backing [`FleetStatsReply`].
#[derive(Default)]
struct FleetCounters {
    created: AtomicU64,
    dropped: AtomicU64,
    requests: AtomicU64,
    throttled: AtomicU64,
    over_budget: AtomicU64,
    unknown_tenant: AtomicU64,
}

struct FleetInner {
    config: FleetConfig,
    ring: HashRing,
    tenants: RwLock<HashMap<String, TenantEntry>>,
    /// Names with a create in flight: reserved *before* the tenant's WAL
    /// is created (which truncates), so two racing creates of the same
    /// name cannot both reach the filesystem. See [`NameReservation`].
    creating: Mutex<HashSet<String>>,
    budget: FleetBudget,
    registry: Registry,
    counters: FleetCounters,
}

/// Releases a name reserved in [`FleetInner::creating`] on every exit
/// path of `create_tenant`. The winner inserts into the tenant map
/// *before* this drops, so a racer always observes either the
/// reservation or the live entry — never a gap.
struct NameReservation<'a> {
    creating: &'a Mutex<HashSet<String>>,
    name: &'a str,
}

impl Drop for NameReservation<'_> {
    fn drop(&mut self) {
        let mut creating = match self.creating.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        creating.remove(self.name);
    }
}

/// The fleet owner: holds the tenant services and tears them down on
/// [`Fleet::shutdown`]. Query paths go through [`FleetHandle`] clones.
pub struct Fleet {
    inner: Arc<FleetInner>,
}

/// A cloneable, thread-safe dispatcher over the fleet — the type the
/// reactor front's workers hold.
#[derive(Clone)]
pub struct FleetHandle {
    inner: Arc<FleetInner>,
}

/// Rejects names that would be unsafe as WAL file names or hostile as
/// metric/label content.
pub fn validate_tenant_name(name: &str) -> Result<(), String> {
    if name.is_empty() || name.len() > MAX_TENANT_NAME_LEN {
        return Err(format!(
            "tenant name must be 1..={MAX_TENANT_NAME_LEN} characters"
        ));
    }
    if !name
        .bytes()
        .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'-' || b == b'_')
    {
        return Err("tenant name may only contain [a-z0-9_-]".into());
    }
    Ok(())
}

impl Fleet {
    /// Starts an empty fleet. Creates `wal_dir` (and an empty manifest)
    /// when durability is configured.
    pub fn new(config: FleetConfig) -> std::io::Result<Self> {
        let fleet = Self::bare(config)?;
        fleet.handle().write_manifest_if_durable()?;
        Ok(fleet)
    }

    /// The shared constructor: allocates the fleet and `wal_dir` but
    /// does **not** touch `manifest.json` — [`Fleet::recover`] must be
    /// able to build an empty fleet without clobbering the very roster
    /// it is about to restore from.
    fn bare(config: FleetConfig) -> std::io::Result<Self> {
        if let Some(dir) = &config.wal_dir {
            std::fs::create_dir_all(dir)?;
        }
        let inner = Arc::new(FleetInner {
            ring: HashRing::new(config.shards),
            budget: FleetBudget::new(config.max_connections, config.max_inflight_bytes),
            registry: Registry::new(),
            counters: FleetCounters::default(),
            tenants: RwLock::new(HashMap::new()),
            creating: Mutex::new(HashSet::new()),
            config,
        });
        Ok(Self { inner })
    }

    /// Rebuilds a durable fleet from `config.wal_dir`: reads the roster
    /// from `manifest.json` and resurrects every tenant's service from
    /// its WAL. Placement and shard labels are recomputed from the
    /// deterministic hash ring.
    ///
    /// # Errors
    /// Fails if `wal_dir` is unset, the manifest is unreadable, or any
    /// tenant's WAL replay fails — a fleet that cannot prove it restored
    /// every tenant refuses to start.
    pub fn recover(config: FleetConfig) -> Result<Self, String> {
        let dir = config
            .wal_dir
            .clone()
            .ok_or_else(|| "recover requires FleetConfig::wal_dir".to_string())?;
        let manifest_path = dir.join("manifest.json");
        let raw = std::fs::read(&manifest_path)
            .map_err(|e| format!("cannot read {}: {e}", manifest_path.display()))?;
        let roster: BTreeMap<String, TenantSpec> =
            serde_json::from_slice(&raw).map_err(|e| format!("corrupt manifest: {e}"))?;

        // `bare`, not `new`: the on-disk manifest must stay intact until
        // the roster it describes is fully restored, so a crash at any
        // point during recovery leaves a manifest that still names every
        // tenant for the next attempt.
        let fleet = Self::bare(config).map_err(|e| format!("fleet init: {e}"))?;
        {
            let handle = fleet.handle();
            let mut tenants = handle.inner.tenants.write().expect("tenant map lock");
            for (name, spec) in roster {
                let wal_path = dir.join(format!("{name}.wal"));
                let serve = handle.serve_config_for(&spec);
                let service = MeshService::recover(&wal_path, serve)
                    .map_err(|e| format!("tenant {name}: WAL recovery failed: {e:?}"))?;
                let entry = handle.entry_for(&name, spec, service, true);
                tenants.insert(name, entry);
            }
            handle
                .inner
                .counters
                .created
                .store(tenants.len() as u64, Ordering::Relaxed);
            handle.tenants_gauge().set(tenants.len() as i64);
        }
        // Canonicalize the manifest against the recovered roster so a
        // second restart recovers the same fleet.
        fleet
            .handle()
            .write_manifest_if_durable()
            .map_err(|e| format!("manifest rewrite after recovery: {e}"))?;
        Ok(fleet)
    }

    /// A cloneable dispatcher for this fleet.
    pub fn handle(&self) -> FleetHandle {
        FleetHandle {
            inner: self.inner.clone(),
        }
    }

    /// Graceful drain: quiesces every tenant's writer (bounded by
    /// `timeout` each), shuts each service down, and returns the final
    /// per-tenant stats, sorted by tenant name.
    pub fn shutdown(self, timeout: Duration) -> Vec<(String, StatsReport)> {
        let entries: Vec<(String, TenantEntry)> = {
            let mut tenants = self.inner.tenants.write().expect("tenant map lock");
            let mut entries: Vec<_> = tenants.drain().collect();
            entries.sort_by(|a, b| a.0.cmp(&b.0));
            entries
        };
        self.handle().tenants_gauge().set(0);
        entries
            .into_iter()
            .map(|(name, entry)| {
                entry.service.quiesce(timeout);
                (name, entry.service.shutdown())
            })
            .collect()
    }
}

impl FleetHandle {
    // ---- dispatch ----------------------------------------------------

    /// Handles one wire frame: JSON-decodes a [`FleetRequest`], runs it,
    /// and JSON-encodes the [`FleetResponse`]. Malformed payloads get a
    /// typed error reply instead of a dropped connection. This is the
    /// closure the reactor front's workers run.
    pub fn dispatch_bytes(&self, payload: &[u8]) -> Vec<u8> {
        let reply = match serde_json::from_slice::<FleetRequest>(payload) {
            Ok(request) => self.dispatch_costed(request, payload.len() as u64),
            Err(e) => FleetResponse::Error {
                message: format!("malformed fleet request: {e}"),
            },
        };
        serde_json::to_vec(&reply).expect("fleet responses always serialize")
    }

    /// Handles one in-process request (byte cost 1 against the fleet
    /// budget — use [`FleetHandle::dispatch_bytes`] on the wire path
    /// where the true frame size is known).
    pub fn dispatch(&self, request: FleetRequest) -> FleetResponse {
        self.dispatch_costed(request, 1)
    }

    fn dispatch_costed(&self, request: FleetRequest, wire_bytes: u64) -> FleetResponse {
        match request {
            FleetRequest::CreateTenant { name, spec } => self.create_tenant(&name, spec),
            FleetRequest::DropTenant { name } => self.drop_tenant(&name),
            FleetRequest::ListTenants => FleetResponse::Tenants {
                tenants: self.list_tenants(),
            },
            FleetRequest::Tenant { tenant, request } => {
                self.tenant_request(&tenant, request, wire_bytes)
            }
            FleetRequest::FleetStats => FleetResponse::FleetStats(self.stats()),
            FleetRequest::MetricsText => FleetResponse::MetricsText {
                text: self.metrics_text(),
            },
        }
    }

    fn tenant_request(&self, tenant: &str, request: Request, wire_bytes: u64) -> FleetResponse {
        // Per-tenant admission first, then the fleet-wide byte budget:
        // a throttled tenant must not consume shared budget.
        let (mut handle, shard, bucket) = {
            let tenants = self.inner.tenants.read().expect("tenant map lock");
            match tenants.get(tenant) {
                Some(entry) => (entry.handle.clone(), entry.shard, entry.bucket.clone()),
                None => {
                    self.inner
                        .counters
                        .unknown_tenant
                        .fetch_add(1, Ordering::Relaxed);
                    return FleetResponse::Error {
                        message: format!("unknown tenant {tenant:?}"),
                    };
                }
            }
        };
        if !bucket.try_take(1) {
            self.inner
                .counters
                .throttled
                .fetch_add(1, Ordering::Relaxed);
            self.inner
                .registry
                .tenant_counter(
                    "ocp_fleet_throttled_total",
                    "Requests rejected by a tenant's admission bucket.",
                    shard,
                )
                .inc();
            return FleetResponse::Throttled {
                tenant: tenant.to_string(),
            };
        }
        if !self.inner.budget.acquire_bytes(wire_bytes) {
            self.inner
                .counters
                .over_budget
                .fetch_add(1, Ordering::Relaxed);
            return FleetResponse::Error {
                message: "fleet over in-flight byte budget".into(),
            };
        }
        let response = handle.dispatch(request);
        self.inner.budget.release_bytes(wire_bytes);
        self.inner.counters.requests.fetch_add(1, Ordering::Relaxed);
        self.inner
            .registry
            .tenant_counter(
                "ocp_fleet_requests_total",
                "Tenant-scoped requests dispatched, labeled by shard id.",
                shard,
            )
            .inc();
        FleetResponse::Tenant {
            tenant: tenant.to_string(),
            response,
        }
    }

    // ---- lifecycle ---------------------------------------------------

    fn create_tenant(&self, name: &str, spec: TenantSpec) -> FleetResponse {
        if let Err(message) = validate_tenant_name(name) {
            return FleetResponse::Error { message };
        }
        // Reserve the name before any filesystem work: creating a durable
        // tenant truncates `<name>.wal`, so two racing creates that both
        // passed a plain duplicate check would have the loser destroy the
        // winner's live log. The reservation is dropped on every exit
        // path, but only after a winner has inserted into the map.
        let _reservation = {
            let mut creating = self.inner.creating.lock().expect("creation guard lock");
            if creating.contains(name) {
                return FleetResponse::Error {
                    message: format!("tenant {name:?} already exists"),
                };
            }
            {
                let tenants = self.inner.tenants.read().expect("tenant map lock");
                if tenants.contains_key(name) {
                    return FleetResponse::Error {
                        message: format!("tenant {name:?} already exists"),
                    };
                }
            }
            creating.insert(name.to_string());
            NameReservation {
                creating: &self.inner.creating,
                name,
            }
        };
        let serve = self.serve_config_for(&spec);
        let durable = self.inner.config.wal_dir.is_some();

        // Build the service *outside* the map lock (cold labeling can be
        // expensive), then insert under the lock.
        let started = if let Some(dir) = &self.inner.config.wal_dir {
            let wal_path = dir.join(format!("{name}.wal"));
            MeshService::start_durable(
                spec.topology,
                spec.initial_faults.iter().copied(),
                serve,
                wal_path,
            )
            .map_err(|e| format!("{e:?}"))
        } else {
            MeshService::start(spec.topology, spec.initial_faults.iter().copied(), serve)
                .map_err(|e| format!("{e:?}"))
        };
        let service = match started {
            Ok(service) => service,
            Err(message) => {
                return FleetResponse::Error {
                    message: format!("tenant {name:?}: {message}"),
                }
            }
        };

        let shard;
        {
            let mut tenants = self.inner.tenants.write().expect("tenant map lock");
            if tenants.contains_key(name) {
                drop(tenants);
                service.quiesce(Duration::from_millis(100));
                let _ = service.shutdown();
                return FleetResponse::Error {
                    message: format!("tenant {name:?} already exists"),
                };
            }
            if tenants.len() >= self.inner.config.max_tenants {
                drop(tenants);
                let _ = service.shutdown();
                return FleetResponse::Error {
                    message: format!("fleet at max_tenants ({})", self.inner.config.max_tenants),
                };
            }
            let entry = self.entry_for(name, spec, service, durable);
            shard = entry.shard;
            tenants.insert(name.to_string(), entry);
            self.tenants_gauge().set(tenants.len() as i64);
        }
        self.inner.counters.created.fetch_add(1, Ordering::Relaxed);
        if let Err(e) = self.write_manifest_if_durable() {
            return FleetResponse::Error {
                message: format!("tenant {name:?} created but manifest write failed: {e}"),
            };
        }
        FleetResponse::Created {
            tenant: name.to_string(),
            shard,
        }
    }

    fn drop_tenant(&self, name: &str) -> FleetResponse {
        let entry = {
            let mut tenants = self.inner.tenants.write().expect("tenant map lock");
            let entry = tenants.remove(name);
            self.tenants_gauge().set(tenants.len() as i64);
            entry
        };
        let Some(entry) = entry else {
            return FleetResponse::Error {
                message: format!("unknown tenant {name:?}"),
            };
        };
        entry.service.quiesce(Duration::from_secs(1));
        let _ = entry.service.shutdown();
        self.inner.counters.dropped.fetch_add(1, Ordering::Relaxed);
        if let Err(e) = self.write_manifest_if_durable() {
            return FleetResponse::Error {
                message: format!("tenant {name:?} dropped but manifest write failed: {e}"),
            };
        }
        FleetResponse::Dropped {
            tenant: name.to_string(),
        }
    }

    fn list_tenants(&self) -> Vec<TenantInfo> {
        let tenants = self.inner.tenants.read().expect("tenant map lock");
        let mut infos: Vec<TenantInfo> = tenants
            .iter()
            .map(|(name, entry)| TenantInfo {
                name: name.clone(),
                shard: entry.shard,
                epoch: entry.handle.epoch(),
                durable: entry.durable,
            })
            .collect();
        infos.sort_by(|a, b| a.name.cmp(&b.name));
        infos
    }

    // ---- introspection -----------------------------------------------

    /// Fleet-wide counters.
    pub fn stats(&self) -> FleetStatsReply {
        let tenants = self.inner.tenants.read().expect("tenant map lock").len() as u64;
        let c = &self.inner.counters;
        FleetStatsReply {
            tenants,
            created_total: c.created.load(Ordering::Relaxed),
            dropped_total: c.dropped.load(Ordering::Relaxed),
            requests_total: c.requests.load(Ordering::Relaxed),
            throttled_total: c.throttled.load(Ordering::Relaxed),
            over_budget_total: c.over_budget.load(Ordering::Relaxed),
            unknown_tenant_total: c.unknown_tenant.load(Ordering::Relaxed),
        }
    }

    /// The fleet's Prometheus page: fleet-level series plus per-tenant
    /// series labeled by shard id (bounded cardinality).
    pub fn metrics_text(&self) -> String {
        self.inner.registry.render_prometheus()
    }

    /// The fleet's metrics registry, for embedding into a larger page.
    pub fn registry(&self) -> &Registry {
        &self.inner.registry
    }

    /// The fleet-wide connection/byte budget (the TCP front claims
    /// connection slots against it).
    pub fn budget(&self) -> &FleetBudget {
        &self.inner.budget
    }

    /// The fleet's configuration.
    pub fn config(&self) -> &FleetConfig {
        &self.inner.config
    }

    /// The shard the ring places `tenant` on (pure; the tenant need not
    /// exist).
    pub fn shard_of(&self, tenant: &str) -> usize {
        self.inner.ring.shard(tenant)
    }

    /// A direct query handle into one tenant's service, bypassing fleet
    /// admission — the in-process oracle path used by tests and the
    /// fleet experiments.
    pub fn tenant_handle(&self, tenant: &str) -> Option<ServiceHandle> {
        let tenants = self.inner.tenants.read().expect("tenant map lock");
        tenants.get(tenant).map(|entry| entry.handle.clone())
    }

    // ---- internals ---------------------------------------------------

    fn serve_config_for(&self, spec: &TenantSpec) -> ServeConfig {
        let mut serve = self.inner.config.serve;
        serve.pipeline.rule = spec.rule;
        serve.cert_mode = spec.cert_mode;
        serve
    }

    fn entry_for(
        &self,
        name: &str,
        spec: TenantSpec,
        service: MeshService,
        durable: bool,
    ) -> TenantEntry {
        TenantEntry {
            shard: self.inner.ring.shard(name),
            durable,
            handle: service.handle(),
            bucket: Arc::new(TokenBucket::new(
                self.inner.config.tenant_burst,
                self.inner.config.tenant_rate,
            )),
            spec,
            service,
        }
    }

    fn tenants_gauge(&self) -> Arc<ocp_obs::Gauge> {
        self.inner
            .registry
            .gauge("ocp_fleet_tenants", "Live tenants in the fleet.", &[])
    }

    /// Atomically rewrites `<wal_dir>/manifest.json` with the current
    /// roster (write-to-temp then rename). No-op for in-memory fleets.
    fn write_manifest_if_durable(&self) -> std::io::Result<()> {
        let Some(dir) = &self.inner.config.wal_dir else {
            return Ok(());
        };
        let roster: BTreeMap<String, TenantSpec> = {
            let tenants = self.inner.tenants.read().expect("tenant map lock");
            tenants
                .iter()
                .map(|(name, entry)| (name.clone(), entry.spec.clone()))
                .collect()
        };
        let bytes = serde_json::to_vec(&roster).expect("specs always serialize");
        let tmp = dir.join("manifest.json.tmp");
        std::fs::write(&tmp, bytes)?;
        std::fs::rename(&tmp, dir.join("manifest.json"))?;
        Ok(())
    }
}
