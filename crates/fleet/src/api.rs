//! The fleet wire protocol: tenant lifecycle plus tenant-scoped
//! mesh-service requests, all serde-typed.
//!
//! A fleet frame is one JSON-encoded [`FleetRequest`]; the reply is one
//! JSON-encoded [`FleetResponse`]. Tenant-scoped traffic wraps the
//! ordinary [`ocp_serve::Request`]/[`ocp_serve::Response`] pair, so a
//! fleet client reuses every request the single-service protocol
//! already defines — the fleet adds only the addressing envelope and
//! the lifecycle verbs.
//!
//! The envelope travels over exactly the same framing as single-service
//! traffic (v1 length-prefixed or v2 pipelined — see
//! [`ocp_reactor::frame`]), so the reactor front is shared code.

use ocp_core::SafetyRule;
use ocp_mesh::{Coord, Topology};
use ocp_serve::{CertMode, Request, Response};
use serde::{Deserialize, Serialize};

/// Everything the fleet needs to build a tenant's mesh service.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TenantSpec {
    /// The tenant's mesh or torus shape.
    pub topology: Topology,
    /// Faults present at tenant creation (may be empty).
    pub initial_faults: Vec<Coord>,
    /// Which unsafe-node rule the tenant's labeling pipeline applies.
    pub rule: SafetyRule,
    /// Publish-time certificate policy for the tenant's epochs.
    pub cert_mode: CertMode,
}

/// A request to the fleet front.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum FleetRequest {
    /// Provisions a new tenant. Names are restricted to
    /// `[a-z0-9_-]{1,64}` so they embed safely in WAL file names.
    CreateTenant {
        /// The tenant's unique name.
        name: String,
        /// How to build the tenant's service.
        spec: TenantSpec,
    },
    /// Tears a tenant down, shutting down its service (and leaving its
    /// WAL on disk — a re-created tenant starts fresh, truncating it).
    DropTenant {
        /// The tenant to remove.
        name: String,
    },
    /// Lists live tenants with their shard placement and head epoch.
    ListTenants,
    /// A mesh-service request addressed to one tenant.
    Tenant {
        /// The addressed tenant.
        tenant: String,
        /// The inner single-service request.
        request: Request,
    },
    /// Fleet-wide counters.
    FleetStats,
    /// The fleet's Prometheus text page (tenant series labeled by shard
    /// id — bounded cardinality, never raw tenant names).
    MetricsText,
}

/// One live tenant, as reported by [`FleetRequest::ListTenants`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TenantInfo {
    /// Tenant name.
    pub name: String,
    /// Shard the consistent-hash ring placed the tenant on.
    pub shard: usize,
    /// The tenant's current head epoch.
    pub epoch: u64,
    /// Whether the tenant's epochs are WAL-backed.
    pub durable: bool,
}

/// Fleet-wide counters, as reported by [`FleetRequest::FleetStats`].
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct FleetStatsReply {
    /// Live tenants.
    pub tenants: u64,
    /// Tenants created over the fleet's lifetime.
    pub created_total: u64,
    /// Tenants dropped over the fleet's lifetime.
    pub dropped_total: u64,
    /// Tenant-scoped requests dispatched.
    pub requests_total: u64,
    /// Requests rejected by a tenant's admission bucket.
    pub throttled_total: u64,
    /// Requests rejected by the fleet-wide byte budget.
    pub over_budget_total: u64,
    /// Requests addressed to tenants that do not exist.
    pub unknown_tenant_total: u64,
}

/// A reply from the fleet front.
///
/// `Tenant` dominates the enum's size (it embeds a full
/// [`ocp_serve::Response`]), but it is also ~every reply on the hot
/// path, so boxing it would buy nothing and cost an allocation per
/// dispatch.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum FleetResponse {
    /// Reply to [`FleetRequest::CreateTenant`].
    Created {
        /// The new tenant's name.
        tenant: String,
        /// Its shard placement.
        shard: usize,
    },
    /// Reply to [`FleetRequest::DropTenant`].
    Dropped {
        /// The removed tenant's name.
        tenant: String,
    },
    /// Reply to [`FleetRequest::ListTenants`], sorted by name.
    Tenants {
        /// Live tenants.
        tenants: Vec<TenantInfo>,
    },
    /// Reply to [`FleetRequest::Tenant`].
    Tenant {
        /// The addressed tenant.
        tenant: String,
        /// The inner single-service reply.
        response: Response,
    },
    /// Reply to [`FleetRequest::FleetStats`].
    FleetStats(FleetStatsReply),
    /// Reply to [`FleetRequest::MetricsText`].
    MetricsText {
        /// The rendered Prometheus page.
        text: String,
    },
    /// The addressed tenant exceeded its admission bucket — back off and
    /// retry. Other tenants are unaffected.
    Throttled {
        /// The throttled tenant.
        tenant: String,
    },
    /// The request could not be handled (unknown tenant, invalid name,
    /// malformed frame, fleet over budget).
    Error {
        /// Human-readable reason.
        message: String,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn envelope_round_trips_through_json() {
        let req = FleetRequest::Tenant {
            tenant: "alpha".into(),
            request: Request::RouteLen {
                src: Coord::new(0, 0),
                dst: Coord::new(3, 2),
            },
        };
        let bytes = serde_json::to_vec(&req).unwrap();
        let back: FleetRequest = serde_json::from_slice(&bytes).unwrap();
        match back {
            FleetRequest::Tenant { tenant, .. } => assert_eq!(tenant, "alpha"),
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn spec_round_trips_through_json() {
        let spec = TenantSpec {
            topology: Topology::mesh(8, 8),
            initial_faults: vec![Coord::new(1, 2)],
            rule: SafetyRule::BothDimensions,
            cert_mode: CertMode::Enforce,
        };
        let bytes = serde_json::to_vec(&spec).unwrap();
        let back: TenantSpec = serde_json::from_slice(&bytes).unwrap();
        assert_eq!(back, spec);
    }
}
