//! # ocp-fleet
//!
//! Multi-tenant serving for the paper's mesh-state machinery: one
//! process hosting **N independent** [`ocp_serve::MeshService`]
//! instances — one per tenant — behind a single reactor TCP front.
//!
//! ## Design at a glance
//!
//! * [`ring`] — deterministic consistent-hash placement of tenant names
//!   onto a fixed shard-id space (FNV-1a, virtual nodes). Shard ids are
//!   also the bounded-cardinality `tenant` label on the fleet's
//!   Prometheus page, so metrics cardinality is fixed at fleet
//!   configuration time no matter how many tenants exist.
//! * [`admission`] — per-tenant token buckets (a noisy tenant throttles
//!   only itself) plus fleet-wide connection/byte budgets (protecting
//!   the process).
//! * [`api`] — the serde wire protocol: lifecycle verbs
//!   (`CreateTenant`/`DropTenant`/`ListTenants`) plus an envelope
//!   wrapping the ordinary single-service [`ocp_serve::Request`].
//! * [`fleet`] — the tenant table itself: per-tenant services, WAL
//!   paths, the durable roster manifest, and
//!   [`Fleet::recover`] rebuilding the whole fleet from disk.
//! * [`front`] — the TCP front: one [`ocp_reactor::ReactorServer`]
//!   event loop whose workers dispatch fleet frames.
//!
//! ## The isolation claim
//!
//! Tenants share *nothing* epoch-related: each owns its writer thread,
//! event queue, epoch chain, certificates, and WAL file. The
//! `tenant_churn_never_touches_another_tenants_epochs` test pins this:
//! fault churn, epoch advance, and full WAL crash-recovery on tenant A
//! leave tenant B's epoch, snapshot digest, and certificate history
//! bit-identical.
//!
//! See `DESIGN.md` §11 and experiment E19 (`repro -- fleet`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admission;
pub mod api;
pub mod fleet;
pub mod front;
pub mod ring;

pub use admission::{FleetBudget, TokenBucket};
pub use api::{FleetRequest, FleetResponse, FleetStatsReply, TenantInfo, TenantSpec};
pub use fleet::{validate_tenant_name, Fleet, FleetConfig, FleetHandle, MAX_TENANT_NAME_LEN};
pub use front::FleetFront;
pub use ring::{fnv1a, HashRing};

#[cfg(test)]
mod tests {
    use super::*;
    use ocp_core::prelude::{outcome_digest, SafetyRule};
    use ocp_mesh::{Coord, Topology};
    use ocp_serve::{CertMode, Request, Response, RouteLenOutcome};
    use std::time::Duration;

    fn spec(width: u32, height: u32) -> TenantSpec {
        TenantSpec {
            topology: Topology::mesh(width, height),
            initial_faults: Vec::new(),
            rule: SafetyRule::BothDimensions,
            cert_mode: CertMode::Enforce,
        }
    }

    fn create(handle: &FleetHandle, name: &str, spec: TenantSpec) -> usize {
        match handle.dispatch(FleetRequest::CreateTenant {
            name: name.into(),
            spec,
        }) {
            FleetResponse::Created { tenant, shard } => {
                assert_eq!(tenant, name);
                shard
            }
            other => panic!("create {name} failed: {other:?}"),
        }
    }

    /// Polls a tenant's head epoch via the fleet API until it reaches
    /// `at_least`, failing after a bounded wait.
    fn wait_for_epoch(handle: &FleetHandle, tenant: &str, at_least: u64) -> u64 {
        for _ in 0..500 {
            let reply = handle.dispatch(FleetRequest::Tenant {
                tenant: tenant.into(),
                request: Request::Epoch,
            });
            if let FleetResponse::Tenant {
                response: Response::Epoch { epoch },
                ..
            } = reply
            {
                if epoch >= at_least {
                    return epoch;
                }
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        panic!("tenant {tenant} never reached epoch {at_least}");
    }

    /// Everything observable about one tenant's epoch state, for
    /// before/after comparison in the isolation test: head epoch, head
    /// snapshot digest, and the certificate digest of every published
    /// epoch ≥ 1. (Epoch 0's certificate is excluded deliberately: a
    /// freshly started durable service records only the Init digest in
    /// its WAL, while recovery materializes a full epoch-0 certificate —
    /// a service-level asymmetry, not a cross-tenant effect.)
    fn epoch_fingerprint(handle: &FleetHandle, tenant: &str) -> (u64, u64, Vec<Option<u64>>) {
        let mut h = handle.tenant_handle(tenant).expect("tenant exists");
        let snap = h.snapshot();
        let digest = outcome_digest(&snap.map, &snap.outcome);
        let certs: Vec<Option<u64>> = (1..=snap.epoch)
            .map(|e| h.certificate(e).map(|c| c.grid_digest))
            .collect();
        (snap.epoch, digest, certs)
    }

    #[test]
    fn lifecycle_create_list_drop() {
        let fleet = Fleet::new(FleetConfig::default()).unwrap();
        let handle = fleet.handle();

        let shard_a = create(&handle, "alpha", spec(8, 8));
        let shard_b = create(&handle, "beta", spec(6, 4));
        assert_eq!(shard_a, handle.shard_of("alpha"));
        assert_eq!(shard_b, handle.shard_of("beta"));

        // Duplicate creation is refused.
        assert!(matches!(
            handle.dispatch(FleetRequest::CreateTenant {
                name: "alpha".into(),
                spec: spec(8, 8),
            }),
            FleetResponse::Error { .. }
        ));

        match handle.dispatch(FleetRequest::ListTenants) {
            FleetResponse::Tenants { tenants } => {
                let names: Vec<&str> = tenants.iter().map(|t| t.name.as_str()).collect();
                assert_eq!(names, ["alpha", "beta"], "sorted roster");
                assert!(tenants.iter().all(|t| !t.durable));
            }
            other => panic!("{other:?}"),
        }

        // Tenant-scoped requests land on the *right* independent mesh:
        // a route off beta's 6×4 grid is answerable on alpha's 8×8.
        let req = Request::RouteLen {
            src: Coord::new(0, 0),
            dst: Coord::new(7, 7),
        };
        match handle.dispatch(FleetRequest::Tenant {
            tenant: "alpha".into(),
            request: req.clone(),
        }) {
            FleetResponse::Tenant {
                response: Response::RouteLen(reply),
                ..
            } => assert_eq!(reply.outcome, RouteLenOutcome::Delivered { len: 14 }),
            other => panic!("{other:?}"),
        }
        match handle.dispatch(FleetRequest::Tenant {
            tenant: "beta".into(),
            request: req,
        }) {
            FleetResponse::Tenant {
                response: Response::RouteLen(reply),
                ..
            } => assert!(
                matches!(reply.outcome, RouteLenOutcome::Failed { .. }),
                "(7,7) is off beta's 6×4 mesh"
            ),
            other => panic!("{other:?}"),
        }

        assert!(matches!(
            handle.dispatch(FleetRequest::DropTenant {
                name: "beta".into()
            }),
            FleetResponse::Dropped { .. }
        ));
        assert!(matches!(
            handle.dispatch(FleetRequest::Tenant {
                tenant: "beta".into(),
                request: Request::Epoch,
            }),
            FleetResponse::Error { .. }
        ));

        let stats = handle.stats();
        assert_eq!(stats.tenants, 1);
        assert_eq!(stats.created_total, 2);
        assert_eq!(stats.dropped_total, 1);
        assert_eq!(stats.unknown_tenant_total, 1);

        let reports = fleet.shutdown(Duration::from_secs(1));
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].0, "alpha");
    }

    #[test]
    fn hostile_tenant_names_are_rejected() {
        let fleet = Fleet::new(FleetConfig::default()).unwrap();
        let handle = fleet.handle();
        for bad in ["", "UPPER", "has space", "dot.dot", "../escape", "a/b"] {
            assert!(
                matches!(
                    handle.dispatch(FleetRequest::CreateTenant {
                        name: bad.into(),
                        spec: spec(4, 4),
                    }),
                    FleetResponse::Error { .. }
                ),
                "accepted hostile name {bad:?}"
            );
        }
        assert!(validate_tenant_name(&"x".repeat(65)).is_err());
        assert!(validate_tenant_name("ok-name_42").is_ok());
        fleet.shutdown(Duration::from_secs(1));
    }

    #[test]
    fn throttling_one_tenant_leaves_others_serving() {
        let config = FleetConfig {
            // A tiny burst and (effectively) no refill: the noisy tenant
            // exhausts its bucket almost immediately.
            tenant_burst: 5,
            tenant_rate: 1,
            ..FleetConfig::default()
        };
        let fleet = Fleet::new(config).unwrap();
        let handle = fleet.handle();
        create(&handle, "noisy", spec(4, 4));
        create(&handle, "quiet", spec(4, 4));

        let mut throttled = 0;
        for _ in 0..50 {
            if matches!(
                handle.dispatch(FleetRequest::Tenant {
                    tenant: "noisy".into(),
                    request: Request::Epoch,
                }),
                FleetResponse::Throttled { .. }
            ) {
                throttled += 1;
            }
        }
        assert!(throttled >= 40, "only {throttled}/50 throttled");

        // The quiet tenant's bucket is untouched: all five of its burst
        // tokens are still there.
        for _ in 0..5 {
            assert!(matches!(
                handle.dispatch(FleetRequest::Tenant {
                    tenant: "quiet".into(),
                    request: Request::Epoch,
                }),
                FleetResponse::Tenant {
                    response: Response::Epoch { .. },
                    ..
                }
            ));
        }
        assert!(handle.stats().throttled_total >= 40);
        fleet.shutdown(Duration::from_secs(1));
    }

    #[test]
    fn fleet_metrics_label_tenants_by_shard_only() {
        let fleet = Fleet::new(FleetConfig::default()).unwrap();
        let handle = fleet.handle();
        let shard = create(&handle, "metrics-tenant", spec(4, 4));
        handle.dispatch(FleetRequest::Tenant {
            tenant: "metrics-tenant".into(),
            request: Request::Epoch,
        });
        let page = handle.metrics_text();
        let label = ocp_obs::tenant_label(shard);
        assert!(
            page.contains(&format!("ocp_fleet_requests_total{{tenant=\"{label}\"}} 1")),
            "missing shard-labeled request counter:\n{page}"
        );
        assert!(
            !page.contains("metrics-tenant"),
            "raw tenant name leaked into the metrics page:\n{page}"
        );
        fleet.shutdown(Duration::from_secs(1));
    }

    #[test]
    fn front_serves_the_fleet_protocol_over_tcp() {
        use ocp_reactor::{loopback, PipelinedClient, ReactorConfig};

        let fleet = Fleet::new(FleetConfig::default()).unwrap();
        let handle = fleet.handle();
        create(&handle, "wired", spec(8, 8));

        let front = FleetFront::start(handle, loopback(), ReactorConfig::default()).unwrap();
        let mut client = PipelinedClient::connect(front.local_addr()).unwrap();

        // Pipeline a lifecycle verb and tenant traffic on one connection.
        let list_id = client
            .send(&serde_json::to_vec(&FleetRequest::ListTenants).unwrap())
            .unwrap();
        let route_id = client
            .send(
                &serde_json::to_vec(&FleetRequest::Tenant {
                    tenant: "wired".into(),
                    request: Request::RouteLen {
                        src: Coord::new(1, 1),
                        dst: Coord::new(5, 6),
                    },
                })
                .unwrap(),
            )
            .unwrap();

        let mut got = std::collections::HashMap::new();
        for _ in 0..2 {
            let (id, payload) = client.recv().unwrap();
            got.insert(
                id,
                serde_json::from_slice::<FleetResponse>(&payload).unwrap(),
            );
        }
        match got.remove(&list_id).unwrap() {
            FleetResponse::Tenants { tenants } => {
                assert_eq!(tenants.len(), 1);
                assert_eq!(tenants[0].name, "wired");
            }
            other => panic!("{other:?}"),
        }
        match got.remove(&route_id).unwrap() {
            FleetResponse::Tenant {
                response: Response::RouteLen(reply),
                ..
            } => assert_eq!(reply.outcome, RouteLenOutcome::Delivered { len: 9 }),
            other => panic!("{other:?}"),
        }

        front.shutdown();
        fleet.shutdown(Duration::from_secs(1));
    }

    /// The acceptance-pinned isolation property: fault injection, epoch
    /// churn, and full WAL crash-recovery on tenant `alpha` never change
    /// tenant `beta`'s snapshots, epochs, or certificates.
    #[test]
    fn tenant_churn_never_touches_another_tenants_epochs() {
        let dir = std::env::temp_dir().join(format!(
            "ocp-fleet-isolation-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let config = FleetConfig {
            wal_dir: Some(dir.clone()),
            ..FleetConfig::default()
        };

        let fleet = Fleet::new(config.clone()).unwrap();
        let handle = fleet.handle();
        create(&handle, "alpha", spec(8, 8));
        create(&handle, "beta", spec(8, 8));

        // Give beta some state of its own first, so "unchanged" is a
        // claim about real epochs, not the trivial epoch-0 fixpoint.
        handle.dispatch(FleetRequest::Tenant {
            tenant: "beta".into(),
            request: Request::InjectFaults {
                nodes: vec![Coord::new(2, 2)],
            },
        });
        wait_for_epoch(&handle, "beta", 1);
        let beta_before = epoch_fingerprint(&handle, "beta");

        // Churn alpha hard: repeated fault/repair cycles, each advancing
        // alpha's epoch chain and appending to alpha's WAL.
        let mut alpha_epoch = 0;
        for round in 0..5u64 {
            let node = Coord::new(1 + (round as i32 % 4), 3);
            handle.dispatch(FleetRequest::Tenant {
                tenant: "alpha".into(),
                request: Request::InjectFaults { nodes: vec![node] },
            });
            alpha_epoch = wait_for_epoch(&handle, "alpha", alpha_epoch + 1);
            handle.dispatch(FleetRequest::Tenant {
                tenant: "alpha".into(),
                request: Request::RepairNodes { nodes: vec![node] },
            });
            alpha_epoch = wait_for_epoch(&handle, "alpha", alpha_epoch + 1);
        }
        assert!(alpha_epoch >= 10, "alpha churned to epoch {alpha_epoch}");

        let beta_after_churn = epoch_fingerprint(&handle, "beta");
        assert_eq!(
            beta_before, beta_after_churn,
            "alpha churn leaked into beta's epoch state"
        );

        // Crash-recover the whole fleet from disk. Recovery replays
        // alpha's long WAL and beta's short one through completely
        // separate pipelines.
        fleet.shutdown(Duration::from_secs(5));
        let recovered = Fleet::recover(config).expect("fleet recovery");
        let handle = recovered.handle();

        match handle.dispatch(FleetRequest::ListTenants) {
            FleetResponse::Tenants { tenants } => {
                let names: Vec<&str> = tenants.iter().map(|t| t.name.as_str()).collect();
                assert_eq!(names, ["alpha", "beta"]);
                assert!(tenants.iter().all(|t| t.durable));
                // Placement is recomputed, not persisted, yet identical.
                for t in &tenants {
                    assert_eq!(t.shard, handle.shard_of(&t.name));
                }
            }
            other => panic!("{other:?}"),
        }

        let beta_recovered = epoch_fingerprint(&handle, "beta");
        assert_eq!(
            beta_before, beta_recovered,
            "recovery changed beta's epoch state"
        );
        let (alpha_recovered_epoch, _, _) = epoch_fingerprint(&handle, "alpha");
        assert_eq!(
            alpha_recovered_epoch, alpha_epoch,
            "alpha's churned epochs did not survive recovery"
        );

        recovered.shutdown(Duration::from_secs(5));
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Recovery must not clobber the durable roster: after a recovery
    /// (which historically rewrote `manifest.json` as `{}` on the way
    /// up), a *second* crash/restart has to restore every tenant again.
    #[test]
    fn recovery_survives_a_second_restart() {
        let dir = std::env::temp_dir().join(format!(
            "ocp-fleet-rerecover-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let config = FleetConfig {
            wal_dir: Some(dir.clone()),
            ..FleetConfig::default()
        };

        let fleet = Fleet::new(config.clone()).unwrap();
        let handle = fleet.handle();
        create(&handle, "gamma", spec(8, 8));
        create(&handle, "delta", spec(6, 4));
        handle.dispatch(FleetRequest::Tenant {
            tenant: "gamma".into(),
            request: Request::InjectFaults {
                nodes: vec![Coord::new(3, 3)],
            },
        });
        wait_for_epoch(&handle, "gamma", 1);
        let gamma_before = epoch_fingerprint(&handle, "gamma");
        fleet.shutdown(Duration::from_secs(5));

        // First recovery, then immediately "crash" again without any
        // create/drop that would refresh the manifest.
        let once = Fleet::recover(config.clone()).expect("first recovery");
        once.shutdown(Duration::from_secs(5));

        let twice = Fleet::recover(config).expect("second recovery");
        let handle = twice.handle();
        match handle.dispatch(FleetRequest::ListTenants) {
            FleetResponse::Tenants { tenants } => {
                let names: Vec<&str> = tenants.iter().map(|t| t.name.as_str()).collect();
                assert_eq!(names, ["delta", "gamma"], "roster lost across restarts");
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(
            epoch_fingerprint(&handle, "gamma"),
            gamma_before,
            "gamma's epoch state did not survive the second restart"
        );
        twice.shutdown(Duration::from_secs(5));
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Concurrent `CreateTenant` calls for the same durable name must
    /// elect exactly one winner — and the losers must never reach
    /// `Wal::create` (which truncates), or they would destroy the
    /// winner's live log and poison later recovery.
    #[test]
    fn racing_durable_creates_never_truncate_the_winners_wal() {
        use std::sync::{Arc, Barrier};

        let dir = std::env::temp_dir().join(format!(
            "ocp-fleet-create-race-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let config = FleetConfig {
            wal_dir: Some(dir.clone()),
            ..FleetConfig::default()
        };
        let fleet = Fleet::new(config.clone()).unwrap();
        let handle = fleet.handle();

        const THREADS: usize = 8;
        for round in 0..4 {
            let name = format!("contested-{round}");
            let barrier = Arc::new(Barrier::new(THREADS));
            let created: usize = std::thread::scope(|scope| {
                let workers: Vec<_> = (0..THREADS)
                    .map(|_| {
                        let handle = handle.clone();
                        let barrier = Arc::clone(&barrier);
                        let name = name.clone();
                        scope.spawn(move || {
                            barrier.wait();
                            matches!(
                                handle.dispatch(FleetRequest::CreateTenant {
                                    name,
                                    spec: spec(6, 6),
                                }),
                                FleetResponse::Created { .. }
                            )
                        })
                    })
                    .collect();
                workers
                    .into_iter()
                    .map(|w| w.join().unwrap() as usize)
                    .sum()
            });
            assert_eq!(created, 1, "round {round}: exactly one create must win");

            // The winner's service (and its WAL) must be fully usable:
            // epoch churn appends cleanly to an untruncated log.
            handle.dispatch(FleetRequest::Tenant {
                tenant: name.clone(),
                request: Request::InjectFaults {
                    nodes: vec![Coord::new(1, 1)],
                },
            });
            wait_for_epoch(&handle, &name, 1);
        }

        // Recovery proves no WAL was torn by a racing loser.
        let fingerprints: Vec<_> = (0..4)
            .map(|round| epoch_fingerprint(&handle, &format!("contested-{round}")))
            .collect();
        fleet.shutdown(Duration::from_secs(5));
        let recovered = Fleet::recover(config).expect("recovery after create races");
        let handle = recovered.handle();
        for (round, before) in fingerprints.iter().enumerate() {
            let name = format!("contested-{round}");
            assert_eq!(
                &epoch_fingerprint(&handle, &name),
                before,
                "tenant {name} state changed across recovery"
            );
        }
        recovered.shutdown(Duration::from_secs(5));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
