//! The fleet's TCP front: one reactor event loop serving the whole
//! fleet's wire protocol.
//!
//! Workers hold [`FleetHandle`] clones and run
//! [`FleetHandle::dispatch_bytes`] per frame, so every capability of the
//! fleet API — lifecycle, tenant-scoped requests, stats, metrics — is
//! reachable over both framing versions the reactor negotiates (legacy
//! v1 and pipelined v2). The fleet-wide connection budget is enforced
//! by capping the reactor's connection slab at
//! [`crate::FleetConfig::max_connections`].

use std::io;
use std::net::{SocketAddr, SocketAddrV4};

use ocp_reactor::{ReactorConfig, ReactorServer, StatsSnapshot};

use crate::fleet::FleetHandle;

/// A running fleet TCP front.
pub struct FleetFront {
    server: ReactorServer,
}

impl FleetFront {
    /// Binds `addr` and starts serving `handle`'s fleet. The reactor's
    /// connection cap is clamped to the fleet-wide connection budget.
    pub fn start(
        handle: FleetHandle,
        addr: SocketAddrV4,
        mut config: ReactorConfig,
    ) -> io::Result<Self> {
        let budget_cap = handle.config().max_connections;
        config.max_connections = config
            .max_connections
            .min(usize::try_from(budget_cap).unwrap_or(usize::MAX));
        let server = ReactorServer::start(addr, config, move || {
            let handle = handle.clone();
            move |payload: &[u8]| handle.dispatch_bytes(payload)
        })?;
        Ok(Self { server })
    }

    /// The bound address (useful with an ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.server.local_addr()
    }

    /// Reactor-level counters (connections, frames, bytes).
    pub fn stats(&self) -> StatsSnapshot {
        self.server.stats()
    }

    /// Graceful drain: stops accepting, finishes in-flight requests,
    /// flushes replies, then stops the loop and workers.
    pub fn shutdown(mut self) {
        self.server.shutdown();
    }
}
