//! Fleet admission control: per-tenant request buckets and fleet-wide
//! connection/byte budgets.
//!
//! Two layers, both explicit-rejection (the same philosophy as
//! [`ocp_serve::BoundedQueue`]: under overload the caller learns
//! immediately; the fleet's memory and CPU stay flat):
//!
//! * [`TokenBucket`] — one per tenant, refilled continuously, debited
//!   per request. A misbehaving tenant exhausts *its own* bucket and is
//!   throttled; other tenants' buckets are untouched. This is the
//!   per-tenant isolation half.
//! * [`FleetBudget`] — fleet-wide gauges for open connections and
//!   admitted request bytes. These protect the *process* (file
//!   descriptors, memory) rather than any tenant, and are checked after
//!   the per-tenant bucket so a throttled tenant never consumes fleet
//!   budget.
//!
//! Both are time-free in their testable core: the bucket exposes
//! `try_take_at` with an explicit instant so tests never sleep.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// A continuously-refilled token bucket. `capacity` bounds the burst;
/// `refill_per_sec` bounds the sustained rate.
#[derive(Debug)]
pub struct TokenBucket {
    state: Mutex<BucketState>,
    capacity: f64,
    refill_per_sec: f64,
}

#[derive(Debug)]
struct BucketState {
    tokens: f64,
    last: Instant,
}

impl TokenBucket {
    /// A bucket starting full.
    pub fn new(capacity: u64, refill_per_sec: u64) -> Self {
        Self {
            state: Mutex::new(BucketState {
                tokens: capacity as f64,
                last: Instant::now(),
            }),
            capacity: capacity as f64,
            refill_per_sec: refill_per_sec as f64,
        }
    }

    /// Debits `n` tokens, refilling for the time elapsed since the last
    /// call first. `false` means the caller must be throttled.
    pub fn try_take(&self, n: u64) -> bool {
        self.try_take_at(n, Instant::now())
    }

    /// [`TokenBucket::try_take`] with an explicit clock, for tests.
    pub fn try_take_at(&self, n: u64, now: Instant) -> bool {
        let mut s = self.state.lock().expect("bucket lock");
        let elapsed = now.saturating_duration_since(s.last).as_secs_f64();
        s.tokens = (s.tokens + elapsed * self.refill_per_sec).min(self.capacity);
        s.last = now;
        if s.tokens >= n as f64 {
            s.tokens -= n as f64;
            true
        } else {
            false
        }
    }

    /// Tokens currently available (refilled to `now`), for introspection.
    pub fn available_at(&self, now: Instant) -> u64 {
        let mut s = self.state.lock().expect("bucket lock");
        let elapsed = now.saturating_duration_since(s.last).as_secs_f64();
        s.tokens = (s.tokens + elapsed * self.refill_per_sec).min(self.capacity);
        s.last = now;
        s.tokens as u64
    }
}

/// Fleet-wide budgets: open connections and in-flight request bytes.
/// Acquire/release pairs; acquisition fails loudly at the cap.
#[derive(Debug)]
pub struct FleetBudget {
    connections: AtomicU64,
    max_connections: u64,
    request_bytes: AtomicU64,
    max_request_bytes: u64,
}

impl FleetBudget {
    /// A budget admitting up to `max_connections` concurrent connections
    /// and `max_request_bytes` bytes of concurrently-admitted requests.
    pub fn new(max_connections: u64, max_request_bytes: u64) -> Self {
        Self {
            connections: AtomicU64::new(0),
            max_connections,
            request_bytes: AtomicU64::new(0),
            max_request_bytes,
        }
    }

    /// Claims one connection slot; `false` at the cap.
    pub fn acquire_connection(&self) -> bool {
        acquire(&self.connections, 1, self.max_connections)
    }

    /// Returns a connection slot.
    pub fn release_connection(&self) {
        self.connections.fetch_sub(1, Ordering::AcqRel);
    }

    /// Claims `n` bytes of request budget; `false` when the fleet-wide
    /// in-flight byte cap would be exceeded.
    pub fn acquire_bytes(&self, n: u64) -> bool {
        acquire(&self.request_bytes, n, self.max_request_bytes)
    }

    /// Returns `n` bytes of request budget.
    pub fn release_bytes(&self, n: u64) {
        self.request_bytes.fetch_sub(n, Ordering::AcqRel);
    }

    /// Open connections currently counted against the budget.
    pub fn connections(&self) -> u64 {
        self.connections.load(Ordering::Acquire)
    }

    /// Request bytes currently counted against the budget.
    pub fn request_bytes(&self) -> u64 {
        self.request_bytes.load(Ordering::Acquire)
    }
}

/// CAS-loop acquire: adds `n` to `cell` only if the result stays ≤ `max`.
fn acquire(cell: &AtomicU64, n: u64, max: u64) -> bool {
    let mut cur = cell.load(Ordering::Acquire);
    loop {
        let next = match cur.checked_add(n) {
            Some(v) if v <= max => v,
            _ => return false,
        };
        match cell.compare_exchange_weak(cur, next, Ordering::AcqRel, Ordering::Acquire) {
            Ok(_) => return true,
            Err(seen) => cur = seen,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn bucket_bounds_the_burst_then_refills() {
        let bucket = TokenBucket::new(10, 100);
        let t0 = Instant::now();
        // Drain the full burst at one instant.
        for _ in 0..10 {
            assert!(bucket.try_take_at(1, t0));
        }
        assert!(!bucket.try_take_at(1, t0), "burst cap not enforced");
        // 50ms at 100 tokens/sec refills 5 tokens.
        let t1 = t0 + Duration::from_millis(50);
        assert_eq!(bucket.available_at(t1), 5);
        for _ in 0..5 {
            assert!(bucket.try_take_at(1, t1));
        }
        assert!(!bucket.try_take_at(1, t1));
    }

    #[test]
    fn refill_never_exceeds_capacity() {
        let bucket = TokenBucket::new(4, 1_000);
        let t0 = Instant::now();
        assert!(bucket.try_take_at(4, t0));
        // A long idle period refills to capacity, not beyond.
        let later = t0 + Duration::from_secs(60);
        assert_eq!(bucket.available_at(later), 4);
    }

    #[test]
    fn budget_acquire_release_pairs_are_exact() {
        let budget = FleetBudget::new(2, 100);
        assert!(budget.acquire_connection());
        assert!(budget.acquire_connection());
        assert!(!budget.acquire_connection(), "connection cap not enforced");
        budget.release_connection();
        assert!(budget.acquire_connection());

        assert!(budget.acquire_bytes(60));
        assert!(!budget.acquire_bytes(60), "byte cap not enforced");
        assert!(budget.acquire_bytes(40));
        budget.release_bytes(100);
        assert_eq!(budget.request_bytes(), 0);
    }

    #[test]
    fn budget_acquire_is_race_free_under_contention() {
        use std::sync::Arc;
        let budget = Arc::new(FleetBudget::new(64, u64::MAX));
        let admitted = Arc::new(AtomicU64::new(0));
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let budget = budget.clone();
                let admitted = admitted.clone();
                std::thread::spawn(move || {
                    for _ in 0..1_000 {
                        if budget.acquire_connection() {
                            admitted.fetch_add(1, Ordering::Relaxed);
                            std::thread::yield_now();
                            budget.release_connection();
                            admitted.fetch_sub(1, Ordering::Relaxed);
                        }
                        assert!(budget.connections() <= 64, "budget breached");
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(budget.connections(), 0, "leaked connection slots");
    }
}
