//! Sharded executor: horizontal-strip domain decomposition with halo
//! exchange over crossbeam channels.
//!
//! The mesh is cut into `threads` horizontal strips. Each strip is owned by
//! one OS thread holding the states of its rows. Every round each strip:
//!
//! 1. sends its boundary rows to the neighboring strips (halo exchange),
//! 2. receives the neighbors' boundary rows,
//! 3. steps all of its nodes against the fresh halo,
//! 4. reports its change count to the coordinator, which reduces the counts
//!    and broadcasts "continue" or "stop".
//!
//! On a torus the top and bottom strips exchange halos with each other
//! (vertical wraparound); horizontal wraparound stays inside a strip's own
//! rows. On a mesh the outermost halos are the protocol's ghost rows.

use crate::engine::{gather, messages_per_round, RunOutcome};
use crate::{LockstepProtocol, RunTrace};
use crossbeam::channel::{unbounded, Receiver, Sender};
use ocp_mesh::{Coord, Grid, TopologyKind};

struct ShardPlan {
    /// First global row of the strip.
    start: usize,
    /// One past the last global row.
    end: usize,
}

pub(crate) fn run<P: LockstepProtocol>(
    protocol: &P,
    threads: usize,
    max_rounds: u32,
) -> RunOutcome<P::State> {
    let topology = protocol.topology();
    let height = topology.height() as usize;
    let width = topology.width() as usize;
    let shards = threads.min(height);
    if shards <= 1 {
        // One strip has no halo partners; the sequential sweep is identical.
        return crate::sequential::run(protocol, max_rounds);
    }
    let wrap = topology.kind() == TopologyKind::Torus;

    // Row partition: near-equal strips.
    let plans: Vec<ShardPlan> = (0..shards)
        .map(|i| ShardPlan {
            start: i * height / shards,
            end: (i + 1) * height / shards,
        })
        .collect();

    // Directed halo channels. `to_above[i]` carries strip i's top row to the
    // strip above it; that strip receives it as `from_below`.
    let mut to_above: Vec<Option<Sender<Vec<P::State>>>> = (0..shards).map(|_| None).collect();
    let mut to_below: Vec<Option<Sender<Vec<P::State>>>> = (0..shards).map(|_| None).collect();
    let mut from_below: Vec<Option<Receiver<Vec<P::State>>>> = (0..shards).map(|_| None).collect();
    let mut from_above: Vec<Option<Receiver<Vec<P::State>>>> = (0..shards).map(|_| None).collect();
    for i in 0..shards {
        let above = if i + 1 < shards {
            Some(i + 1)
        } else if wrap {
            Some(0)
        } else {
            None
        };
        if let Some(j) = above {
            let (tx, rx) = unbounded();
            to_above[i] = Some(tx);
            from_below[j] = Some(rx);
            let (tx, rx) = unbounded();
            to_below[j] = Some(tx);
            from_above[i] = Some(rx);
        }
    }

    // Coordination channels.
    let (report_tx, report_rx) = unbounded::<u32>();
    let mut control_txs = Vec::with_capacity(shards);
    let mut control_rxs = Vec::with_capacity(shards);
    for _ in 0..shards {
        let (tx, rx) = unbounded::<bool>();
        control_txs.push(tx);
        control_rxs.push(rx);
    }
    let (result_tx, result_rx) = unbounded::<(usize, Vec<P::State>)>();

    let per_round = messages_per_round(protocol);
    let mut changes_per_round: Vec<u32> = Vec::new();
    let mut converged = false;

    std::thread::scope(|scope| {
        for (i, plan) in plans.iter().enumerate() {
            let to_above = to_above[i].take();
            let to_below = to_below[i].take();
            let from_below = from_below[i].take();
            let from_above = from_above[i].take();
            let report = report_tx.clone();
            let control = control_rxs[i].clone();
            let results = result_tx.clone();
            let (start, end) = (plan.start, plan.end);
            scope.spawn(move || {
                shard_worker(
                    protocol, start, end, width, height, to_above, to_below, from_below,
                    from_above, report, control, results,
                );
            });
        }

        // Coordinator: reduce change counts, broadcast continue/stop.
        loop {
            let mut changed = 0u32;
            for _ in 0..shards {
                changed += report_rx.recv().expect("shard died before reporting");
            }
            changes_per_round.push(changed);
            let go = changed > 0 && (changes_per_round.len() as u32) < max_rounds;
            if changed == 0 {
                converged = true;
            }
            for tx in &control_txs {
                tx.send(go).expect("shard died before control");
            }
            if !go {
                break;
            }
        }
    });
    drop(result_tx);

    // Reassemble the final grid from the strips.
    let mut rows: Vec<Option<Vec<P::State>>> = vec![None; height];
    while let Ok((start, data)) = result_rx.recv() {
        for (offset, row) in data.chunks(width).enumerate() {
            rows[start + offset] = Some(row.to_vec());
        }
    }
    let states = Grid::from_fn(topology, |c| {
        rows[c.y as usize].as_ref().expect("missing shard row")[c.x as usize]
    });

    let messages_sent = per_round * changes_per_round.len() as u64;
    RunOutcome {
        states,
        trace: RunTrace::new(changes_per_round, messages_sent, converged),
    }
}

#[allow(clippy::too_many_arguments)]
fn shard_worker<P: LockstepProtocol>(
    protocol: &P,
    start: usize,
    end: usize,
    width: usize,
    height: usize,
    to_above: Option<Sender<Vec<P::State>>>,
    to_below: Option<Sender<Vec<P::State>>>,
    from_below: Option<Receiver<Vec<P::State>>>,
    from_above: Option<Receiver<Vec<P::State>>>,
    report: Sender<u32>,
    control: Receiver<bool>,
    results: Sender<(usize, Vec<P::State>)>,
) {
    let rows = end - start;
    let mut data: Vec<P::State> = Vec::with_capacity(rows * width);
    for y in start..end {
        for x in 0..width {
            data.push(protocol.initial(Coord::new(x as i32, y as i32)));
        }
    }
    let ghost_row: Vec<P::State> = vec![protocol.ghost(); width];
    // Global row indices of the halos this strip reads.
    let below_row = (start as i64 - 1).rem_euclid(height as i64) as usize;
    let above_row = end % height;

    loop {
        // 1-2. Halo exchange. Send before receive: channels are unbounded,
        // so this cannot deadlock, and FIFO order keeps rounds aligned.
        if let Some(tx) = &to_above {
            let top = &data[(rows - 1) * width..rows * width];
            tx.send(top.to_vec()).expect("halo peer died");
        }
        if let Some(tx) = &to_below {
            let bottom = &data[..width];
            tx.send(bottom.to_vec()).expect("halo peer died");
        }
        let halo_below: Vec<P::State> = match &from_below {
            Some(rx) => rx.recv().expect("halo peer died"),
            None => ghost_row.clone(),
        };
        let halo_above: Vec<P::State> = match &from_above {
            Some(rx) => rx.recv().expect("halo peer died"),
            None => ghost_row.clone(),
        };

        // 3. Step every owned node against the snapshot.
        let mut changed = 0u32;
        let mut next = Vec::with_capacity(data.len());
        for local_y in 0..rows {
            let y = (start + local_y) as i32;
            for x in 0..width {
                let c = Coord::new(x as i32, y);
                let state = data[local_y * width + x];
                if !protocol.participates(c) {
                    next.push(state);
                    continue;
                }
                let lookup = |n: Coord| -> P::State {
                    let ny = n.y as usize;
                    if (start..end).contains(&ny) {
                        data[(ny - start) * width + n.x as usize]
                    } else if ny == below_row {
                        halo_below[n.x as usize]
                    } else if ny == above_row {
                        halo_above[n.x as usize]
                    } else {
                        unreachable!("neighbor {n:?} outside strip {start}..{end} and halos")
                    }
                };
                let ns = gather(protocol, c, lookup);
                let new_state = protocol.step(c, state, &ns);
                if new_state != state {
                    changed += 1;
                }
                next.push(new_state);
            }
        }
        data = next;

        // 4. Reduce and wait for the verdict.
        report.send(changed).expect("coordinator died");
        let go = control.recv().expect("coordinator died");
        if !go {
            break;
        }
    }
    results.send((start, data)).expect("collector died");
}
