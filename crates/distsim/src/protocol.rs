//! The lock-step protocol abstraction.

use ocp_mesh::{Coord, Direction, Topology, DIRECTIONS};

/// The four neighbor states a node collects in one exchange round.
///
/// Every direction always has a resolved state: real neighbors contribute
/// their current state (for faulty, i.e. non-participating nodes, that is
/// their permanent initial state — the stand-in for fault detection), and
/// mesh ghost neighbors contribute the protocol's
/// [`ghost`](LockstepProtocol::ghost) state.
#[derive(Clone, Copy, Debug)]
pub struct NeighborStates<S> {
    states: [S; 4],
}

impl<S: Copy> NeighborStates<S> {
    /// Packs per-direction states (indexed by [`Direction::index`]).
    #[inline]
    pub fn new(states: [S; 4]) -> Self {
        Self { states }
    }

    /// State received from the neighbor in `dir`.
    #[inline]
    pub fn get(&self, dir: Direction) -> S {
        self.states[dir.index()]
    }

    /// Iterates `(direction, state)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (Direction, S)> + '_ {
        DIRECTIONS.into_iter().map(move |d| (d, self.get(d)))
    }

    /// Number of neighbors whose state satisfies `pred`.
    pub fn count(&self, mut pred: impl FnMut(S) -> bool) -> usize {
        self.states.iter().filter(|&&s| pred(s)).count()
    }

    /// True if a neighbor along the given X/Y dimension satisfies `pred` —
    /// the per-dimension quantifier of Definition 2b.
    pub fn any_in_dimension(
        &self,
        dim: ocp_mesh::Dimension,
        mut pred: impl FnMut(S) -> bool,
    ) -> bool {
        DIRECTIONS
            .into_iter()
            .filter(|d| d.dimension() == dim)
            .any(|d| pred(self.get(d)))
    }
}

/// A synchronous neighbor-exchange protocol in the style of Section 3.
///
/// Implementations must be deterministic pure functions of the inputs: the
/// engine relies on that to guarantee all three executors produce identical
/// results, and the double-buffered executors evaluate `step` in arbitrary
/// order within a round.
pub trait LockstepProtocol: Sync {
    /// Per-node status exchanged each round. Kept `Copy` and small — each
    /// round ships one per link.
    type State: Copy + PartialEq + Send + Sync + std::fmt::Debug;

    /// The machine the protocol runs on.
    fn topology(&self) -> Topology;

    /// Initial state of the node at `c` (round 0, before any exchange).
    fn initial(&self, c: Coord) -> Self::State;

    /// Permanent state of the ghost boundary nodes of a mesh. (Never used
    /// for tori, which have no boundary.)
    fn ghost(&self) -> Self::State;

    /// Whether the node at `c` participates in the protocol. Faulty nodes
    /// return `false`: they cease work, never update, and their initial
    /// state is what neighbors observe forever.
    fn participates(&self, c: Coord) -> bool;

    /// One lock-step update: the next state of the node at `c` given its
    /// current state and the states collected from its four neighbors.
    ///
    /// Only called for participating nodes.
    fn step(
        &self,
        c: Coord,
        current: Self::State,
        neighbors: &NeighborStates<Self::State>,
    ) -> Self::State;

    /// Seed worklist for the frontier executor
    /// ([`Executor::Frontier`](crate::Executor::Frontier)): the nodes whose
    /// **first** round could change their state.
    ///
    /// Returning `Some(seeds)` is a promise that every participating node
    /// whose round-1 [`step`](LockstepProtocol::step) would return a state
    /// different from its [`initial`](LockstepProtocol::initial) state is
    /// in `seeds` (extra coordinates and non-participating nodes are
    /// harmless; duplicates are deduplicated). From round 2 on the frontier
    /// executor derives the worklist itself — a node is re-stepped iff it
    /// or a neighbor changed in the previous round, which is exhaustive
    /// because `step` is a pure function of that neighborhood.
    ///
    /// The default `None` makes the frontier executor sweep the whole
    /// machine in round 1 and narrow from round 2 on, which is always
    /// sound.
    fn initial_frontier(&self) -> Option<Vec<Coord>> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocp_mesh::Dimension;

    #[test]
    fn neighbor_states_accessors() {
        let ns = NeighborStates::new([1u8, 2, 3, 4]);
        assert_eq!(ns.get(Direction::West), 1);
        assert_eq!(ns.get(Direction::East), 2);
        assert_eq!(ns.get(Direction::South), 3);
        assert_eq!(ns.get(Direction::North), 4);
        assert_eq!(ns.count(|s| s % 2 == 0), 2);
        let dirs: Vec<_> = ns.iter().map(|(d, _)| d).collect();
        assert_eq!(dirs, DIRECTIONS.to_vec());
    }

    #[test]
    fn any_in_dimension_separates_axes() {
        // Unsafe only to the West (x) and North (y).
        let ns = NeighborStates::new([true, false, false, true]);
        assert!(ns.any_in_dimension(Dimension::X, |s| s));
        assert!(ns.any_in_dimension(Dimension::Y, |s| s));
        // Unsafe only along x.
        let ns = NeighborStates::new([true, true, false, false]);
        assert!(ns.any_in_dimension(Dimension::X, |s| s));
        assert!(!ns.any_in_dimension(Dimension::Y, |s| s));
    }
}
