//! Deterministic fault injection for the message-passing executors.
//!
//! The paper's protocols are born from the premise that the machine is
//! unreliable — yet the executors in this crate historically assumed
//! perfect channels and a fault set frozen before round 0. This module
//! supplies the missing adversary:
//!
//! * [`LinkModel`] — per-directed-link drop / duplicate / reorder
//!   probabilities plus link-down windows in virtual time;
//! * [`ChaosConfig`] — a seeded, deterministic assignment of link models
//!   to the whole machine, with a re-broadcast ("heartbeat") period that
//!   lets monotone protocols re-converge despite loss;
//! * [`ChaosStats`] — counters for every injected anomaly, reported
//!   through [`RunTrace`](crate::RunTrace) and
//!   [`AsyncOutcome`](crate::AsyncOutcome);
//! * [`CrashPlan`] — nodes that die at given virtual times *mid-run*,
//!   announcing a caller-chosen absorbing state (for phase 1 that is
//!   `Unsafe`, which preserves monotonicity and hence confluence).
//!
//! Everything is sampled from seeded generators: a chaos run is exactly
//! reproducible from `(protocol, seed, ChaosConfig, CrashPlan)`.
//!
//! Why re-convergence is guaranteed (and the event queue still drains):
//! the executors maintain the invariant that whenever a receiver's last
//! delivered knowledge of a neighbor differs from that neighbor's current
//! state, at least one event is pending for the link — either the fresh
//! message is in flight, or a heartbeat retransmission is scheduled.
//! Heartbeats re-send only while knowledge is stale, so once every link
//! is current and no node wants to change state, no new events are
//! created and the simulation quiesces at the same fixpoint a reliable
//! run reaches.

use ocp_mesh::{Coord, Direction};
use serde::{Deserialize, Serialize};

/// Failure behavior of one directed link.
///
/// Probabilities are independent per message. `down` windows are
/// half-open `[start, end)` intervals of virtual time (for the lockstep
/// actor executor, virtual time is the round number) during which every
/// send on the link is discarded.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct LinkModel {
    /// Probability a message is silently lost in transit.
    pub drop: f64,
    /// Probability a delivered message is delivered twice.
    pub duplicate: f64,
    /// Probability a message ignores the link's FIFO ordering and may
    /// overtake earlier traffic.
    pub reorder: f64,
    /// Half-open `[start, end)` virtual-time windows when the link is down.
    pub down: Vec<(u64, u64)>,
}

impl LinkModel {
    /// A perfect link: no loss, no duplication, no reordering, never down.
    pub fn reliable() -> Self {
        LinkModel {
            drop: 0.0,
            duplicate: 0.0,
            reorder: 0.0,
            down: Vec::new(),
        }
    }

    /// A link that only drops messages, with probability `drop`.
    pub fn lossy(drop: f64) -> Self {
        LinkModel {
            drop,
            ..LinkModel::reliable()
        }
    }

    /// True if the link is inside a down window at virtual time `t`.
    pub fn is_down(&self, t: u64) -> bool {
        self.down.iter().any(|&(start, end)| start <= t && t < end)
    }

    /// True if this model never injects any anomaly.
    pub fn is_reliable(&self) -> bool {
        self.drop == 0.0 && self.duplicate == 0.0 && self.reorder == 0.0 && self.down.is_empty()
    }
}

impl Default for LinkModel {
    fn default() -> Self {
        LinkModel::reliable()
    }
}

/// Machine-wide chaos configuration for one run.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ChaosConfig {
    /// Seed of the anomaly-sampling stream (separate from the delay
    /// stream, so enabling chaos does not perturb delay schedules).
    pub seed: u64,
    /// Model applied to every link without an explicit override.
    pub default_link: LinkModel,
    /// Per-link overrides, keyed by the sending node and its outgoing
    /// direction.
    pub overrides: Vec<(Coord, Direction, LinkModel)>,
    /// Virtual-time period after which a sender re-broadcasts its state
    /// on a link whose receiver is known to be stale. Must be ≥ 1.
    pub heartbeat_period: u64,
}

impl ChaosConfig {
    /// No chaos at all: every link reliable.
    pub fn reliable() -> Self {
        ChaosConfig {
            seed: 0,
            default_link: LinkModel::reliable(),
            overrides: Vec::new(),
            heartbeat_period: 16,
        }
    }

    /// Every link gets the same drop/duplicate/reorder probabilities.
    pub fn uniform(seed: u64, drop: f64, duplicate: f64, reorder: f64) -> Self {
        ChaosConfig {
            seed,
            default_link: LinkModel {
                drop,
                duplicate,
                reorder,
                down: Vec::new(),
            },
            overrides: Vec::new(),
            heartbeat_period: 16,
        }
    }

    /// The model governing the directed link out of `from` towards `dir`.
    pub fn link(&self, from: Coord, dir: Direction) -> &LinkModel {
        self.overrides
            .iter()
            .find(|(c, d, _)| *c == from && *d == dir)
            .map(|(_, _, m)| m)
            .unwrap_or(&self.default_link)
    }

    /// True if no link in the machine can misbehave.
    pub fn is_reliable(&self) -> bool {
        self.default_link.is_reliable() && self.overrides.iter().all(|(_, _, m)| m.is_reliable())
    }
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig::reliable()
    }
}

/// Counts of every anomaly the chaos layer injected during a run.
///
/// A run without a chaos layer reports all zeros, so the field is always
/// present on traces and comparable across executors.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChaosStats {
    /// Messages silently lost in transit.
    pub dropped: u64,
    /// Messages delivered twice.
    pub duplicated: u64,
    /// Messages allowed to overtake earlier traffic on their link.
    pub reordered: u64,
    /// Heartbeat-triggered re-sends repairing lost knowledge.
    pub retransmissions: u64,
    /// Sends discarded because the link was inside a down window.
    pub link_down_discards: u64,
    /// Mid-run node crashes applied from a [`CrashPlan`].
    pub crashes: u64,
}

impl ChaosStats {
    /// Total injected link anomalies (excludes repairs and crashes).
    pub fn anomalies(&self) -> u64 {
        self.dropped + self.duplicated + self.reordered + self.link_down_discards
    }

    /// Accumulates another counter set into this one.
    pub fn merge(&mut self, other: &ChaosStats) {
        self.dropped += other.dropped;
        self.duplicated += other.duplicated;
        self.reordered += other.reordered;
        self.retransmissions += other.retransmissions;
        self.link_down_discards += other.link_down_discards;
        self.crashes += other.crashes;
    }
}

/// Nodes that crash at given virtual times while the protocol is running.
///
/// A crashed node permanently assumes `state`, stops applying the
/// protocol's step rule, and announces `state` on all of its links (with
/// the usual chaos sampling — the announcement itself can be dropped and
/// is then repaired by heartbeats).
///
/// Correctness caveat: mid-run crashes preserve the fixpoint only for
/// protocols *monotone in the fault set* — the crash state must be
/// absorbing and only ever push neighbors in their monotone direction.
/// Phase 1's `Unsafe` qualifies; phase 2 is not monotone in the fault set
/// and must instead be recomputed after the crash (see
/// `ocp_core::maintenance`).
#[derive(Clone, Debug)]
pub struct CrashPlan<S> {
    /// `(virtual_time, node)` crash events; applied in time order.
    pub events: Vec<(u64, Coord)>,
    /// The absorbing state a crashed node assumes and announces.
    pub state: S,
}

impl<S> CrashPlan<S> {
    /// A plan crashing `events` nodes into `state`.
    pub fn new(events: impl IntoIterator<Item = (u64, Coord)>, state: S) -> Self {
        let mut events: Vec<(u64, Coord)> = events.into_iter().collect();
        events.sort_by_key(|&(t, c)| (t, c.x, c.y));
        CrashPlan { events, state }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn down_windows_are_half_open() {
        let m = LinkModel {
            down: vec![(5, 9)],
            ..LinkModel::reliable()
        };
        assert!(!m.is_down(4));
        assert!(m.is_down(5));
        assert!(m.is_down(8));
        assert!(!m.is_down(9));
    }

    #[test]
    fn overrides_shadow_the_default() {
        let mut cfg = ChaosConfig::uniform(1, 0.5, 0.0, 0.0);
        cfg.overrides
            .push((Coord::new(2, 2), Direction::East, LinkModel::reliable()));
        assert!(cfg.link(Coord::new(2, 2), Direction::East).is_reliable());
        assert_eq!(cfg.link(Coord::new(2, 2), Direction::West).drop, 0.5);
        assert!(!cfg.is_reliable());
    }

    #[test]
    fn stats_merge_adds_fieldwise() {
        let mut a = ChaosStats {
            dropped: 1,
            duplicated: 2,
            ..ChaosStats::default()
        };
        let b = ChaosStats {
            dropped: 10,
            retransmissions: 3,
            crashes: 1,
            ..ChaosStats::default()
        };
        a.merge(&b);
        assert_eq!(a.dropped, 11);
        assert_eq!(a.duplicated, 2);
        assert_eq!(a.retransmissions, 3);
        assert_eq!(a.crashes, 1);
        assert_eq!(a.anomalies(), 13);
    }

    #[test]
    fn crash_plan_sorts_by_time() {
        let plan = CrashPlan::new([(9, Coord::new(1, 1)), (2, Coord::new(3, 3))], 7u32);
        assert_eq!(plan.events[0], (2, Coord::new(3, 3)));
        assert_eq!(plan.events[1], (9, Coord::new(1, 1)));
    }
}
