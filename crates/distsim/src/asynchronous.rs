//! Asynchronous (event-driven) execution with arbitrary message delays and
//! optional chaos injection.
//!
//! The paper assumes synchronous lock-step rounds "to simplify our
//! discussion". Real multicomputers are not synchronized, so it matters
//! that the protocols are **confluent**: both labeling rules are monotone
//! (a node's status moves in one direction only) and their update functions
//! are order-insensitive joins of neighbor information, so any delivery
//! schedule reaches the same fixpoint. This executor makes that claim
//! executable: messages incur pseudo-random delays drawn from a seeded
//! generator, nodes react to each delivery individually, and the engine
//! reports the final states — which the cross-executor tests pin to the
//! synchronous outcome.
//!
//! [`run_chaos`] strengthens the claim further: links may drop, duplicate
//! or reorder messages and go down for whole windows of virtual time
//! ([`ChaosConfig`]), and nodes may crash mid-run ([`CrashPlan`]). Loss is
//! repaired by a heartbeat discipline — a sender whose message was lost
//! re-broadcasts its state after `heartbeat_period` time units, and keeps
//! doing so while the receiver's knowledge is stale. Staleness from
//! duplication and reordering is defeated by per-directed-link sequence
//! numbers: a delivery carrying a sequence number at or below the highest
//! one already seen on that link is discarded. Because heartbeats re-send
//! only while knowledge is stale, the event queue still drains once every
//! link is current and no node wants to move — the run terminates at the
//! same fixpoint as a reliable run for any confluent monotone protocol.
//!
//! The executor is a deterministic discrete-event simulation (no threads):
//! determinism keeps failures reproducible across runs and platforms, and
//! a chaos run is exactly reproducible from its seeds.

use crate::chaos::{ChaosConfig, ChaosStats, CrashPlan};
use crate::engine::gather;
use crate::{LockstepProtocol, NeighborStates};
use ocp_mesh::{Coord, Grid, Neighborhood, Topology, DIRECTIONS};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Result of an asynchronous run.
#[derive(Clone, Debug)]
pub struct AsyncOutcome<S> {
    /// Final per-node states (the protocol's fixpoint).
    pub states: Grid<S>,
    /// Point-to-point messages delivered.
    pub messages_delivered: u64,
    /// Virtual time of the last event.
    pub virtual_time: u64,
    /// True if the event queue drained (quiescence); false if the event cap
    /// was hit.
    pub converged: bool,
    /// Injected-anomaly counters (all zeros for a reliable run).
    pub chaos: ChaosStats,
}

/// Simple deterministic xorshift generator for delay jitter (keeps this
/// crate free of a `rand` dependency).
struct XorShift64(u64);

impl XorShift64 {
    fn new(seed: u64) -> Self {
        Self(seed.max(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    /// Uniform in `1..=max`.
    fn delay(&mut self, max: u64) -> u64 {
        1 + self.next() % max.max(1)
    }

    /// True with probability `p`. Consumes randomness only when the outcome
    /// is actually uncertain, so a reliable chaos config leaves every
    /// stream untouched and reproduces the legacy delay schedule exactly.
    fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        ((self.next() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

/// One scheduled simulation event. Payloads live in a side table so the
/// heap only orders `(time, sequence)` pairs — `State` need not be `Ord`.
#[derive(Clone, Copy)]
enum Event<S> {
    /// A message arriving at `to` from the neighbor in `arrival_dir`.
    Deliver {
        to: Coord,
        arrival_dir: usize,
        state: S,
        seq: u64,
    },
    /// Re-send timer for the directed link out of `from` towards
    /// `DIRECTIONS[dir]`; a no-op if the receiver's knowledge is current.
    Heartbeat { from: Coord, dir: usize },
    /// Node `node` crashes and assumes the crash plan's state.
    Crash { node: Coord },
}

struct ChaosSim<'a, P: LockstepProtocol> {
    protocol: &'a P,
    topology: Topology,
    chaos: &'a ChaosConfig,
    max_delay: u64,
    delay_rng: XorShift64,
    chaos_rng: XorShift64,
    states: Grid<P::State>,
    known: Grid<[P::State; 4]>,
    crashed: Grid<bool>,
    /// FIFO floor per (receiver, arrival dir): a later in-order message on
    /// the same directed link never arrives before an earlier one.
    last_arrival: Grid<[u64; 4]>,
    /// Highest sequence number sent per (sender, outgoing dir).
    sent_seq: Grid<[u64; 4]>,
    /// Highest sequence number delivered per (receiver, arrival dir).
    seen_seq: Grid<[u64; 4]>,
    payloads: Vec<Event<P::State>>,
    queue: BinaryHeap<(Reverse<u64>, usize)>,
    stats: ChaosStats,
}

impl<'a, P: LockstepProtocol> ChaosSim<'a, P> {
    fn schedule(&mut self, time: u64, event: Event<P::State>) {
        self.payloads.push(event);
        self.queue.push((Reverse(time), self.payloads.len() - 1));
    }

    /// Attempts one send of `from`'s current state on its `dir`-th link,
    /// applying the link's chaos model. Lost sends (drop or link-down)
    /// schedule a heartbeat so the knowledge is eventually repaired.
    fn send_on_link(&mut self, from: Coord, dir: usize, now: u64) {
        let Some(to) = self.topology.neighbor(from, DIRECTIONS[dir]).coord() else {
            return;
        };
        let model = self.chaos.link(from, DIRECTIONS[dir]);
        if model.is_down(now) {
            self.stats.link_down_discards += 1;
            let at = now + self.chaos.heartbeat_period;
            self.schedule(at, Event::Heartbeat { from, dir });
            return;
        }
        if model.drop > 0.0 && self.chaos_rng.chance(model.drop) {
            self.stats.dropped += 1;
            let at = now + self.chaos.heartbeat_period;
            self.schedule(at, Event::Heartbeat { from, dir });
            return;
        }
        let duplicate = model.duplicate > 0.0 && self.chaos_rng.chance(model.duplicate);
        let reorder = model.reorder > 0.0 && self.chaos_rng.chance(model.reorder);

        let state = *self.states.get(from);
        let arrival_dir = DIRECTIONS[dir].opposite().index();
        let seq = self.sent_seq.get(from)[dir] + 1;
        self.sent_seq.get_mut(from)[dir] = seq;

        let mut arrival = now + self.delay_rng.delay(self.max_delay);
        if reorder {
            // Skip the FIFO floor: this message may overtake older traffic.
            self.stats.reordered += 1;
        } else {
            arrival = arrival.max(self.last_arrival.get(to)[arrival_dir] + 1);
            self.last_arrival.get_mut(to)[arrival_dir] = arrival;
        }
        self.schedule(
            arrival,
            Event::Deliver {
                to,
                arrival_dir,
                state,
                seq,
            },
        );
        if duplicate {
            self.stats.duplicated += 1;
            let copy_at = now + self.delay_rng.delay(self.max_delay);
            self.schedule(
                copy_at,
                Event::Deliver {
                    to,
                    arrival_dir,
                    state,
                    seq,
                },
            );
        }
    }

    /// Broadcasts `from`'s current state on all four links.
    fn broadcast(&mut self, from: Coord, now: u64) {
        for dir in 0..4 {
            self.send_on_link(from, dir, now);
        }
    }

    /// Handles a delivery; returns true if it was fresh (counted).
    fn deliver(&mut self, to: Coord, arrival_dir: usize, state: P::State, seq: u64, now: u64) {
        // Duplicated or overtaken messages carry sequence numbers at or
        // below the newest already seen on the link: stale, discard.
        if seq <= self.seen_seq.get(to)[arrival_dir] {
            return;
        }
        self.seen_seq.get_mut(to)[arrival_dir] = seq;
        self.known.get_mut(to)[arrival_dir] = state;
        if !self.protocol.participates(to) || *self.crashed.get(to) {
            return;
        }
        let snapshot = *self.known.get(to);
        let protocol = self.protocol;
        let topology = self.topology;
        let neighbors: NeighborStates<P::State> = gather(protocol, to, |nc| {
            // Find the direction of nc and read the last-known state.
            let hood = Neighborhood::of(topology, to);
            let dir = hood
                .iter()
                .find(|(_, n)| n.coord() == Some(nc))
                .map(|(d, _)| d)
                .expect("gather only asks about real neighbors");
            snapshot[dir.index()]
        });
        let current = *self.states.get(to);
        let next = protocol.step(to, current, &neighbors);
        if next != current {
            self.states.set(to, next);
            self.broadcast(to, now);
        }
    }

    /// Handles a heartbeat timer: re-sends only if the receiver's last
    /// delivered knowledge differs from the sender's current state. Once
    /// knowledge is current the timer dies, so a quiesced machine stops
    /// generating events.
    fn heartbeat(&mut self, from: Coord, dir: usize, now: u64) {
        let Some(to) = self.topology.neighbor(from, DIRECTIONS[dir]).coord() else {
            return;
        };
        let arrival_dir = DIRECTIONS[dir].opposite().index();
        if self.known.get(to)[arrival_dir] == *self.states.get(from) {
            return;
        }
        self.stats.retransmissions += 1;
        self.send_on_link(from, dir, now);
    }

    /// Handles a mid-run crash: the node permanently assumes the crash
    /// state, stops stepping, and announces the new state (the
    /// announcement models the neighbors' hardware fault detection and is
    /// itself subject to chaos — heartbeats repair it if lost).
    fn crash(&mut self, node: Coord, state: P::State, now: u64) {
        if *self.crashed.get(node) {
            return;
        }
        self.stats.crashes += 1;
        self.crashed.set(node, true);
        self.states.set(node, state);
        self.broadcast(node, now);
    }
}

/// Runs `protocol` asynchronously: every state change is broadcast to the
/// node's neighbors with independent pseudo-random delays in
/// `1..=max_delay` time units; each delivery triggers a local re-evaluation
/// of the protocol's `step`.
///
/// Correctness requires the protocol to be *confluent* — its fixpoint
/// independent of delivery order. Both of the paper's labeling rules are
/// (they are monotone joins); a non-confluent protocol will still terminate
/// but may diverge from the synchronous outcome.
///
/// Each node initially knows only its own state; neighbors' states are
/// assumed at the protocol's initial values (the synchronous round-0
/// knowledge — for the labeling protocols this encodes local fault
/// detection). `max_events` caps runaway protocols.
///
/// Equivalent to [`run_chaos`] with [`ChaosConfig::reliable`] and no crash
/// plan; see [`crate::try_run_async`] for the error-reporting variant.
pub fn run_async<P: LockstepProtocol>(
    protocol: &P,
    seed: u64,
    max_delay: u64,
    max_events: u64,
) -> AsyncOutcome<P::State> {
    run_chaos(
        protocol,
        seed,
        max_delay,
        max_events,
        &ChaosConfig::reliable(),
        None,
    )
}

/// Runs `protocol` asynchronously under a chaos layer: link faults drawn
/// from `chaos` and, optionally, mid-run node crashes from `crashes`.
///
/// With a reliable config and no crash plan this is byte-identical to
/// [`run_async`] (the anomaly stream is untouched when probabilities are
/// zero). With loss, the heartbeat discipline guarantees that monotone
/// confluent protocols still reach the reliable fixpoint — see the module
/// docs for the argument. A link whose model makes delivery impossible
/// forever (e.g. `drop: 1.0` or an unbounded down window) will spin on
/// heartbeats until `max_events` and report `converged: false`.
pub fn run_chaos<P: LockstepProtocol>(
    protocol: &P,
    seed: u64,
    max_delay: u64,
    max_events: u64,
    chaos: &ChaosConfig,
    crashes: Option<&CrashPlan<P::State>>,
) -> AsyncOutcome<P::State> {
    assert!(chaos.heartbeat_period >= 1, "heartbeat_period must be >= 1");
    let topology = protocol.topology();
    let mut sim = ChaosSim {
        protocol,
        topology,
        chaos,
        max_delay,
        delay_rng: XorShift64::new(seed),
        chaos_rng: XorShift64::new(chaos.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x5EED),
        states: Grid::from_fn(topology, |c| protocol.initial(c)),
        // Last state received from each neighbor direction (initialized to
        // the neighbors' initial states; ghosts handled by `gather` at use
        // time).
        known: Grid::from_fn(topology, |c| {
            let hood = Neighborhood::of(topology, c);
            let mut arr = [protocol.ghost(); 4];
            for (dir, n) in hood.iter() {
                if let Some(nc) = n.coord() {
                    arr[dir.index()] = protocol.initial(nc);
                }
            }
            arr
        }),
        crashed: Grid::filled(topology, false),
        last_arrival: Grid::filled(topology, [0; 4]),
        sent_seq: Grid::filled(topology, [0; 4]),
        seen_seq: Grid::filled(topology, [0; 4]),
        payloads: Vec::new(),
        queue: BinaryHeap::new(),
        stats: ChaosStats::default(),
    };

    // Scheduled crashes enter the queue up front.
    if let Some(plan) = crashes {
        for &(t, node) in &plan.events {
            assert!(
                topology.contains(node),
                "crash plan names node off the mesh: {node:?}"
            );
            sim.schedule(t, Event::Crash { node });
        }
    }

    // Every node announces its initial state once (fault detection
    // included: non-participating nodes still announce).
    for c in topology.coords() {
        sim.broadcast(c, 0);
    }

    let mut messages_delivered: u64 = 0;
    let mut events_processed: u64 = 0;
    let mut virtual_time: u64 = 0;
    let mut converged = true;
    while let Some((Reverse(t), idx)) = sim.queue.pop() {
        if events_processed >= max_events {
            converged = false;
            break;
        }
        events_processed += 1;
        virtual_time = t;
        match sim.payloads[idx] {
            Event::Deliver {
                to,
                arrival_dir,
                state,
                seq,
            } => {
                messages_delivered += 1;
                sim.deliver(to, arrival_dir, state, seq, t);
            }
            Event::Heartbeat { from, dir } => sim.heartbeat(from, dir, t),
            Event::Crash { node } => {
                let state = crashes.expect("crash event without a plan").state;
                sim.crash(node, state, t);
            }
        }
    }

    if ocp_obs::enabled() {
        crate::telemetry::record_chaos("async-chaos", &sim.stats);
    }
    AsyncOutcome {
        states: sim.states,
        messages_delivered,
        virtual_time,
        converged,
        chaos: sim.stats,
    }
}

/// [`run_async`] with the convergence watchdog: hitting the event cap is an
/// explicit [`ConvergenceError`](crate::ConvergenceError) instead of a
/// silently ignorable flag.
pub fn try_run_async<P: LockstepProtocol>(
    protocol: &P,
    seed: u64,
    max_delay: u64,
    max_events: u64,
) -> Result<AsyncOutcome<P::State>, crate::ConvergenceError> {
    let out = run_async(protocol, seed, max_delay, max_events);
    if out.converged {
        Ok(out)
    } else {
        Err(crate::ConvergenceError::from_event_cap(&out, max_events))
    }
}

/// [`run_chaos`] with the convergence watchdog: hitting the event cap is an
/// explicit error carrying the chaos counters at the cap.
pub fn try_run_chaos<P: LockstepProtocol>(
    protocol: &P,
    seed: u64,
    max_delay: u64,
    max_events: u64,
    chaos: &ChaosConfig,
    crashes: Option<&CrashPlan<P::State>>,
) -> Result<AsyncOutcome<P::State>, crate::ConvergenceError> {
    let out = run_chaos(protocol, seed, max_delay, max_events, chaos, crashes);
    if out.converged {
        Ok(out)
    } else {
        Err(crate::ConvergenceError::from_event_cap(&out, max_events))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chaos::LinkModel;
    use crate::{run, Executor};
    use ocp_mesh::{Direction, Topology};

    /// Monotone max-flood (confluent).
    struct MaxFlood {
        topology: Topology,
        seed_cell: Coord,
    }

    impl LockstepProtocol for MaxFlood {
        type State = u32;
        fn topology(&self) -> Topology {
            self.topology
        }
        fn initial(&self, c: Coord) -> u32 {
            if c == self.seed_cell {
                999
            } else {
                (c.x + c.y) as u32 % 7
            }
        }
        fn ghost(&self) -> u32 {
            0
        }
        fn participates(&self, _c: Coord) -> bool {
            true
        }
        fn step(&self, _c: Coord, cur: u32, n: &NeighborStates<u32>) -> u32 {
            n.iter().map(|(_, s)| s).fold(cur, u32::max)
        }
    }

    #[test]
    fn async_reaches_synchronous_fixpoint() {
        for t in [Topology::mesh(9, 7), Topology::torus(8, 8)] {
            let p = MaxFlood {
                topology: t,
                seed_cell: Coord::new(1, 2),
            };
            let sync = run(&p, Executor::Sequential, 200);
            for seed in [1u64, 42, 12345] {
                for max_delay in [1u64, 3, 17] {
                    let a = run_async(&p, seed, max_delay, 10_000_000);
                    assert!(a.converged);
                    assert!(
                        a.states
                            .iter()
                            .zip(sync.states.iter())
                            .all(|((_, x), (_, y))| x == y),
                        "async diverged: {t:?} seed={seed} delay={max_delay}"
                    );
                }
            }
        }
    }

    #[test]
    fn async_delivers_at_least_initial_announcements() {
        let t = Topology::mesh(4, 4);
        let p = MaxFlood {
            topology: t,
            seed_cell: Coord::new(0, 0),
        };
        let a = run_async(&p, 7, 5, 1_000_000);
        // 4x4 mesh has 48 directed links; every node announces once.
        assert!(a.messages_delivered >= 48);
        assert!(a.virtual_time >= 1);
        assert_eq!(a.chaos, ChaosStats::default());
    }

    #[test]
    fn event_cap_reports_non_convergence() {
        let t = Topology::mesh(6, 6);
        let p = MaxFlood {
            topology: t,
            seed_cell: Coord::new(5, 5),
        };
        let a = run_async(&p, 3, 2, 10);
        assert!(!a.converged);
        assert_eq!(a.messages_delivered, 10);
    }

    #[test]
    fn delay_one_behaves_like_rounds() {
        // With unit delays, async delivery order is a valid synchronous
        // schedule; the fixpoint matches (stronger smoke for determinism).
        let t = Topology::mesh(5, 5);
        let p = MaxFlood {
            topology: t,
            seed_cell: Coord::new(2, 2),
        };
        let a1 = run_async(&p, 11, 1, 1_000_000);
        let a2 = run_async(&p, 11, 1, 1_000_000);
        assert!(a1
            .states
            .iter()
            .zip(a2.states.iter())
            .all(|((_, x), (_, y))| x == y));
        assert_eq!(a1.messages_delivered, a2.messages_delivered);
    }

    #[test]
    fn chaos_reaches_reliable_fixpoint() {
        let t = Topology::mesh(8, 6);
        let p = MaxFlood {
            topology: t,
            seed_cell: Coord::new(6, 1),
        };
        let sync = run(&p, Executor::Sequential, 200);
        for seed in [3u64, 77, 1010] {
            let cfg = ChaosConfig::uniform(seed ^ 0xC4A0, 0.2, 0.1, 0.1);
            let a = run_chaos(&p, seed, 4, 10_000_000, &cfg, None);
            assert!(a.converged, "seed {seed} hit the event cap");
            assert!(
                a.states
                    .iter()
                    .zip(sync.states.iter())
                    .all(|((_, x), (_, y))| x == y),
                "chaos run diverged from reliable fixpoint (seed {seed})"
            );
            assert!(
                a.chaos.dropped > 0,
                "drop rate 0.2 injected nothing (seed {seed})"
            );
            assert!(
                a.chaos.retransmissions > 0,
                "losses were never repaired (seed {seed})"
            );
        }
    }

    #[test]
    fn reliable_chaos_config_is_byte_identical_to_run_async() {
        let t = Topology::mesh(7, 7);
        let p = MaxFlood {
            topology: t,
            seed_cell: Coord::new(3, 3),
        };
        let plain = run_async(&p, 21, 6, 1_000_000);
        let via_chaos = run_chaos(&p, 21, 6, 1_000_000, &ChaosConfig::reliable(), None);
        assert_eq!(plain.messages_delivered, via_chaos.messages_delivered);
        assert_eq!(plain.virtual_time, via_chaos.virtual_time);
        assert!(plain
            .states
            .iter()
            .zip(via_chaos.states.iter())
            .all(|((_, x), (_, y))| x == y));
    }

    #[test]
    fn mid_run_crash_state_is_absorbing_and_floods() {
        let t = Topology::mesh(6, 6);
        let p = MaxFlood {
            topology: t,
            seed_cell: Coord::new(1, 2),
        };
        let victim = Coord::new(4, 4);
        let plan = CrashPlan::new([(5u64, victim)], 500u32);
        let a = run_chaos(&p, 9, 3, 10_000_000, &ChaosConfig::reliable(), Some(&plan));
        assert!(a.converged);
        assert_eq!(a.chaos.crashes, 1);
        // The crashed node holds its crash state; everyone else still
        // floods to the global max.
        for (c, &s) in a.states.iter() {
            if c == victim {
                assert_eq!(s, 500);
            } else {
                assert_eq!(s, 999, "node {c:?} missed the flood");
            }
        }
    }

    #[test]
    fn down_window_is_repaired_after_it_lifts() {
        let t = Topology::mesh(5, 5);
        let p = MaxFlood {
            topology: t,
            seed_cell: Coord::new(0, 0),
        };
        let sync = run(&p, Executor::Sequential, 200);
        let mut cfg = ChaosConfig::reliable();
        // Every eastward link out of column 0 is dead for the first 40
        // time units — the flood must stall, then recover.
        for y in 0..5 {
            cfg.overrides.push((
                Coord::new(0, y),
                Direction::East,
                LinkModel {
                    down: vec![(0, 40)],
                    ..LinkModel::reliable()
                },
            ));
        }
        let a = run_chaos(&p, 13, 3, 10_000_000, &cfg, None);
        assert!(a.converged);
        assert!(a.chaos.link_down_discards > 0);
        assert!(a
            .states
            .iter()
            .zip(sync.states.iter())
            .all(|((_, x), (_, y))| x == y));
        assert!(a.virtual_time >= 40, "fixpoint cannot precede the repair");
    }
}
