//! Asynchronous (event-driven) execution with arbitrary message delays.
//!
//! The paper assumes synchronous lock-step rounds "to simplify our
//! discussion". Real multicomputers are not synchronized, so it matters
//! that the protocols are **confluent**: both labeling rules are monotone
//! (a node's status moves in one direction only) and their update functions
//! are order-insensitive joins of neighbor information, so any delivery
//! schedule reaches the same fixpoint. This executor makes that claim
//! executable: messages incur pseudo-random delays drawn from a seeded
//! generator, nodes react to each delivery individually, and the engine
//! reports the final states — which the cross-executor tests pin to the
//! synchronous outcome.
//!
//! The executor is a deterministic discrete-event simulation (no threads):
//! determinism keeps failures reproducible across runs and platforms.

use crate::engine::gather;
use crate::{LockstepProtocol, NeighborStates};
use ocp_mesh::{Coord, Grid, Neighborhood, DIRECTIONS};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Result of an asynchronous run.
#[derive(Clone, Debug)]
pub struct AsyncOutcome<S> {
    /// Final per-node states (the protocol's fixpoint).
    pub states: Grid<S>,
    /// Point-to-point messages delivered.
    pub messages_delivered: u64,
    /// Virtual time of the last delivery.
    pub virtual_time: u64,
    /// True if the event queue drained (quiescence); false if the event cap
    /// was hit.
    pub converged: bool,
}

/// Simple deterministic xorshift generator for delay jitter (keeps this
/// crate free of a `rand` dependency).
struct XorShift64(u64);

impl XorShift64 {
    fn new(seed: u64) -> Self {
        Self(seed.max(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    /// Uniform in `1..=max`.
    fn delay(&mut self, max: u64) -> u64 {
        1 + self.next() % max.max(1)
    }
}

/// Runs `protocol` asynchronously: every state change is broadcast to the
/// node's neighbors with independent pseudo-random delays in
/// `1..=max_delay` time units; each delivery triggers a local re-evaluation
/// of the protocol's `step`.
///
/// Correctness requires the protocol to be *confluent* — its fixpoint
/// independent of delivery order. Both of the paper's labeling rules are
/// (they are monotone joins); a non-confluent protocol will still terminate
/// but may diverge from the synchronous outcome.
///
/// Each node initially knows only its own state; neighbors' states are
/// assumed at the protocol's initial values (the synchronous round-0
/// knowledge — for the labeling protocols this encodes local fault
/// detection). `max_events` caps runaway protocols.
pub fn run_async<P: LockstepProtocol>(
    protocol: &P,
    seed: u64,
    max_delay: u64,
    max_events: u64,
) -> AsyncOutcome<P::State> {
    let topology = protocol.topology();
    let mut rng = XorShift64::new(seed);

    // Current state per node.
    let mut states = Grid::from_fn(topology, |c| protocol.initial(c));
    // Last state received from each neighbor direction (initialized to the
    // neighbors' initial states; ghosts handled by `gather` at use time).
    let mut known: Grid<[P::State; 4]> = Grid::from_fn(topology, |c| {
        let hood = Neighborhood::of(topology, c);
        let mut arr = [protocol.ghost(); 4];
        for (dir, n) in hood.iter() {
            if let Some(nc) = n.coord() {
                arr[dir.index()] = protocol.initial(nc);
            }
        }
        arr
    });

    // Event payloads live in a side table so the heap only orders
    // `(time, sequence)` pairs — `State` need not be `Ord`.
    // Payload = (receiver, direction the message arrives from, state).
    let mut payloads: Vec<(Coord, usize, P::State)> = Vec::new();
    let mut queue: BinaryHeap<(Reverse<u64>, usize)> = BinaryHeap::new();
    // Links are FIFO, as on real interconnects: a later message on the same
    // directed link never arrives before an earlier one. Without this, a
    // stale status could overwrite fresher knowledge and wedge the
    // receiver short of the fixpoint. Keyed by (receiver, arrival dir).
    let mut last_arrival: Grid<[u64; 4]> = Grid::filled(topology, [0; 4]);

    let send_updates = |from: Coord,
                            state: P::State,
                            queue: &mut BinaryHeap<(Reverse<u64>, usize)>,
                            payloads: &mut Vec<(Coord, usize, P::State)>,
                            last_arrival: &mut Grid<[u64; 4]>,
                            rng: &mut XorShift64,
                            now: u64| {
        for dir in DIRECTIONS {
            if let Some(to) = topology.neighbor(from, dir).coord() {
                // The receiver sees the message arriving from the
                // opposite direction.
                let arrival_dir = dir.opposite().index();
                let floor = last_arrival.get(to)[arrival_dir] + 1;
                let arrival = (now + rng.delay(max_delay)).max(floor);
                last_arrival.get_mut(to)[arrival_dir] = arrival;
                payloads.push((to, arrival_dir, state));
                queue.push((Reverse(arrival), payloads.len() - 1));
            }
        }
    };

    // Every node announces its initial state once (fault detection
    // included: non-participating nodes still announce).
    for c in topology.coords() {
        send_updates(c, *states.get(c), &mut queue, &mut payloads, &mut last_arrival, &mut rng, 0);
    }

    let mut messages_delivered: u64 = 0;
    let mut virtual_time: u64 = 0;
    let mut converged = true;
    while let Some((Reverse(t), idx)) = queue.pop() {
        let (to, arrival_dir, payload) = payloads[idx];
        if messages_delivered >= max_events {
            converged = false;
            break;
        }
        messages_delivered += 1;
        virtual_time = t;
        known.get_mut(to)[arrival_dir] = payload;
        if !protocol.participates(to) {
            continue;
        }
        let snapshot = *known.get(to);
        let neighbors: NeighborStates<P::State> = gather(protocol, to, |nc| {
            // Find the direction of nc and read the last-known state.
            let hood = Neighborhood::of(topology, to);
            let dir = hood
                .iter()
                .find(|(_, n)| n.coord() == Some(nc))
                .map(|(d, _)| d)
                .expect("gather only asks about real neighbors");
            snapshot[dir.index()]
        });
        let current = *states.get(to);
        let next = protocol.step(to, current, &neighbors);
        if next != current {
            states.set(to, next);
            send_updates(to, next, &mut queue, &mut payloads, &mut last_arrival, &mut rng, t);
        }
    }

    AsyncOutcome {
        states,
        messages_delivered,
        virtual_time,
        converged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run, Executor};
    use ocp_mesh::Topology;

    /// Monotone max-flood (confluent).
    struct MaxFlood {
        topology: Topology,
        seed_cell: Coord,
    }

    impl LockstepProtocol for MaxFlood {
        type State = u32;
        fn topology(&self) -> Topology {
            self.topology
        }
        fn initial(&self, c: Coord) -> u32 {
            if c == self.seed_cell {
                999
            } else {
                (c.x + c.y) as u32 % 7
            }
        }
        fn ghost(&self) -> u32 {
            0
        }
        fn participates(&self, _c: Coord) -> bool {
            true
        }
        fn step(&self, _c: Coord, cur: u32, n: &NeighborStates<u32>) -> u32 {
            n.iter().map(|(_, s)| s).fold(cur, u32::max)
        }
    }

    #[test]
    fn async_reaches_synchronous_fixpoint() {
        for t in [Topology::mesh(9, 7), Topology::torus(8, 8)] {
            let p = MaxFlood { topology: t, seed_cell: Coord::new(1, 2) };
            let sync = run(&p, Executor::Sequential, 200);
            for seed in [1u64, 42, 12345] {
                for max_delay in [1u64, 3, 17] {
                    let a = run_async(&p, seed, max_delay, 10_000_000);
                    assert!(a.converged);
                    assert!(a
                        .states
                        .iter()
                        .zip(sync.states.iter())
                        .all(|((_, x), (_, y))| x == y),
                        "async diverged: {t:?} seed={seed} delay={max_delay}");
                }
            }
        }
    }

    #[test]
    fn async_delivers_at_least_initial_announcements() {
        let t = Topology::mesh(4, 4);
        let p = MaxFlood { topology: t, seed_cell: Coord::new(0, 0) };
        let a = run_async(&p, 7, 5, 1_000_000);
        // 4x4 mesh has 48 directed links; every node announces once.
        assert!(a.messages_delivered >= 48);
        assert!(a.virtual_time >= 1);
    }

    #[test]
    fn event_cap_reports_non_convergence() {
        let t = Topology::mesh(6, 6);
        let p = MaxFlood { topology: t, seed_cell: Coord::new(5, 5) };
        let a = run_async(&p, 3, 2, 10);
        assert!(!a.converged);
        assert_eq!(a.messages_delivered, 10);
    }

    #[test]
    fn delay_one_behaves_like_rounds() {
        // With unit delays, async delivery order is a valid synchronous
        // schedule; the fixpoint matches (stronger smoke for determinism).
        let t = Topology::mesh(5, 5);
        let p = MaxFlood { topology: t, seed_cell: Coord::new(2, 2) };
        let a1 = run_async(&p, 11, 1, 1_000_000);
        let a2 = run_async(&p, 11, 1, 1_000_000);
        assert!(a1
            .states
            .iter()
            .zip(a2.states.iter())
            .all(|((_, x), (_, y))| x == y));
        assert_eq!(a1.messages_delivered, a2.messages_delivered);
    }
}
