//! Hooks into the process-global `ocp-obs` registry.
//!
//! Everything here is called only after the caller observed
//! [`ocp_obs::enabled`] as true, so the disabled path pays exactly one
//! relaxed atomic load per run (and nothing per round). Executor run
//! totals are recorded once per [`crate::run`]/[`crate::run_actor_chaos`]
//! call; per-round instrumentation lives inside the executors that have a
//! natural per-round structure (sequential, frontier), which hoist their
//! histogram handles out of the loop.

use crate::{ChaosStats, RunTrace};
use std::time::Duration;

/// Clamps a duration into nanosecond `u64` range for histogram recording.
pub(crate) fn as_nanos(d: Duration) -> u64 {
    d.as_nanos().min(u64::MAX as u128) as u64
}

/// Records one completed protocol run under the `executor` label.
pub(crate) fn record_run(executor: &str, trace: &RunTrace, elapsed: Duration) {
    let reg = ocp_obs::global();
    let labels: &[(&str, &str)] = &[("executor", executor)];
    reg.counter(
        "ocp_executor_runs_total",
        "Lockstep protocol runs completed, by executor.",
        labels,
    )
    .inc();
    reg.counter(
        "ocp_executor_rounds_total",
        "Rounds executed, including the trailing quiet round, by executor.",
        labels,
    )
    .add(u64::from(trace.rounds_executed()));
    reg.counter(
        "ocp_executor_messages_total",
        "Status messages charged by the lockstep accounting, by executor.",
        labels,
    )
    .add(trace.messages_sent);
    if !trace.converged {
        reg.counter(
            "ocp_executor_unconverged_total",
            "Runs that stopped at their round cap without a quiet round.",
            labels,
        )
        .inc();
    }
    reg.histogram(
        "ocp_executor_run_duration_ns",
        "Wall-clock duration of one protocol run, nanoseconds.",
        labels,
    )
    .record(as_nanos(elapsed));
}

/// Records the chaos-layer anomaly counters of one adversarial run.
pub(crate) fn record_chaos(executor: &str, stats: &ChaosStats) {
    let reg = ocp_obs::global();
    let labels: &[(&str, &str)] = &[("executor", executor)];
    for (name, help, value) in [
        (
            "ocp_chaos_dropped_total",
            "Messages silently lost in transit by the chaos layer.",
            stats.dropped,
        ),
        (
            "ocp_chaos_duplicated_total",
            "Messages delivered twice by the chaos layer.",
            stats.duplicated,
        ),
        (
            "ocp_chaos_reordered_total",
            "Messages allowed to overtake earlier traffic on their link.",
            stats.reordered,
        ),
        (
            "ocp_chaos_retransmissions_total",
            "Heartbeat-triggered re-sends repairing lost knowledge.",
            stats.retransmissions,
        ),
        (
            "ocp_chaos_link_down_discards_total",
            "Sends discarded because the link was inside a down window.",
            stats.link_down_discards,
        ),
        (
            "ocp_chaos_crashes_total",
            "Mid-run node crashes applied from a crash plan.",
            stats.crashes,
        ),
    ] {
        reg.counter(name, help, labels).add(value);
    }
}
