//! Frontier-driven executor: only re-step nodes whose neighborhood moved.
//!
//! The paper's protocols are *locally dependent*: a node's next state is a
//! pure function of its own state and its four neighbors' states, so a
//! node whose whole neighborhood is unchanged since its last evaluation
//! cannot change either. This executor exploits that with a dirty-set
//! worklist — after round `r` the round-`r + 1` frontier is exactly the
//! nodes that changed in round `r` plus their participating real
//! neighbors. On a large mesh with a few fault clusters the frontier
//! collapses to the cluster boundaries after round 1 and the per-round
//! cost drops from `O(N)` to `O(|frontier|)`.
//!
//! Round semantics are *identical* to the sequential reference executor:
//! the same number of rounds executes, each round reports the same change
//! count (including the trailing quiet round), and message accounting
//! still charges every participating node's links every round — the
//! frontier is a scheduling optimization of the simulator, not a change
//! to the simulated protocol, whose nodes all still exchange status each
//! round.
//!
//! Round 1 has no previous round to derive a frontier from; protocols may
//! narrow it via [`LockstepProtocol::initial_frontier`], otherwise the
//! first round sweeps every participating node.

use crate::engine::{gather, messages_per_round, RunOutcome};
use crate::{LockstepProtocol, RunTrace};
use ocp_mesh::{Grid, Neighborhood};

/// Runs the protocol with a dirty-set worklist per round.
pub(crate) fn run<P: LockstepProtocol>(protocol: &P, max_rounds: u32) -> RunOutcome<P::State> {
    let topology = protocol.topology();
    let n = topology.len();
    let mut current = Grid::from_fn(topology, |c| protocol.initial(c));
    let per_round = messages_per_round(protocol);

    let participates: Vec<bool> = topology
        .coords()
        .map(|c| protocol.participates(c))
        .collect();

    // `in_frontier` marks membership while building a worklist; it is
    // cleared again after each build so it can be reused.
    let mut in_frontier = vec![false; n];
    let mut frontier: Vec<usize> = Vec::new();
    match protocol.initial_frontier() {
        Some(seeds) => {
            for c in seeds {
                let i = topology.index_of(c);
                if participates[i] && !in_frontier[i] {
                    in_frontier[i] = true;
                    frontier.push(i);
                }
            }
        }
        None => {
            frontier.extend((0..n).filter(|&i| participates[i]));
        }
    }
    for &i in &frontier {
        in_frontier[i] = false;
    }

    // Handles fetched once per run; the per-round cost when observability
    // is on is two timestamps and two lock-free histogram records.
    let round_obs = ocp_obs::enabled().then(|| {
        let reg = ocp_obs::global();
        (
            reg.histogram(
                "ocp_executor_round_duration_ns",
                "Wall-clock duration of one lockstep round, nanoseconds.",
                &[("executor", "frontier")],
            ),
            reg.histogram(
                "ocp_frontier_size_nodes",
                "Worklist size of each frontier-executor round, in nodes.",
                &[],
            ),
        )
    });

    let mut changes_per_round = Vec::new();
    let mut messages_sent = 0u64;
    let mut converged = false;
    let mut updates: Vec<(usize, P::State)> = Vec::new();

    while (changes_per_round.len() as u32) < max_rounds {
        let round_start = round_obs.as_ref().map(|(_, sizes)| {
            sizes.record(frontier.len() as u64);
            std::time::Instant::now()
        });
        // Evaluate the frontier against the start-of-round states only
        // (lock-step): updates are buffered and applied after the sweep.
        updates.clear();
        let cells = current.as_slice();
        for &i in &frontier {
            let c = topology.coord_of(i);
            let state = cells[i];
            let neighbors = gather(protocol, c, |nc| cells[topology.index_of(nc)]);
            let next = protocol.step(c, state, &neighbors);
            if next != state {
                updates.push((i, next));
            }
        }
        messages_sent += per_round;
        changes_per_round.push(updates.len() as u32);
        if let (Some((durations, _)), Some(start)) = (&round_obs, round_start) {
            durations.record(crate::telemetry::as_nanos(start.elapsed()));
        }
        if updates.is_empty() {
            converged = true;
            break;
        }

        // Next frontier: every changed node and its participating real
        // neighbors — the only nodes whose round-input can differ.
        frontier.clear();
        for &(i, _) in &updates {
            if !in_frontier[i] {
                in_frontier[i] = true;
                frontier.push(i);
            }
            for nb in Neighborhood::of(topology, topology.coord_of(i)).nodes() {
                let j = topology.index_of(nb);
                if participates[j] && !in_frontier[j] {
                    in_frontier[j] = true;
                    frontier.push(j);
                }
            }
        }
        for &i in &frontier {
            in_frontier[i] = false;
        }

        let cells = current.as_mut_slice();
        for &(i, s) in &updates {
            cells[i] = s;
        }
    }

    RunOutcome {
        states: current,
        trace: RunTrace::new(changes_per_round, messages_sent, converged),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run as engine_run, Executor, NeighborStates};
    use ocp_mesh::{Coord, Topology};

    /// Monotone corner flood (all nodes participate, default frontier).
    struct Flood(Topology);

    impl LockstepProtocol for Flood {
        type State = u32;
        fn topology(&self) -> Topology {
            self.0
        }
        fn initial(&self, c: Coord) -> u32 {
            (c == Coord::new(0, 0)) as u32
        }
        fn ghost(&self) -> u32 {
            0
        }
        fn participates(&self, _c: Coord) -> bool {
            true
        }
        fn step(&self, _c: Coord, cur: u32, n: &NeighborStates<u32>) -> u32 {
            n.iter().map(|(_, s)| s).fold(cur, u32::max)
        }
    }

    /// Same flood, but with the exact round-1 seed declared.
    struct SeededFlood(Topology);

    impl LockstepProtocol for SeededFlood {
        type State = u32;
        fn topology(&self) -> Topology {
            self.0
        }
        fn initial(&self, c: Coord) -> u32 {
            (c == Coord::new(0, 0)) as u32
        }
        fn ghost(&self) -> u32 {
            0
        }
        fn participates(&self, _c: Coord) -> bool {
            true
        }
        fn step(&self, _c: Coord, cur: u32, n: &NeighborStates<u32>) -> u32 {
            n.iter().map(|(_, s)| s).fold(cur, u32::max)
        }
        fn initial_frontier(&self) -> Option<Vec<Coord>> {
            // Only neighbors of the source can change in round 1.
            Some(Neighborhood::of(self.0, Coord::new(0, 0)).nodes().collect())
        }
    }

    #[test]
    fn matches_sequential_trace_exactly() {
        for t in [Topology::mesh(9, 7), Topology::torus(8, 6)] {
            let p = Flood(t);
            let reference = engine_run(&p, Executor::Sequential, 100);
            let out = engine_run(&p, Executor::Frontier, 100);
            assert_eq!(out.states, reference.states, "{t:?}");
            assert_eq!(out.trace, reference.trace, "{t:?}");
        }
    }

    #[test]
    fn initial_frontier_seed_preserves_the_trace() {
        let t = Topology::mesh(11, 5);
        let reference = engine_run(&Flood(t), Executor::Sequential, 100);
        let out = engine_run(&SeededFlood(t), Executor::Frontier, 100);
        assert_eq!(out.states, reference.states);
        assert_eq!(out.trace, reference.trace);
    }

    #[test]
    fn round_cap_reports_unconverged() {
        let p = Flood(Topology::mesh(12, 12));
        let reference = engine_run(&p, Executor::Sequential, 3);
        let out = engine_run(&p, Executor::Frontier, 3);
        assert!(!out.trace.converged);
        assert_eq!(out.trace, reference.trace);
        assert_eq!(out.states, reference.states);
    }

    #[test]
    fn empty_seed_converges_in_one_quiet_round() {
        // A fixpoint initial state with a declared-empty frontier: one
        // quiet round, exactly like the sequential executor observes.
        struct Quiet(Topology);
        impl LockstepProtocol for Quiet {
            type State = u8;
            fn topology(&self) -> Topology {
                self.0
            }
            fn initial(&self, _c: Coord) -> u8 {
                1
            }
            fn ghost(&self) -> u8 {
                1
            }
            fn participates(&self, _c: Coord) -> bool {
                true
            }
            fn step(&self, _c: Coord, cur: u8, _n: &NeighborStates<u8>) -> u8 {
                cur
            }
            fn initial_frontier(&self) -> Option<Vec<Coord>> {
                Some(Vec::new())
            }
        }
        let p = Quiet(Topology::mesh(5, 5));
        let reference = engine_run(&p, Executor::Sequential, 10);
        let out = engine_run(&p, Executor::Frontier, 10);
        assert_eq!(out.trace, reference.trace);
        assert_eq!(out.trace.changes_per_round, vec![0]);
        assert!(out.trace.converged);
    }
}
