//! Executor selection and shared engine plumbing.

use crate::{LockstepProtocol, NeighborStates, RunTrace};
use ocp_mesh::{Coord, Grid, Neighborhood};

/// How to execute a [`LockstepProtocol`] run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Executor {
    /// Deterministic single-threaded double-buffered execution.
    Sequential,
    /// Domain decomposition into horizontal strips; one OS thread per strip,
    /// halo rows exchanged over crossbeam channels every round.
    Sharded {
        /// Number of strips/threads (clamped to the mesh height).
        threads: usize,
    },
    /// One OS thread per node, one channel per link — the literal
    /// message-passing reading of the paper. Only sensible for small
    /// machines; [`run`] refuses topologies above 4096 nodes.
    Actor,
}

/// Result of running a protocol to quiescence (or to the round cap).
#[derive(Clone, Debug)]
pub struct RunOutcome<S> {
    /// Final per-node states.
    pub states: Grid<S>,
    /// Rounds, change counts and message totals.
    pub trace: RunTrace,
}

/// Largest machine the actor executor will accept (threads = nodes).
pub(crate) const MAX_ACTOR_NODES: usize = 4096;

/// Runs `protocol` to quiescence with the chosen executor.
///
/// `max_rounds` caps execution for non-converging protocols; the paper's
/// protocols converge within the largest block diameter, so callers
/// typically pass a small multiple of the topology diameter. If the cap is
/// hit, [`RunTrace::converged`] is false.
///
/// All executors produce byte-identical outcomes for deterministic
/// protocols (verified by the cross-executor integration tests).
///
/// ```
/// use ocp_distsim::{run, Executor, LockstepProtocol, NeighborStates};
/// use ocp_mesh::{Coord, Topology};
///
/// /// Every node adopts the max value seen in its neighborhood.
/// struct Flood(Topology);
/// impl LockstepProtocol for Flood {
///     type State = u32;
///     fn topology(&self) -> Topology { self.0 }
///     fn initial(&self, c: Coord) -> u32 { (c == Coord::new(0, 0)) as u32 }
///     fn ghost(&self) -> u32 { 0 }
///     fn participates(&self, _c: Coord) -> bool { true }
///     fn step(&self, _c: Coord, cur: u32, n: &NeighborStates<u32>) -> u32 {
///         n.iter().map(|(_, s)| s).fold(cur, u32::max)
///     }
/// }
///
/// let out = run(&Flood(Topology::mesh(4, 4)), Executor::Sequential, 100);
/// assert!(out.trace.converged);
/// assert_eq!(out.trace.rounds(), 6); // eccentricity of the corner
/// assert!(out.states.iter().all(|(_, &s)| s == 1));
/// ```
///
/// # Panics
/// Panics if `Executor::Actor` is used on a machine larger than 4096 nodes,
/// or `Executor::Sharded { threads: 0 }` is requested.
pub fn run<P: LockstepProtocol>(protocol: &P, executor: Executor, max_rounds: u32) -> RunOutcome<P::State> {
    match executor {
        Executor::Sequential => crate::sequential::run(protocol, max_rounds),
        Executor::Sharded { threads } => {
            assert!(threads > 0, "sharded executor needs at least one thread");
            crate::sharded::run(protocol, threads, max_rounds)
        }
        Executor::Actor => {
            assert!(
                protocol.topology().len() <= MAX_ACTOR_NODES,
                "actor executor limited to {MAX_ACTOR_NODES} nodes ({} requested); \
                 use Sequential or Sharded for larger machines",
                protocol.topology().len()
            );
            crate::actor::run(protocol, max_rounds)
        }
    }
}

/// Collects the four neighbor states of `c`, resolving mesh ghosts to the
/// protocol's ghost state and looking real neighbors up via `lookup`.
pub(crate) fn gather<P: LockstepProtocol>(
    protocol: &P,
    c: Coord,
    mut lookup: impl FnMut(Coord) -> P::State,
) -> NeighborStates<P::State> {
    let hood = Neighborhood::of(protocol.topology(), c);
    let g = protocol.ghost();
    let mut resolve = |n: ocp_mesh::Neighbor| match n.coord() {
        Some(cc) => lookup(cc),
        None => g,
    };
    NeighborStates::new([
        resolve(hood.in_direction(ocp_mesh::Direction::West)),
        resolve(hood.in_direction(ocp_mesh::Direction::East)),
        resolve(hood.in_direction(ocp_mesh::Direction::South)),
        resolve(hood.in_direction(ocp_mesh::Direction::North)),
    ])
}

/// Status messages sent per exchange round: every participating node sends
/// its state over each of its real links (ghost links carry nothing).
pub(crate) fn messages_per_round<P: LockstepProtocol>(protocol: &P) -> u64 {
    let t = protocol.topology();
    t.coords()
        .filter(|&c| protocol.participates(c))
        .map(|c| Neighborhood::of(t, c).nodes().count() as u64)
        .sum()
}
