//! Executor selection and shared engine plumbing.

use crate::{LockstepProtocol, NeighborStates, RunTrace};
use ocp_mesh::{Coord, Grid, Neighborhood};

/// How to execute a [`LockstepProtocol`] run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Executor {
    /// Deterministic single-threaded double-buffered execution.
    Sequential,
    /// Frontier-driven execution: a dirty-set worklist re-steps only nodes
    /// with a changed neighborhood (seeded by
    /// [`LockstepProtocol::initial_frontier`]). Byte-identical states *and*
    /// traces to `Sequential` for deterministic protocols, at
    /// `O(|frontier|)` instead of `O(N)` per round once activity
    /// localizes.
    Frontier,
    /// Domain decomposition into horizontal strips; one OS thread per strip,
    /// halo rows exchanged over crossbeam channels every round.
    Sharded {
        /// Number of strips/threads (clamped to the mesh height).
        threads: usize,
    },
    /// One OS thread per node, one channel per link — the literal
    /// message-passing reading of the paper. Only sensible for small
    /// machines; [`run`] refuses topologies above 4096 nodes.
    Actor,
}

impl Executor {
    /// Stable lowercase identifier, used as the `executor` label on every
    /// metric the engine exports (e.g. `sequential`, `sharded4`).
    pub fn label(&self) -> String {
        match self {
            Executor::Sequential => "sequential".to_string(),
            Executor::Frontier => "frontier".to_string(),
            Executor::Sharded { threads } => format!("sharded{threads}"),
            Executor::Actor => "actor".to_string(),
        }
    }
}

/// Result of running a protocol to quiescence (or to the round cap).
#[derive(Clone, Debug)]
pub struct RunOutcome<S> {
    /// Final per-node states.
    pub states: Grid<S>,
    /// Rounds, change counts and message totals.
    pub trace: RunTrace,
}

/// Largest machine the actor executor will accept (threads = nodes).
pub(crate) const MAX_ACTOR_NODES: usize = 4096;

/// Runs `protocol` to quiescence with the chosen executor.
///
/// `max_rounds` caps execution for non-converging protocols; the paper's
/// protocols converge within the largest block diameter, so callers
/// typically pass a small multiple of the topology diameter. If the cap is
/// hit, [`RunTrace::converged`] is false.
///
/// All executors produce byte-identical outcomes for deterministic
/// protocols (verified by the cross-executor integration tests).
///
/// ```
/// use ocp_distsim::{run, Executor, LockstepProtocol, NeighborStates};
/// use ocp_mesh::{Coord, Topology};
///
/// /// Every node adopts the max value seen in its neighborhood.
/// struct Flood(Topology);
/// impl LockstepProtocol for Flood {
///     type State = u32;
///     fn topology(&self) -> Topology { self.0 }
///     fn initial(&self, c: Coord) -> u32 { (c == Coord::new(0, 0)) as u32 }
///     fn ghost(&self) -> u32 { 0 }
///     fn participates(&self, _c: Coord) -> bool { true }
///     fn step(&self, _c: Coord, cur: u32, n: &NeighborStates<u32>) -> u32 {
///         n.iter().map(|(_, s)| s).fold(cur, u32::max)
///     }
/// }
///
/// let out = run(&Flood(Topology::mesh(4, 4)), Executor::Sequential, 100);
/// assert!(out.trace.converged);
/// assert_eq!(out.trace.rounds(), 6); // eccentricity of the corner
/// assert!(out.states.iter().all(|(_, &s)| s == 1));
/// ```
///
/// # Panics
/// Panics if `Executor::Sharded { threads: 0 }` is requested.
///
/// `Executor::Actor` on a machine larger than 4096 nodes no longer panics:
/// it falls back to the sharded executor (one thread per available core)
/// and records the substitution in [`RunTrace::notes`] — the outcome is
/// identical because all executors agree on deterministic protocols.
pub fn run<P: LockstepProtocol>(
    protocol: &P,
    executor: Executor,
    max_rounds: u32,
) -> RunOutcome<P::State> {
    let timer = ocp_obs::enabled().then(std::time::Instant::now);
    let out = run_inner(protocol, executor, max_rounds);
    if let Some(start) = timer {
        crate::telemetry::record_run(&executor.label(), &out.trace, start.elapsed());
    }
    out
}

fn run_inner<P: LockstepProtocol>(
    protocol: &P,
    executor: Executor,
    max_rounds: u32,
) -> RunOutcome<P::State> {
    match executor {
        Executor::Sequential => crate::sequential::run(protocol, max_rounds),
        Executor::Frontier => crate::frontier::run(protocol, max_rounds),
        Executor::Sharded { threads } => {
            assert!(threads > 0, "sharded executor needs at least one thread");
            crate::sharded::run(protocol, threads, max_rounds)
        }
        Executor::Actor => {
            let nodes = protocol.topology().len();
            if nodes > MAX_ACTOR_NODES {
                let threads = std::thread::available_parallelism()
                    .map(|p| p.get())
                    .unwrap_or(4);
                let mut out = crate::sharded::run(protocol, threads, max_rounds);
                out.trace.notes.push(format!(
                    "actor executor refused {nodes} nodes (cap {MAX_ACTOR_NODES}); \
                     fell back to the sharded executor with {threads} threads"
                ));
                out
            } else {
                crate::actor::run(protocol, max_rounds)
            }
        }
    }
}

/// Like [`run`], but a run that stops at `max_rounds` without reaching a
/// quiet round is an explicit [`ConvergenceError`](crate::ConvergenceError)
/// instead of a silently ignorable flag. Prefer this in any caller that
/// treats the returned states as a fixpoint.
pub fn try_run<P: LockstepProtocol>(
    protocol: &P,
    executor: Executor,
    max_rounds: u32,
) -> Result<RunOutcome<P::State>, crate::ConvergenceError> {
    let out = run(protocol, executor, max_rounds);
    if out.trace.converged {
        Ok(out)
    } else {
        Err(crate::ConvergenceError::from_round_cap(&out, max_rounds))
    }
}

/// Lockstep actor execution under a chaos layer: every send passes through
/// the per-link models of `chaos` (drops, duplicates, reorders rendered as
/// one-round-late arrivals, down windows keyed by round number). Loss is
/// repaired by the lockstep re-announcement each round; convergence is
/// detected when a round has no state changes and no loss left any
/// receiver stale, which for monotone confluent protocols pins the same
/// fixpoint as a reliable run.
///
/// # Panics
/// Panics above 4096 nodes: no other executor implements the lockstep
/// chaos semantics, so there is nothing correct to fall back to (use
/// [`crate::run_chaos`], the event-driven chaos executor, for large
/// machines).
pub fn run_actor_chaos<P: LockstepProtocol>(
    protocol: &P,
    max_rounds: u32,
    chaos: &crate::ChaosConfig,
) -> RunOutcome<P::State> {
    assert!(
        protocol.topology().len() <= MAX_ACTOR_NODES,
        "actor chaos executor limited to {MAX_ACTOR_NODES} nodes ({} requested); \
         use run_chaos (event-driven) for larger machines",
        protocol.topology().len()
    );
    let timer = ocp_obs::enabled().then(std::time::Instant::now);
    let out = crate::actor::run_chaos(protocol, max_rounds, chaos);
    if let Some(start) = timer {
        crate::telemetry::record_run("actor-chaos", &out.trace, start.elapsed());
        crate::telemetry::record_chaos("actor-chaos", &out.trace.chaos);
    }
    out
}

/// [`run_actor_chaos`] with the convergence watchdog: hitting the round cap
/// is an explicit error.
pub fn try_run_actor_chaos<P: LockstepProtocol>(
    protocol: &P,
    max_rounds: u32,
    chaos: &crate::ChaosConfig,
) -> Result<RunOutcome<P::State>, crate::ConvergenceError> {
    let out = run_actor_chaos(protocol, max_rounds, chaos);
    if out.trace.converged {
        Ok(out)
    } else {
        Err(crate::ConvergenceError::from_round_cap(&out, max_rounds))
    }
}

/// Collects the four neighbor states of `c`, resolving mesh ghosts to the
/// protocol's ghost state and looking real neighbors up via `lookup`.
pub(crate) fn gather<P: LockstepProtocol>(
    protocol: &P,
    c: Coord,
    mut lookup: impl FnMut(Coord) -> P::State,
) -> NeighborStates<P::State> {
    let hood = Neighborhood::of(protocol.topology(), c);
    let g = protocol.ghost();
    let mut resolve = |n: ocp_mesh::Neighbor| match n.coord() {
        Some(cc) => lookup(cc),
        None => g,
    };
    NeighborStates::new([
        resolve(hood.in_direction(ocp_mesh::Direction::West)),
        resolve(hood.in_direction(ocp_mesh::Direction::East)),
        resolve(hood.in_direction(ocp_mesh::Direction::South)),
        resolve(hood.in_direction(ocp_mesh::Direction::North)),
    ])
}

/// Status messages sent per exchange round: every participating node sends
/// its state over each of its real links (ghost links carry nothing).
pub(crate) fn messages_per_round<P: LockstepProtocol>(protocol: &P) -> u64 {
    let t = protocol.topology();
    t.coords()
        .filter(|&c| protocol.participates(c))
        .map(|c| u64::from(t.real_degree(c)))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ChaosConfig;
    use ocp_mesh::{Coord, Topology};

    /// Monotone max-flood (confluent).
    struct MaxFlood(Topology);

    impl LockstepProtocol for MaxFlood {
        type State = u32;
        fn topology(&self) -> Topology {
            self.0
        }
        fn initial(&self, c: Coord) -> u32 {
            if c == Coord::new(0, 0) {
                77
            } else {
                0
            }
        }
        fn ghost(&self) -> u32 {
            0
        }
        fn participates(&self, _c: Coord) -> bool {
            true
        }
        fn step(&self, _c: Coord, cur: u32, n: &NeighborStates<u32>) -> u32 {
            n.iter().map(|(_, s)| s).fold(cur, u32::max)
        }
    }

    #[test]
    fn oversized_actor_falls_back_to_sharded() {
        // 70x70 = 4900 nodes: above the actor cap. Must not panic, must
        // produce the sequential fixpoint, and must say what it did.
        let p = MaxFlood(Topology::mesh(70, 70));
        let reference = run(&p, Executor::Sequential, 400);
        let out = run(&p, Executor::Actor, 400);
        assert!(out.trace.converged);
        assert_eq!(out.trace.notes.len(), 1);
        assert!(
            out.trace.notes[0].contains("fell back"),
            "{:?}",
            out.trace.notes
        );
        assert!(out
            .states
            .iter()
            .zip(reference.states.iter())
            .all(|((_, a), (_, b))| a == b));
    }

    #[test]
    fn actor_chaos_reaches_reliable_fixpoint() {
        let p = MaxFlood(Topology::mesh(6, 5));
        let reference = run(&p, Executor::Sequential, 100);
        let cfg = ChaosConfig::uniform(0xAC7, 0.2, 0.1, 0.1);
        let out = try_run_actor_chaos(&p, 10_000, &cfg).expect("chaos actor run stalled");
        assert!(out
            .states
            .iter()
            .zip(reference.states.iter())
            .all(|((_, a), (_, b))| a == b));
        assert!(
            out.trace.chaos.dropped > 0,
            "nothing was dropped: {:?}",
            out.trace.chaos
        );
    }

    #[test]
    fn try_run_surfaces_round_cap() {
        let p = MaxFlood(Topology::mesh(12, 12));
        // A 12x12 corner flood needs 22 productive rounds; cap it at 3.
        let err = try_run(&p, Executor::Sequential, 3)
            .expect_err("cap of 3 cannot converge")
            .with_label("engine self-test");
        assert!(err.to_string().contains("engine self-test"));
        assert!(err.to_string().contains("3 rounds"));
    }
}
