//! Actor executor: one thread per node, one channel per link.
//!
//! This is the most literal rendering of the paper's model — each node is an
//! independent process that can only talk to its mesh neighbors. Every round
//! each node *sends* its status over all of its links, *receives* its
//! neighbors' statuses, and applies the protocol's update rule. A
//! coordinator thread performs the global "did anything change?" reduction
//! that stands in for the paper's (implicit) convergence detection.
//!
//! Channels are unbounded and FIFO, so a node that races ahead into round
//! `k + 1` cannot corrupt a slower neighbor's round `k`: the slower node
//! simply pops the older message first. Non-participating (faulty) nodes run
//! a degenerate loop that keeps re-sending their permanent initial status —
//! the stand-in for neighbors' hardware fault detection.
//!
//! ## Chaos mode
//!
//! [`run_chaos`](self::run_chaos) applies a [`ChaosConfig`] to every send.
//! A message that is dropped, discarded by a down window, or reordered past
//! its round boundary is replaced on the wire by an explicit `Lost` marker
//! — the lockstep rendering of the receiver's delivery timeout — so the
//! receiver never blocks; it proceeds on its last successfully delivered
//! knowledge and reports "not quiet yet" to the coordinator. Because
//! lockstep senders re-announce every round, the next clean delivery is the
//! retransmission that repairs the link. A round with no state changes and
//! no lost deliveries means every receiver just stepped on fully current
//! knowledge, which is exactly the reliable executor's quiescence test —
//! so chaos runs of monotone confluent protocols converge to the same
//! fixpoint. Duplicates are delivered twice in the same round; the stale
//! copy is discarded by the receiver's round tag. Mid-run crash plans are
//! a DES-only feature (see [`crate::run_chaos`]).

use crate::chaos::{ChaosConfig, ChaosStats};
use crate::engine::{gather, messages_per_round, RunOutcome};
use crate::{LockstepProtocol, RunTrace};
use crossbeam::channel::{unbounded, Receiver, Sender};
use ocp_mesh::{Coord, Grid, Neighborhood, DIRECTIONS};

/// One lockstep wire message, tagged with the sender's round so receivers
/// can discard stale duplicates deterministically.
struct Msg<S> {
    round: u32,
    body: Body<S>,
}

enum Body<S> {
    /// The sender's status arrived intact.
    Delivered(S),
    /// The chaos layer destroyed the status in transit; the receiver's
    /// timeout fires instead (it keeps its stale knowledge this round).
    Lost,
}

pub(crate) fn run<P: LockstepProtocol>(protocol: &P, max_rounds: u32) -> RunOutcome<P::State> {
    run_inner(protocol, max_rounds, None)
}

/// Actor execution with per-link chaos. Reordering is rendered as a
/// one-round late arrival (the receiver proceeds on stale knowledge, like a
/// loss, and the next round's re-announcement repairs it).
pub(crate) fn run_chaos<P: LockstepProtocol>(
    protocol: &P,
    max_rounds: u32,
    chaos: &ChaosConfig,
) -> RunOutcome<P::State> {
    run_inner(protocol, max_rounds, Some(chaos))
}

fn run_inner<P: LockstepProtocol>(
    protocol: &P,
    max_rounds: u32,
    chaos: Option<&ChaosConfig>,
) -> RunOutcome<P::State> {
    let topology = protocol.topology();
    let n = topology.len();

    // Per-directed-link channels. If node u's neighbor in direction d is v,
    // then u's outbox for d feeds v's inbox for d.opposite().
    type Links<T> = Vec<[Option<T>; 4]>;
    let mut outboxes: Links<Sender<Msg<P::State>>> =
        (0..n).map(|_| [None, None, None, None]).collect();
    let mut inboxes: Links<Receiver<Msg<P::State>>> =
        (0..n).map(|_| [None, None, None, None]).collect();
    for c in topology.coords() {
        let ci = topology.index_of(c);
        for dir in DIRECTIONS {
            if let Some(v) = topology.neighbor(c, dir).coord() {
                let (tx, rx) = unbounded();
                outboxes[ci][dir.index()] = Some(tx);
                inboxes[topology.index_of(v)][dir.opposite().index()] = Some(rx);
            }
        }
    }

    let (report_tx, report_rx) = unbounded::<bool>();
    let mut control_txs = Vec::with_capacity(n);
    let (result_tx, result_rx) = unbounded::<(Coord, P::State, ChaosStats)>();

    let mut changes_per_round: Vec<u32> = Vec::new();
    let mut converged = false;

    std::thread::scope(|scope| {
        for c in topology.coords() {
            let ci = topology.index_of(c);
            let outbox = std::mem::take(&mut outboxes[ci]);
            let inbox = std::mem::take(&mut inboxes[ci]);
            let report = report_tx.clone();
            let (ctl_tx, ctl_rx) = unbounded::<bool>();
            control_txs.push(ctl_tx);
            let results = result_tx.clone();
            scope.spawn(move || {
                node_worker(
                    protocol, c, ci as u64, chaos, outbox, inbox, report, ctl_rx, results,
                )
            });
        }

        // Coordinator: count activity flags (a state change OR a lost
        // delivery keeps the machine running), decide, broadcast.
        loop {
            let mut active = 0u32;
            for _ in 0..n {
                if report_rx.recv().expect("node died before reporting") {
                    active += 1;
                }
            }
            changes_per_round.push(active);
            let go = active > 0 && (changes_per_round.len() as u32) < max_rounds;
            if active == 0 {
                converged = true;
            }
            for tx in &control_txs {
                tx.send(go).expect("node died before control");
            }
            if !go {
                break;
            }
        }
    });
    drop(result_tx);

    let mut buffer: Vec<Option<P::State>> = vec![None; n];
    let mut stats = ChaosStats::default();
    while let Ok((c, s, node_stats)) = result_rx.recv() {
        buffer[topology.index_of(c)] = Some(s);
        stats.merge(&node_stats);
    }
    let states = Grid::from_fn(topology, |c| {
        buffer[topology.index_of(c)].expect("node did not report final state")
    });

    let messages_sent = messages_per_round(protocol) * changes_per_round.len() as u64;
    let mut trace = RunTrace::new(changes_per_round, messages_sent, converged);
    trace.chaos = stats;
    RunOutcome { states, trace }
}

/// Per-node deterministic anomaly sampler (xorshift over a per-node seed,
/// mirroring the DES executor's generator).
struct NodeRng(u64);

impl NodeRng {
    fn new(seed: u64) -> Self {
        NodeRng(seed.max(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        ((self.next() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

#[allow(clippy::too_many_arguments)]
fn node_worker<P: LockstepProtocol>(
    protocol: &P,
    c: Coord,
    node_index: u64,
    chaos: Option<&ChaosConfig>,
    outbox: [Option<Sender<Msg<P::State>>>; 4],
    inbox: [Option<Receiver<Msg<P::State>>>; 4],
    report: Sender<bool>,
    control: Receiver<bool>,
    results: Sender<(Coord, P::State, ChaosStats)>,
) {
    let mut state = protocol.initial(c);
    let participates = protocol.participates(c);
    let hood = Neighborhood::of(protocol.topology(), c);
    let mut rng = NodeRng::new(chaos.map_or(1, |cfg| {
        cfg.seed ^ node_index.wrapping_mul(0x9E37_79B9_7F4A_7C15)
    }));
    let mut stats = ChaosStats::default();
    // Last successfully delivered knowledge per inbox direction,
    // initialized to the neighbors' initial states (round-0 knowledge:
    // local fault detection, as in the DES executor).
    let mut known: [Option<P::State>; 4] = [None; 4];
    for (dir, nb) in hood.iter() {
        if let Some(nc) = nb.coord() {
            known[dir.index()] = Some(protocol.initial(nc));
        }
    }
    // Whether the last send on each out-link was destroyed (so the next
    // clean delivery counts as the retransmission that repairs it).
    let mut lost_last = [false; 4];
    // What the receiver on each out-link last successfully received from
    // us — the sender-side view that lets us tell a *harmful* loss (the
    // receiver is now stale) from a harmless one (the destroyed message
    // carried nothing new). Starts at our initial state, which is exactly
    // the receivers' round-0 knowledge.
    let mut receiver_known = [state; 4];

    let mut round: u32 = 0;
    loop {
        // Send my status over every live link, through the chaos layer.
        // Only losses that leave a receiver stale block quiescence; without
        // this distinction a large lossy machine would almost never see a
        // globally clean round and could not terminate.
        let mut harmful_loss = false;
        for dir in DIRECTIONS {
            let di = dir.index();
            let Some(tx) = &outbox[di] else { continue };
            let body = match chaos {
                None => Body::Delivered(state),
                Some(cfg) => {
                    let model = cfg.link(c, dir);
                    if model.is_down(round as u64) {
                        stats.link_down_discards += 1;
                        Body::Lost
                    } else if model.drop > 0.0 && rng.chance(model.drop) {
                        stats.dropped += 1;
                        Body::Lost
                    } else if model.reorder > 0.0 && rng.chance(model.reorder) {
                        // Arrives after the round boundary: effectively a
                        // one-round-late delivery the receiver cannot use.
                        stats.reordered += 1;
                        Body::Lost
                    } else {
                        if lost_last[di] {
                            stats.retransmissions += 1;
                        }
                        if model.duplicate > 0.0 && rng.chance(model.duplicate) {
                            stats.duplicated += 1;
                            tx.send(Msg {
                                round,
                                body: Body::Delivered(state),
                            })
                            .expect("neighbor died");
                        }
                        Body::Delivered(state)
                    }
                }
            };
            if matches!(body, Body::Lost) {
                lost_last[di] = true;
                if receiver_known[di] != state {
                    harmful_loss = true;
                }
            } else {
                lost_last[di] = false;
                receiver_known[di] = state;
            }
            tx.send(Msg { round, body }).expect("neighbor died");
        }

        // Collect neighbor statuses; a Lost marker leaves the stale
        // knowledge in place (the sender flags the harm, if any).
        for (i, rx) in inbox.iter().enumerate() {
            let Some(rx) = rx else { continue };
            // Discard leftovers of earlier rounds (stale duplicates).
            let msg = loop {
                let m = rx.recv().expect("neighbor died");
                if m.round == round {
                    break m;
                }
                debug_assert!(m.round < round, "message from the future");
            };
            if let Body::Delivered(s) = msg.body {
                known[i] = Some(s);
            }
        }

        let mut changed = false;
        if participates {
            let ns = gather(protocol, c, |nc| {
                // Find which direction nc sits in; channels are per-direction.
                let dir = hood
                    .iter()
                    .find(|(_, nb)| nb.coord() == Some(nc))
                    .map(|(d, _)| d)
                    .expect("lookup of non-neighbor");
                known[dir.index()].expect("no knowledge of live neighbor")
            });
            let next = protocol.step(c, state, &ns);
            changed = next != state;
            state = next;
        }
        report
            .send(changed || harmful_loss)
            .expect("coordinator died");
        if !control.recv().expect("coordinator died") {
            break;
        }
        round += 1;
    }
    results.send((c, state, stats)).expect("collector died");
}
