//! Actor executor: one thread per node, one channel per link.
//!
//! This is the most literal rendering of the paper's model — each node is an
//! independent process that can only talk to its mesh neighbors. Every round
//! each node *sends* its status over all of its links, *receives* its
//! neighbors' statuses, and applies the protocol's update rule. A
//! coordinator thread performs the global "did anything change?" reduction
//! that stands in for the paper's (implicit) convergence detection.
//!
//! Channels are unbounded and FIFO, so a node that races ahead into round
//! `k + 1` cannot corrupt a slower neighbor's round `k`: the slower node
//! simply pops the older message first. Non-participating (faulty) nodes run
//! a degenerate loop that keeps re-sending their permanent initial status —
//! the stand-in for neighbors' hardware fault detection.

use crate::engine::{gather, messages_per_round, RunOutcome};
use crate::{LockstepProtocol, RunTrace};
use crossbeam::channel::{unbounded, Receiver, Sender};
use ocp_mesh::{Coord, Grid, Neighborhood, DIRECTIONS};

pub(crate) fn run<P: LockstepProtocol>(protocol: &P, max_rounds: u32) -> RunOutcome<P::State> {
    let topology = protocol.topology();
    let n = topology.len();

    // Per-directed-link channels. If node u's neighbor in direction d is v,
    // then u's outbox for d feeds v's inbox for d.opposite().
    let mut outboxes: Vec<[Option<Sender<P::State>>; 4]> =
        (0..n).map(|_| [None, None, None, None]).collect();
    let mut inboxes: Vec<[Option<Receiver<P::State>>; 4]> =
        (0..n).map(|_| [None, None, None, None]).collect();
    for c in topology.coords() {
        let ci = topology.index_of(c);
        for dir in DIRECTIONS {
            if let Some(v) = topology.neighbor(c, dir).coord() {
                let (tx, rx) = unbounded();
                outboxes[ci][dir.index()] = Some(tx);
                inboxes[topology.index_of(v)][dir.opposite().index()] = Some(rx);
            }
        }
    }

    let (report_tx, report_rx) = unbounded::<bool>();
    let mut control_txs = Vec::with_capacity(n);
    let (result_tx, result_rx) = unbounded::<(Coord, P::State)>();

    let mut changes_per_round: Vec<u32> = Vec::new();
    let mut converged = false;

    std::thread::scope(|scope| {
        for c in topology.coords() {
            let ci = topology.index_of(c);
            let outbox = std::mem::take(&mut outboxes[ci]);
            let inbox = std::mem::take(&mut inboxes[ci]);
            let report = report_tx.clone();
            let (ctl_tx, ctl_rx) = unbounded::<bool>();
            control_txs.push(ctl_tx);
            let results = result_tx.clone();
            scope.spawn(move || node_worker(protocol, c, outbox, inbox, report, ctl_rx, results));
        }

        // Coordinator: count changed-flags, decide, broadcast.
        loop {
            let mut changed = 0u32;
            for _ in 0..n {
                if report_rx.recv().expect("node died before reporting") {
                    changed += 1;
                }
            }
            changes_per_round.push(changed);
            let go = changed > 0 && (changes_per_round.len() as u32) < max_rounds;
            if changed == 0 {
                converged = true;
            }
            for tx in &control_txs {
                tx.send(go).expect("node died before control");
            }
            if !go {
                break;
            }
        }
    });
    drop(result_tx);

    let mut buffer: Vec<Option<P::State>> = vec![None; n];
    while let Ok((c, s)) = result_rx.recv() {
        buffer[topology.index_of(c)] = Some(s);
    }
    let states = Grid::from_fn(topology, |c| {
        buffer[topology.index_of(c)].expect("node did not report final state")
    });

    let messages_sent = messages_per_round(protocol) * changes_per_round.len() as u64;
    RunOutcome {
        states,
        trace: RunTrace {
            changes_per_round,
            messages_sent,
            converged,
        },
    }
}

fn node_worker<P: LockstepProtocol>(
    protocol: &P,
    c: Coord,
    outbox: [Option<Sender<P::State>>; 4],
    inbox: [Option<Receiver<P::State>>; 4],
    report: Sender<bool>,
    control: Receiver<bool>,
    results: Sender<(Coord, P::State)>,
) {
    let mut state = protocol.initial(c);
    let participates = protocol.participates(c);
    let hood = Neighborhood::of(protocol.topology(), c);
    loop {
        // Send my status over every live link.
        for tx in outbox.iter().flatten() {
            tx.send(state).expect("neighbor died");
        }
        // Collect neighbor statuses (ghosts resolved by `gather` through the
        // received-state table).
        let mut received = [None; 4];
        for (i, rx) in inbox.iter().enumerate() {
            if let Some(rx) = rx {
                received[i] = Some(rx.recv().expect("neighbor died"));
            }
        }
        let mut changed = false;
        if participates {
            let ns = gather(protocol, c, |nc| {
                // Find which direction nc sits in; channels are per-direction.
                let dir = hood
                    .iter()
                    .find(|(_, nb)| nb.coord() == Some(nc))
                    .map(|(d, _)| d)
                    .expect("lookup of non-neighbor");
                received[dir.index()].expect("no message from live neighbor")
            });
            let next = protocol.step(c, state, &ns);
            changed = next != state;
            state = next;
        }
        report.send(changed).expect("coordinator died");
        if !control.recv().expect("coordinator died") {
            break;
        }
    }
    results.send((c, state)).expect("collector died");
}
