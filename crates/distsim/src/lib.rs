//! # ocp-distsim
//!
//! A distributed **synchronous lock-step** simulation engine for
//! neighbor-exchange protocols on 2-D meshes and tori.
//!
//! The paper's algorithms (Section 3) are phrased as iterative protocols:
//!
//! > *"each node exchanges its status with its neighbors and changes its
//! > status based on the collected neighbors' status … each iterative
//! > algorithm is assumed to be synchronous and each round of exchange and
//! > update is done in a lock-step mode … until there is no status change."*
//!
//! A protocol is described once, as a [`LockstepProtocol`] — per-node initial
//! state, the ghost-node state for mesh boundaries, and a transition function
//! from the four collected neighbor states. The engine then runs it to
//! quiescence on one of four interchangeable executors:
//!
//! * [`Executor::Sequential`] — deterministic double-buffered reference
//!   executor; the semantics every other executor must reproduce.
//! * [`Executor::Frontier`] — dirty-set worklist scheduling: only nodes
//!   with a changed neighborhood are re-stepped each round (protocols can
//!   seed round 1 via [`LockstepProtocol::initial_frontier`]). Identical
//!   states and traces to `Sequential`, much faster once activity
//!   localizes around fault clusters.
//! * [`Executor::Sharded`] — real threads: the mesh is decomposed into
//!   horizontal strips, one thread per strip, and each round the strips
//!   exchange *halo rows* over crossbeam channels before stepping their
//!   nodes; a coordinator reduces per-strip change counts to detect global
//!   quiescence. This is the classic HPC domain-decomposition rendering of
//!   the protocol.
//! * [`Executor::Actor`] — the most literal rendering of the paper: **one
//!   thread per node**, with a channel per link; every round each node sends
//!   its status to its neighbors, receives theirs, and steps. Practical for
//!   small meshes (tests, demos); the executor-equivalence tests pin all
//!   three to identical results.
//!
//! Faulty nodes "just cease to work" (Section 2): they are modeled as
//! non-participating nodes whose state never leaves its initial value —
//! their neighbors observing that permanent value stands in for hardware
//! fault detection.
//!
//! The engine reports a [`RunTrace`]: rounds to convergence (the metric of
//! the paper's Figure 5 (a)/(b)), per-round change counts, message totals,
//! and — when a chaos layer is active — the injected-anomaly counters.
//!
//! ## Chaos layer
//!
//! The [`chaos`] module adds a seeded adversary: per-link drop, duplicate
//! and reorder probabilities plus link-down windows ([`ChaosConfig`]) and
//! mid-run node crashes ([`CrashPlan`]). [`run_chaos`] is the event-driven
//! executor under that adversary; [`run_actor_chaos`] is the lockstep actor
//! rendering. Both rely on the protocols being monotone confluent joins to
//! re-converge to the reliable fixpoint, with a heartbeat/re-announcement
//! discipline repairing lost knowledge. The [`try_run`] family turns a run
//! that stalls at its cap into an explicit [`ConvergenceError`] with
//! diagnostics instead of a silently ignorable flag.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod actor;
pub mod asynchronous;
pub mod chaos;
mod engine;
mod error;
mod frontier;
mod protocol;
mod sequential;
mod sharded;
mod telemetry;
mod trace;

pub use asynchronous::{run_async, run_chaos, try_run_async, try_run_chaos, AsyncOutcome};
pub use chaos::{ChaosConfig, ChaosStats, CrashPlan, LinkModel};
pub use engine::{run, run_actor_chaos, try_run, try_run_actor_chaos, Executor, RunOutcome};
pub use error::{ConvergenceError, ConvergenceErrorKind};
pub use protocol::{LockstepProtocol, NeighborStates};
pub use trace::RunTrace;
