//! Execution traces: convergence rounds, message accounting and chaos
//! counters.

use crate::chaos::ChaosStats;
use serde::{Deserialize, Serialize};

/// What happened during one protocol run.
///
/// The paper's Figure 5 (a)/(b) reports "the averages of the maximum numbers
/// of rounds needed to determine" faulty blocks and disabled regions —
/// [`RunTrace::rounds`] is exactly that per-run number.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunTrace {
    /// Number of nodes that changed state in each executed round, including
    /// the final all-quiet round that detects quiescence (its entry is 0)
    /// unless the round cap was hit.
    pub changes_per_round: Vec<u32>,
    /// Total point-to-point status messages sent (one per live node per real
    /// neighbor per executed round — ghost links carry nothing).
    pub messages_sent: u64,
    /// True if the run reached a round with no changes; false if it stopped
    /// at the round cap.
    pub converged: bool,
    /// Injected-anomaly counters when a chaos layer was active; all zeros
    /// for a reliable run, so traces stay comparable across executors.
    pub chaos: ChaosStats,
    /// Engine annotations surfaced to the caller (e.g. an executor
    /// fallback). Empty in the common case.
    pub notes: Vec<String>,
}

impl RunTrace {
    /// A trace with no chaos activity and no notes — what every reliable
    /// executor produces.
    pub fn new(changes_per_round: Vec<u32>, messages_sent: u64, converged: bool) -> Self {
        RunTrace {
            changes_per_round,
            messages_sent,
            converged,
            chaos: ChaosStats::default(),
            notes: Vec::new(),
        }
    }

    /// Rounds *needed*: exchange rounds in which at least one node changed
    /// state. A fault-free machine needs 0 rounds. (The trailing quiet round
    /// only confirms convergence; the paper's `max d(B)` bound counts the
    /// productive rounds.)
    pub fn rounds(&self) -> u32 {
        // Protocols are monotone, so changes occupy a prefix; count it
        // defensively anyway.
        self.changes_per_round.iter().filter(|&&c| c > 0).count() as u32
    }

    /// Rounds executed, including the final quiet round.
    pub fn rounds_executed(&self) -> u32 {
        self.changes_per_round.len() as u32
    }

    /// Total state changes across the run.
    pub fn total_changes(&self) -> u64 {
        self.changes_per_round.iter().map(|&c| c as u64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rounds_counts_productive_rounds_only() {
        let t = RunTrace::new(vec![10, 4, 1, 0], 160, true);
        assert_eq!(t.rounds(), 3);
        assert_eq!(t.rounds_executed(), 4);
        assert_eq!(t.total_changes(), 15);
    }

    #[test]
    fn quiet_from_start() {
        let t = RunTrace::new(vec![0], 40, true);
        assert_eq!(t.rounds(), 0);
        assert_eq!(t.rounds_executed(), 1);
        assert_eq!(t.chaos, ChaosStats::default());
        assert!(t.notes.is_empty());
    }
}
