//! Deterministic double-buffered reference executor.

use crate::engine::{gather, messages_per_round, RunOutcome};
use crate::{LockstepProtocol, RunTrace};
use ocp_mesh::Grid;

/// Runs the protocol with a double-buffered sweep per round.
pub(crate) fn run<P: LockstepProtocol>(protocol: &P, max_rounds: u32) -> RunOutcome<P::State> {
    let topology = protocol.topology();
    let mut current = Grid::from_fn(topology, |c| protocol.initial(c));
    let per_round = messages_per_round(protocol);
    // Hoisted out of the per-round closure: for the common all-participate
    // protocols the per-cell check below short-circuits on this flag
    // instead of paying a dynamic `participates` call per cell per round.
    let all_participate = topology.coords().all(|c| protocol.participates(c));

    // One handle lookup per run; per-round cost when observability is on
    // is two `Instant::now` calls and one lock-free histogram record.
    let round_obs = ocp_obs::enabled().then(|| {
        ocp_obs::global().histogram(
            "ocp_executor_round_duration_ns",
            "Wall-clock duration of one lockstep round, nanoseconds.",
            &[("executor", "sequential")],
        )
    });

    let mut changes_per_round = Vec::new();
    let mut messages_sent = 0u64;
    let mut converged = false;

    while (changes_per_round.len() as u32) < max_rounds {
        let round_start = round_obs.as_ref().map(|_| std::time::Instant::now());
        let mut changed = 0u32;
        let next = Grid::from_fn(topology, |c| {
            let state = *current.get(c);
            if !all_participate && !protocol.participates(c) {
                return state;
            }
            let neighbors = gather(protocol, c, |n| *current.get(n));
            let next_state = protocol.step(c, state, &neighbors);
            if next_state != state {
                changed += 1;
            }
            next_state
        });
        messages_sent += per_round;
        changes_per_round.push(changed);
        current = next;
        if let (Some(h), Some(start)) = (&round_obs, round_start) {
            h.record(crate::telemetry::as_nanos(start.elapsed()));
        }
        if changed == 0 {
            converged = true;
            break;
        }
    }

    RunOutcome {
        states: current,
        trace: RunTrace::new(changes_per_round, messages_sent, converged),
    }
}
