//! The convergence watchdog: explicit errors for runs that stall.
//!
//! Historically a run that hit its round or event cap reported
//! `converged: false` and nothing else — silent enough that several callers
//! simply ignored it and published a non-fixpoint grid as if it were the
//! answer. [`ConvergenceError`] turns that condition into a value that must
//! be handled, carrying enough diagnostics (cap, progress at the cap,
//! chaos counters) to tell a protocol bug from an under-provisioned cap or
//! a link that can never deliver.

use crate::chaos::ChaosStats;
use crate::{AsyncOutcome, RunOutcome};
use std::fmt;

/// A protocol run stopped at its cap instead of reaching quiescence.
#[derive(Clone, Debug, PartialEq)]
pub struct ConvergenceError {
    /// Human-readable description of which computation stalled
    /// (e.g. `"phase-1 safety labeling"`). Empty if the caller added none.
    pub label: String,
    /// What stopped the run, with diagnostics.
    pub kind: ConvergenceErrorKind,
}

/// The cap a stalled run hit.
#[derive(Clone, Debug, PartialEq)]
pub enum ConvergenceErrorKind {
    /// A lockstep run executed `cap` rounds without a quiet round.
    RoundCap {
        /// The configured round cap.
        cap: u32,
        /// Nodes still changing in the last executed round.
        last_round_changes: u32,
        /// Total state changes across the run.
        total_changes: u64,
        /// Chaos counters at the cap (all zeros for a reliable run).
        chaos: ChaosStats,
    },
    /// An event-driven run processed `cap` events without draining its
    /// queue.
    EventCap {
        /// The configured event cap.
        cap: u64,
        /// Messages delivered before the cap.
        messages_delivered: u64,
        /// Virtual time of the last processed event.
        virtual_time: u64,
        /// Chaos counters at the cap (all zeros for a reliable run).
        chaos: ChaosStats,
    },
}

impl ConvergenceError {
    /// Attaches (or replaces) the description of the stalled computation.
    pub fn with_label(mut self, label: impl Into<String>) -> Self {
        self.label = label.into();
        self
    }

    /// Builds the error from a lockstep outcome known not to have
    /// converged.
    pub(crate) fn from_round_cap<S>(outcome: &RunOutcome<S>, cap: u32) -> Self {
        Self::round_cap_from_trace(cap, &outcome.trace)
    }

    /// Builds a round-cap error from an executed [`RunTrace`] — for engines
    /// outside this crate that honor the same lockstep round semantics
    /// (e.g. the bit-packed labeling kernels in `ocp-core`).
    pub fn round_cap_from_trace(cap: u32, trace: &crate::RunTrace) -> Self {
        ConvergenceError {
            label: String::new(),
            kind: ConvergenceErrorKind::RoundCap {
                cap,
                last_round_changes: trace.changes_per_round.last().copied().unwrap_or(0),
                total_changes: trace.total_changes(),
                chaos: trace.chaos,
            },
        }
    }

    /// Builds the error from an event-driven outcome known not to have
    /// converged.
    pub(crate) fn from_event_cap<S>(outcome: &AsyncOutcome<S>, cap: u64) -> Self {
        ConvergenceError {
            label: String::new(),
            kind: ConvergenceErrorKind::EventCap {
                cap,
                messages_delivered: outcome.messages_delivered,
                virtual_time: outcome.virtual_time,
                chaos: outcome.chaos,
            },
        }
    }
}

impl fmt::Display for ConvergenceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let what = if self.label.is_empty() {
            "protocol run"
        } else {
            self.label.as_str()
        };
        match &self.kind {
            ConvergenceErrorKind::RoundCap {
                cap,
                last_round_changes,
                total_changes,
                chaos,
            } => {
                write!(
                    f,
                    "{what} did not converge within {cap} rounds \
                     ({last_round_changes} nodes still changing in the last round, \
                     {total_changes} changes total"
                )?;
                if chaos != &ChaosStats::default() {
                    write!(
                        f,
                        "; chaos: {} dropped, {} duplicated, {} reordered, \
                         {} retransmissions, {} down-discards",
                        chaos.dropped,
                        chaos.duplicated,
                        chaos.reordered,
                        chaos.retransmissions,
                        chaos.link_down_discards
                    )?;
                }
                write!(
                    f,
                    ") — raise the round cap or check the protocol for oscillation"
                )
            }
            ConvergenceErrorKind::EventCap {
                cap,
                messages_delivered,
                virtual_time,
                chaos,
            } => {
                write!(
                    f,
                    "{what} did not quiesce within {cap} events \
                     ({messages_delivered} messages delivered, virtual time {virtual_time}"
                )?;
                if chaos != &ChaosStats::default() {
                    write!(
                        f,
                        "; chaos: {} dropped, {} duplicated, {} reordered, \
                         {} retransmissions, {} down-discards",
                        chaos.dropped,
                        chaos.duplicated,
                        chaos.reordered,
                        chaos.retransmissions,
                        chaos.link_down_discards
                    )?;
                }
                write!(
                    f,
                    ") — raise the event cap, or check for a link that can never deliver \
                     (drop 1.0 / unbounded down window)"
                )
            }
        }
    }
}

impl std::error::Error for ConvergenceError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run, Executor, LockstepProtocol, NeighborStates};
    use ocp_mesh::{Coord, Topology};

    /// Oscillates forever: never converges under any cap.
    struct Blinker(Topology);

    impl LockstepProtocol for Blinker {
        type State = bool;
        fn topology(&self) -> Topology {
            self.0
        }
        fn initial(&self, c: Coord) -> bool {
            (c.x + c.y) % 2 == 0
        }
        fn ghost(&self) -> bool {
            false
        }
        fn participates(&self, _c: Coord) -> bool {
            true
        }
        fn step(&self, _c: Coord, cur: bool, _n: &NeighborStates<bool>) -> bool {
            !cur
        }
    }

    #[test]
    fn round_cap_error_carries_diagnostics() {
        let p = Blinker(Topology::mesh(4, 4));
        let out = run(&p, Executor::Sequential, 7);
        assert!(!out.trace.converged);
        let err = ConvergenceError::from_round_cap(&out, 7).with_label("blinker test");
        match &err.kind {
            ConvergenceErrorKind::RoundCap {
                cap,
                last_round_changes,
                ..
            } => {
                assert_eq!(*cap, 7);
                assert_eq!(*last_round_changes, 16);
            }
            other => panic!("wrong kind: {other:?}"),
        }
        let text = err.to_string();
        assert!(text.contains("blinker test"), "{text}");
        assert!(text.contains("7 rounds"), "{text}");
    }
}
