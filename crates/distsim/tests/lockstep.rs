//! Engine tests against two reference protocols with analytically known
//! behavior: max-flooding and BFS distance fronts.

use ocp_distsim::{run, Executor, LockstepProtocol, NeighborStates, RunOutcome};
use ocp_mesh::{Coord, Topology};

/// Max-flood: every node starts with a value; each round it adopts the max
/// of itself and its neighbors. Converges to the global max everywhere in
/// exactly ecc(argmax) rounds (eccentricity of the seed).
struct MaxFlood {
    topology: Topology,
    seed: Coord,
}

impl LockstepProtocol for MaxFlood {
    type State = u32;

    fn topology(&self) -> Topology {
        self.topology
    }

    fn initial(&self, c: Coord) -> u32 {
        if c == self.seed {
            1_000_000
        } else {
            0
        }
    }

    fn ghost(&self) -> u32 {
        0
    }

    fn participates(&self, _c: Coord) -> bool {
        true
    }

    fn step(&self, _c: Coord, current: u32, neighbors: &NeighborStates<u32>) -> u32 {
        neighbors
            .iter()
            .map(|(_, s)| s)
            .fold(current, |a, b| a.max(b))
    }
}

/// A protocol that never converges (parity flip) — exercises the round cap.
struct Blinker {
    topology: Topology,
}

impl LockstepProtocol for Blinker {
    type State = bool;

    fn topology(&self) -> Topology {
        self.topology
    }

    fn initial(&self, _c: Coord) -> bool {
        false
    }

    fn ghost(&self) -> bool {
        false
    }

    fn participates(&self, _c: Coord) -> bool {
        true
    }

    fn step(&self, _c: Coord, current: bool, _n: &NeighborStates<bool>) -> bool {
        !current
    }
}

fn eccentricity(t: Topology, seed: Coord) -> u32 {
    t.coords().map(|c| t.distance(seed, c)).max().unwrap()
}

#[test]
fn max_flood_converges_in_eccentricity_rounds_mesh() {
    let t = Topology::mesh(9, 7);
    let seed = Coord::new(2, 3);
    let p = MaxFlood { topology: t, seed };
    let out = run(&p, Executor::Sequential, 100);
    assert!(out.trace.converged);
    assert_eq!(out.trace.rounds(), eccentricity(t, seed));
    assert!(out.states.iter().all(|(_, &s)| s == 1_000_000));
}

#[test]
fn max_flood_converges_faster_on_torus() {
    let seed = Coord::new(0, 0);
    let mesh = MaxFlood {
        topology: Topology::mesh(10, 10),
        seed,
    };
    let torus = MaxFlood {
        topology: Topology::torus(10, 10),
        seed,
    };
    let rm = run(&mesh, Executor::Sequential, 100).trace.rounds();
    let rt = run(&torus, Executor::Sequential, 100).trace.rounds();
    assert_eq!(rm, 18);
    assert_eq!(rt, 10); // wraparound halves the distance
}

#[test]
fn executors_agree_on_mesh_and_torus() {
    for t in [Topology::mesh(8, 6), Topology::torus(8, 6)] {
        let p = MaxFlood {
            topology: t,
            seed: Coord::new(7, 5),
        };
        let seq = run(&p, Executor::Sequential, 100);
        for exec in [
            Executor::Sharded { threads: 2 },
            Executor::Sharded { threads: 3 },
            Executor::Sharded { threads: 64 }, // clamped to height
            Executor::Actor,
        ] {
            let out: RunOutcome<u32> = run(&p, exec, 100);
            assert_eq!(out.trace, seq.trace, "{exec:?} trace mismatch on {t:?}");
            assert!(out
                .states
                .iter()
                .zip(seq.states.iter())
                .all(|((_, a), (_, b))| a == b));
        }
    }
}

#[test]
fn round_cap_reports_non_convergence() {
    let p = Blinker {
        topology: Topology::mesh(4, 4),
    };
    for exec in [
        Executor::Sequential,
        Executor::Sharded { threads: 2 },
        Executor::Actor,
    ] {
        let out = run(&p, exec, 5);
        assert!(!out.trace.converged, "{exec:?}");
        assert_eq!(out.trace.rounds_executed(), 5);
        assert_eq!(out.trace.rounds(), 5);
    }
}

#[test]
fn message_accounting_mesh_vs_torus() {
    // 3x3 mesh: 4 corners*2 + 4 edges*3 + 1 interior*4 = 24 directed links.
    let p = MaxFlood {
        topology: Topology::mesh(3, 3),
        seed: Coord::new(1, 1),
    };
    let out = run(&p, Executor::Sequential, 100);
    // Eccentricity of the center is 2: 2 productive rounds + 1 quiet.
    assert_eq!(out.trace.rounds_executed(), 3);
    assert_eq!(out.trace.messages_sent, 72);

    // 3x3 torus: every node has 4 live links -> 36 per round.
    let p = MaxFlood {
        topology: Topology::torus(3, 3),
        seed: Coord::new(1, 1),
    };
    let out = run(&p, Executor::Sequential, 100);
    assert_eq!(
        out.trace.messages_sent,
        36 * out.trace.rounds_executed() as u64
    );
}

#[test]
fn single_row_and_column_topologies() {
    for t in [
        Topology::mesh(7, 1),
        Topology::mesh(1, 7),
        Topology::torus(7, 1),
    ] {
        let p = MaxFlood {
            topology: t,
            seed: Coord::new(0, 0),
        };
        for exec in [
            Executor::Sequential,
            Executor::Sharded { threads: 4 },
            Executor::Actor,
        ] {
            let out = run(&p, exec, 100);
            assert!(out.trace.converged, "{exec:?} on {t:?}");
            assert!(out.states.iter().all(|(_, &s)| s == 1_000_000));
        }
    }
}

#[test]
fn non_participating_nodes_freeze() {
    /// Flood where one node is "faulty" and never updates.
    struct Frozen {
        inner: MaxFlood,
        dead: Coord,
    }
    impl LockstepProtocol for Frozen {
        type State = u32;
        fn topology(&self) -> Topology {
            self.inner.topology
        }
        fn initial(&self, c: Coord) -> u32 {
            self.inner.initial(c)
        }
        fn ghost(&self) -> u32 {
            0
        }
        fn participates(&self, c: Coord) -> bool {
            c != self.dead
        }
        fn step(&self, c: Coord, cur: u32, n: &NeighborStates<u32>) -> u32 {
            self.inner.step(c, cur, n)
        }
    }
    let t = Topology::mesh(5, 1); // a line, easy to block
    let p = Frozen {
        inner: MaxFlood {
            topology: t,
            seed: Coord::new(0, 0),
        },
        dead: Coord::new(2, 0),
    };
    for exec in [
        Executor::Sequential,
        Executor::Sharded { threads: 2 },
        Executor::Actor,
    ] {
        let out = run(&p, exec, 100);
        assert!(out.trace.converged);
        // Flood reaches (1,0) but the dead node blocks propagation further.
        assert_eq!(*out.states.get(Coord::new(1, 0)), 1_000_000, "{exec:?}");
        assert_eq!(*out.states.get(Coord::new(2, 0)), 0, "{exec:?}");
        assert_eq!(*out.states.get(Coord::new(3, 0)), 0, "{exec:?}");
        assert_eq!(*out.states.get(Coord::new(4, 0)), 0, "{exec:?}");
    }
}

#[test]
fn zero_round_convergence_when_already_stable() {
    // All nodes share the max already.
    struct Stable(Topology);
    impl LockstepProtocol for Stable {
        type State = u8;
        fn topology(&self) -> Topology {
            self.0
        }
        fn initial(&self, _c: Coord) -> u8 {
            7
        }
        fn ghost(&self) -> u8 {
            7
        }
        fn participates(&self, _c: Coord) -> bool {
            true
        }
        fn step(&self, _c: Coord, cur: u8, n: &NeighborStates<u8>) -> u8 {
            n.iter().map(|(_, s)| s).fold(cur, |a, b| a.max(b))
        }
    }
    let out = run(&Stable(Topology::mesh(6, 6)), Executor::Sequential, 10);
    assert!(out.trace.converged);
    assert_eq!(out.trace.rounds(), 0);
    assert_eq!(out.trace.rounds_executed(), 1);
}
