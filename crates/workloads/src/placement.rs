//! Placing named shapes as fault patterns.

use ocp_geometry::shapes;
use ocp_mesh::{Coord, Topology};

/// Translates `shape` so its bounding-box minimum lands on `at`, verifying
/// every cell fits inside `topology`.
///
/// # Panics
/// Panics if any translated cell falls outside the machine.
pub fn place(topology: Topology, shape: &[Coord], at: Coord) -> Vec<Coord> {
    let placed = shapes::translate(shape.iter().copied(), at.x, at.y);
    for &c in &placed {
        assert!(
            topology.contains(c),
            "shape cell {c} outside {}x{} machine",
            topology.width(),
            topology.height()
        );
    }
    placed
}

/// Unions several placed shapes into one sorted, de-duplicated fault list.
pub fn compose(patterns: impl IntoIterator<Item = Vec<Coord>>) -> Vec<Coord> {
    let mut all: Vec<Coord> = patterns.into_iter().flatten().collect();
    all.sort();
    all.dedup();
    all
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn place_translates() {
        let t = Topology::mesh(20, 20);
        let cells = place(t, &shapes::plus_shape(1), Coord::new(5, 5));
        let r = ocp_geometry::Region::from_cells(cells);
        assert_eq!(r.bbox().unwrap().min, Coord::new(5, 5));
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn out_of_bounds_panics() {
        let t = Topology::mesh(4, 4);
        place(t, &shapes::l_shape(5, 2), Coord::new(1, 1));
    }

    #[test]
    fn compose_dedups() {
        let t = Topology::mesh(10, 10);
        let a = place(t, &shapes::rectangle(2, 2), Coord::new(1, 1));
        let b = place(t, &shapes::rectangle(2, 2), Coord::new(2, 1));
        let all = compose([a, b]);
        assert_eq!(all.len(), 6); // 4 + 4 - 2 overlap
        assert!(all.windows(2).all(|w| w[0] < w[1]));
    }
}
