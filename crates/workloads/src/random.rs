//! Uniform random fault injection — the paper's Section 5 workload.

use ocp_mesh::{Coord, Topology};
use rand::seq::SliceRandom;
use rand::Rng;

/// Selects `f` distinct fault locations uniformly at random among the nodes
/// of `topology` (sampling without replacement), exactly as in the paper's
/// simulation study.
///
/// The result is sorted so downstream consumers are order-independent.
///
/// ```
/// use ocp_mesh::Topology;
/// use ocp_workloads::uniform_faults;
/// use rand::{rngs::SmallRng, SeedableRng};
///
/// let mut rng = SmallRng::seed_from_u64(42);
/// let faults = uniform_faults(Topology::mesh(100, 100), 50, &mut rng);
/// assert_eq!(faults.len(), 50);
/// assert!(faults.windows(2).all(|w| w[0] < w[1])); // sorted, distinct
/// ```
///
/// # Panics
/// Panics if `f` exceeds the node count.
pub fn uniform_faults<R: Rng>(topology: Topology, f: usize, rng: &mut R) -> Vec<Coord> {
    assert!(
        f <= topology.len(),
        "cannot place {f} faults on {} nodes",
        topology.len()
    );
    let mut all: Vec<Coord> = topology.coords().collect();
    all.shuffle(rng);
    all.truncate(f);
    all.sort();
    all
}

/// Selects each node independently faulty with probability `p` (Bernoulli
/// fault model) — useful for property tests where the count may float.
pub fn bernoulli_faults<R: Rng>(topology: Topology, p: f64, rng: &mut R) -> Vec<Coord> {
    assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
    topology.coords().filter(|_| rng.gen_bool(p)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn exact_count_and_distinct() {
        let t = Topology::mesh(20, 20);
        let mut rng = SmallRng::seed_from_u64(7);
        let faults = uniform_faults(t, 50, &mut rng);
        assert_eq!(faults.len(), 50);
        let mut dedup = faults.clone();
        dedup.dedup();
        assert_eq!(dedup.len(), 50);
        assert!(faults.iter().all(|&c| t.contains(c)));
    }

    #[test]
    fn deterministic_given_seed() {
        let t = Topology::mesh(16, 16);
        let a = uniform_faults(t, 30, &mut SmallRng::seed_from_u64(42));
        let b = uniform_faults(t, 30, &mut SmallRng::seed_from_u64(42));
        let c = uniform_faults(t, 30, &mut SmallRng::seed_from_u64(43));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn zero_and_full_coverage() {
        let t = Topology::mesh(4, 4);
        let mut rng = SmallRng::seed_from_u64(1);
        assert!(uniform_faults(t, 0, &mut rng).is_empty());
        let all = uniform_faults(t, 16, &mut rng);
        assert_eq!(all.len(), 16);
    }

    #[test]
    #[should_panic(expected = "cannot place")]
    fn too_many_faults_panics() {
        let t = Topology::mesh(2, 2);
        uniform_faults(t, 5, &mut SmallRng::seed_from_u64(0));
    }

    #[test]
    fn bernoulli_extremes() {
        let t = Topology::mesh(8, 8);
        let mut rng = SmallRng::seed_from_u64(3);
        assert!(bernoulli_faults(t, 0.0, &mut rng).is_empty());
        assert_eq!(bernoulli_faults(t, 1.0, &mut rng).len(), 64);
    }
}
