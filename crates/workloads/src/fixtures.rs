//! Executable fixtures of the paper's worked examples.

use ocp_mesh::{Coord, Topology};

/// A named, fixed fault configuration taken from the paper.
#[derive(Clone, Debug)]
pub struct Fixture {
    /// Short identifier (used by the `repro` binary and the fault atlas).
    pub name: &'static str,
    /// What the paper says about this configuration.
    pub description: &'static str,
    /// Machine it lives on.
    pub topology: Topology,
    /// Fault locations.
    pub faults: Vec<Coord>,
}

fn c(x: i32, y: i32) -> Coord {
    Coord::new(x, y)
}

/// Section 3's worked example: faults at (1,3), (2,1), (3,2).
///
/// Under the safe/unsafe rule (Definition 2b) one faulty block
/// `{(i,j) | i,j ∈ {1,2,3}}` forms; under the enabled/disabled rule all
/// nonfaulty nodes of the block are re-enabled and only the three faults
/// remain disabled.
pub fn sec3_example() -> Fixture {
    Fixture {
        name: "sec3",
        description:
            "Section 3 example: 3 faults -> one 3x3 faulty block, all nonfaulty nodes enabled",
        topology: Topology::mesh(6, 6),
        faults: vec![c(1, 3), c(2, 1), c(3, 2)],
    }
}

/// Figure 2(a): a faulty block whose upper-**right** 2×2 sub-block is the
/// only nonfaulty part. The monotone enabled/disabled rule re-enables the
/// whole pocket (the corner node sees two enabled neighbors outside the
/// block, then enabling cascades inward).
pub fn fig2a_corner_pocket() -> Fixture {
    let block = ocp_geometry::Rect::new(c(1, 1), c(4, 4));
    let pocket = ocp_geometry::Rect::new(c(3, 3), c(4, 4));
    Fixture {
        name: "fig2a",
        description:
            "Figure 2(a): nonfaulty pocket at the block's upper-right corner -> pocket re-enabled",
        topology: Topology::mesh(8, 8),
        faults: block.cells().filter(|&cc| !pocket.contains(cc)).collect(),
    }
}

/// Figure 2(b): the nonfaulty 2×2 pocket sits at the upper **center** of the
/// block. Each pocket node sees at most one enabled neighbor (the safe node
/// above it), so under the monotone rule the pocket stays disabled — the
/// configuration whose "double status" under a recursive definition
/// motivates Definition 3.
pub fn fig2b_center_pocket() -> Fixture {
    let block = ocp_geometry::Rect::new(c(1, 1), c(5, 4));
    let pocket = ocp_geometry::Rect::new(c(2, 3), c(3, 4));
    Fixture {
        name: "fig2b",
        description:
            "Figure 2(b): nonfaulty pocket at the block's upper center -> pocket stays disabled",
        topology: Topology::mesh(9, 8),
        faults: block.cells().filter(|&cc| !pocket.contains(cc)).collect(),
    }
}

/// A composite pattern in the spirit of Figure 1: several fault groups that
/// produce visibly different faulty blocks under Definitions 2a vs 2b, and
/// non-rectangular disabled regions. Used by the `fault_atlas` example.
pub fn atlas_pattern() -> Fixture {
    Fixture {
        name: "atlas",
        description:
            "Figure 1-style composite: diagonal chain, sparse pair, and a dense corner cluster",
        topology: Topology::mesh(14, 12),
        faults: vec![
            // Diagonal chain (merges into one block, splits into small DRs).
            c(2, 8),
            c(3, 9),
            c(4, 8),
            // Sparse pair two apart on the same row.
            c(9, 9),
            c(11, 9),
            // Dense corner cluster (stays mostly disabled).
            c(2, 2),
            c(3, 2),
            c(2, 3),
            c(3, 3),
            c(4, 3),
            c(3, 4),
            // Lone fault near the border.
            c(12, 2),
        ],
    }
}

/// All fixtures, for data-driven tests and the atlas.
pub fn all() -> Vec<Fixture> {
    vec![
        sec3_example(),
        fig2a_corner_pocket(),
        fig2b_center_pocket(),
        atlas_pattern(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_are_well_formed() {
        for fx in all() {
            assert!(!fx.faults.is_empty(), "{} has no faults", fx.name);
            for &f in &fx.faults {
                assert!(
                    fx.topology.contains(f),
                    "{}: fault {f} outside machine",
                    fx.name
                );
            }
            let mut dedup = fx.faults.clone();
            dedup.sort();
            dedup.dedup();
            assert_eq!(
                dedup.len(),
                fx.faults.len(),
                "{} has duplicate faults",
                fx.name
            );
        }
    }

    #[test]
    fn sec3_matches_paper_coordinates() {
        let fx = sec3_example();
        assert_eq!(fx.faults, vec![c(1, 3), c(2, 1), c(3, 2)]);
    }

    #[test]
    fn fig2_pockets_are_nonfaulty() {
        let a = fig2a_corner_pocket();
        for cell in [c(3, 3), c(4, 4)] {
            assert!(!a.faults.contains(&cell));
        }
        assert!(a.faults.contains(&c(1, 1)));
        let b = fig2b_center_pocket();
        for cell in [c(2, 3), c(3, 4)] {
            assert!(!b.faults.contains(&cell));
        }
        assert!(b.faults.contains(&c(5, 4)));
    }
}
