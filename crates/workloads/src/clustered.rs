//! Clustered fault injection.
//!
//! Real machine failures correlate spatially (shared power, cooling, board).
//! The paper notes its high enabled-node percentages are partly because
//! "a random distribution tends to generate a set of small faulty blocks";
//! clustered faults stress the opposite regime and feed the model-quality
//! ablation (experiment E9).

use ocp_mesh::{Coord, Topology};
use rand::Rng;

/// Places `f` faults as `clusters` random-walk clusters of roughly equal
/// size: each cluster starts at a uniform seed and grows by repeatedly
/// stepping to a random neighbor, marking every visited node faulty until
/// its share is reached.
///
/// Returns a sorted, de-duplicated list whose length is exactly `f` (the
/// walk keeps extending until enough distinct nodes are collected).
///
/// # Panics
/// Panics if `f > topology.len()` or `clusters == 0` while `f > 0`.
pub fn clustered_faults<R: Rng>(
    topology: Topology,
    f: usize,
    clusters: usize,
    rng: &mut R,
) -> Vec<Coord> {
    assert!(
        f <= topology.len(),
        "cannot place {f} faults on {} nodes",
        topology.len()
    );
    if f == 0 {
        return Vec::new();
    }
    assert!(clusters > 0, "need at least one cluster");

    let mut faulty = std::collections::BTreeSet::new();
    let per_cluster = f.div_ceil(clusters);
    'outer: for _ in 0..clusters {
        let mut cur = Coord::new(
            rng.gen_range(0..topology.width() as i32),
            rng.gen_range(0..topology.height() as i32),
        );
        let mut grown = 0usize;
        let mut attempts = 0usize;
        while grown < per_cluster {
            if faulty.insert(cur) {
                grown += 1;
                if faulty.len() == f {
                    break 'outer;
                }
            }
            attempts += 1;
            if attempts > 64 * per_cluster {
                break; // walk trapped in an already-faulty pocket; reseed
            }
            let dir = ocp_mesh::DIRECTIONS[rng.gen_range(0usize..4)];
            match topology.neighbor(cur, dir) {
                ocp_mesh::Neighbor::Node(n) => cur = n,
                ocp_mesh::Neighbor::Ghost(_) => {} // bounce off the boundary
            }
        }
    }
    // Top up from uniform if the walks saturated early.
    while faulty.len() < f {
        let c = Coord::new(
            rng.gen_range(0..topology.width() as i32),
            rng.gen_range(0..topology.height() as i32),
        );
        faulty.insert(c);
    }
    faulty.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn exact_count() {
        let t = Topology::mesh(30, 30);
        let mut rng = SmallRng::seed_from_u64(5);
        for f in [0, 1, 17, 100] {
            let faults = clustered_faults(t, f, 4, &mut rng);
            assert_eq!(faults.len(), f);
            assert!(faults.iter().all(|&c| t.contains(c)));
        }
    }

    #[test]
    fn clusters_are_tighter_than_uniform() {
        // Average nearest-neighbor distance should be smaller for clustered
        // faults than for uniform ones.
        fn mean_nn(faults: &[Coord]) -> f64 {
            let mut total = 0.0;
            for &a in faults {
                let d = faults
                    .iter()
                    .filter(|&&b| b != a)
                    .map(|&b| a.manhattan(b))
                    .min()
                    .unwrap();
                total += d as f64;
            }
            total / faults.len() as f64
        }
        let t = Topology::mesh(64, 64);
        let mut tight = 0usize;
        for seed in 0..10 {
            let clustered = clustered_faults(t, 60, 3, &mut SmallRng::seed_from_u64(seed));
            let uniform =
                crate::random::uniform_faults(t, 60, &mut SmallRng::seed_from_u64(seed + 1000));
            if mean_nn(&clustered) < mean_nn(&uniform) {
                tight += 1;
            }
        }
        assert!(tight >= 8, "clustered faults not tighter ({tight}/10)");
    }

    #[test]
    fn deterministic() {
        let t = Topology::torus(20, 20);
        let a = clustered_faults(t, 40, 2, &mut SmallRng::seed_from_u64(9));
        let b = clustered_faults(t, 40, 2, &mut SmallRng::seed_from_u64(9));
        assert_eq!(a, b);
    }

    #[test]
    fn full_saturation() {
        let t = Topology::mesh(4, 4);
        let faults = clustered_faults(t, 16, 2, &mut SmallRng::seed_from_u64(2));
        assert_eq!(faults.len(), 16);
    }
}
