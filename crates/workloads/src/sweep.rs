//! Parameter sweeps with reproducible per-trial seeds.

use ocp_mesh::{Topology, TopologyKind};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Configuration of one figure-style sweep: a machine, a list of fault
/// counts, and a number of independent trials per count.
///
/// The paper's Figure 5 uses a 100×100 mesh with `0 ≤ f ≤ 100`;
/// [`SweepConfig::paper_figure5`] reproduces that.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SweepConfig {
    /// Mesh or torus.
    pub kind: TopologyKind,
    /// Machine width.
    pub width: u32,
    /// Machine height.
    pub height: u32,
    /// Fault counts to sweep (the x axis).
    pub fault_counts: Vec<usize>,
    /// Independent trials per fault count.
    pub trials: u32,
    /// Base seed; every `(f, trial)` pair derives its own stream from it.
    pub base_seed: u64,
}

/// One cell of a sweep: a fault count, a trial index, and its RNG seed.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SweepPoint {
    /// Number of faults to inject.
    pub faults: usize,
    /// Trial index within this fault count.
    pub trial: u32,
    /// Derived seed for this point's RNG.
    pub seed: u64,
}

impl SweepConfig {
    /// The paper's Figure 5 setting: 100×100, `f ∈ {10, 20, …, 100}`.
    pub fn paper_figure5(kind: TopologyKind, trials: u32, base_seed: u64) -> Self {
        Self {
            kind,
            width: 100,
            height: 100,
            fault_counts: (1..=10).map(|i| i * 10).collect(),
            trials,
            base_seed,
        }
    }

    /// The machine being swept.
    pub fn topology(&self) -> Topology {
        Topology::new(self.kind, self.width, self.height)
    }

    /// Enumerates every `(fault count, trial)` point with its derived seed,
    /// in deterministic order.
    pub fn points(&self) -> Vec<SweepPoint> {
        let mut out = Vec::with_capacity(self.fault_counts.len() * self.trials as usize);
        for &f in &self.fault_counts {
            for trial in 0..self.trials {
                out.push(SweepPoint {
                    faults: f,
                    trial,
                    seed: derive_seed(self.base_seed, f as u64, trial as u64),
                });
            }
        }
        out
    }

    /// RNG for one sweep point.
    pub fn rng(&self, point: SweepPoint) -> SmallRng {
        SmallRng::seed_from_u64(point.seed)
    }
}

/// Mixes `(base, f, trial)` into a 64-bit seed (splitmix64-style finalizer).
fn derive_seed(base: u64, f: u64, trial: u64) -> u64 {
    let mut z = base
        .wrapping_add(f.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(trial.wrapping_mul(0xBF58_476D_1CE4_E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_sweep_shape() {
        let cfg = SweepConfig::paper_figure5(TopologyKind::Mesh, 30, 1);
        assert_eq!(
            cfg.fault_counts,
            vec![10, 20, 30, 40, 50, 60, 70, 80, 90, 100]
        );
        assert_eq!(cfg.points().len(), 300);
        assert_eq!(cfg.topology().len(), 10_000);
    }

    #[test]
    fn seeds_are_distinct_and_deterministic() {
        let cfg = SweepConfig::paper_figure5(TopologyKind::Torus, 5, 99);
        let pts = cfg.points();
        let mut seeds: Vec<u64> = pts.iter().map(|p| p.seed).collect();
        let unique_before = seeds.len();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), unique_before, "seed collision");
        assert_eq!(cfg.points(), pts, "points not deterministic");
    }

    #[test]
    fn different_base_seeds_differ() {
        let a = SweepConfig::paper_figure5(TopologyKind::Mesh, 2, 1).points();
        let b = SweepConfig::paper_figure5(TopologyKind::Mesh, 2, 2).points();
        assert_ne!(a[0].seed, b[0].seed);
    }
}
