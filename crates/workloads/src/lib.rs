//! # ocp-workloads
//!
//! Fault-pattern generators for the reproduction experiments.
//!
//! The paper's simulation study (Section 5) injects `f` faults "randomly
//! selected among nodes in the mesh" — [`random::uniform_faults`]. Beyond
//! that, this crate provides clustered and shaped fault patterns (the L/T/
//! U/H/+ regions the literature names), and executable **fixtures** of the
//! paper's worked examples (the Section 3 example, and the Figure 2
//! double-status configurations).
//!
//! All generators are deterministic given an RNG seed, so every experiment
//! in EXPERIMENTS.md can be reproduced bit-for-bit.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clustered;
pub mod fixtures;
pub mod placement;
pub mod random;
pub mod schedule;
pub mod sweep;

pub use clustered::clustered_faults;
pub use random::uniform_faults;
pub use schedule::FaultSchedule;
pub use sweep::{SweepConfig, SweepPoint};
