//! Mid-run fault schedules: nodes that crash at given virtual times while
//! the labeling protocols are (re)converging.
//!
//! The paper's maintenance story — blocks "can be easily established and
//! maintained through message exchanges among neighboring nodes" — assumes
//! faults keep arriving while the machine is in service. A
//! [`FaultSchedule`] is the workload side of that story: a deterministic,
//! time-ordered list of crash events that `ocp-core::maintenance` replays
//! through its warm-start path, and that `ocp-distsim`'s chaos executor
//! injects as mid-run crash events.

use ocp_mesh::{Coord, Topology};
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A time-ordered list of `(virtual_time, node)` crash events.
///
/// Events are sorted by time (ties broken by coordinate) and de-duplicated
/// by node — a node can only crash once, and the earliest event wins.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultSchedule {
    events: Vec<(u64, Coord)>,
}

impl FaultSchedule {
    /// Builds a schedule from arbitrary events (sorted and de-duplicated).
    pub fn new(events: impl IntoIterator<Item = (u64, Coord)>) -> Self {
        let mut events: Vec<(u64, Coord)> = events.into_iter().collect();
        events.sort_by_key(|&(t, c)| (t, c.x, c.y));
        let mut seen = std::collections::BTreeSet::new();
        events.retain(|&(_, c)| seen.insert(c));
        FaultSchedule { events }
    }

    /// `f` distinct nodes crashing at uniform times in `1..=max_time`.
    ///
    /// # Panics
    /// Panics if `f > topology.len()` or `max_time == 0` while `f > 0`.
    pub fn random<R: Rng>(topology: Topology, f: usize, max_time: u64, rng: &mut R) -> Self {
        assert!(
            f <= topology.len(),
            "cannot crash {f} of {} nodes",
            topology.len()
        );
        if f == 0 {
            return FaultSchedule { events: Vec::new() };
        }
        assert!(max_time >= 1, "need a nonempty time range");
        let all: Vec<Coord> = topology.coords().collect();
        let victims: Vec<Coord> = all.choose_multiple(rng, f).copied().collect();
        Self::new(
            victims
                .into_iter()
                .map(|c| (rng.gen_range(1..=max_time), c)),
        )
    }

    /// The sorted `(time, node)` events.
    pub fn events(&self) -> &[(u64, Coord)] {
        &self.events
    }

    /// Every node the schedule eventually crashes (sorted).
    pub fn final_faults(&self) -> Vec<Coord> {
        let mut faults: Vec<Coord> = self.events.iter().map(|&(_, c)| c).collect();
        faults.sort();
        faults
    }

    /// Events grouped by crash time, ascending — the unit the maintenance
    /// warm-start path replays (same-time crashes are one batch).
    pub fn grouped_by_time(&self) -> Vec<(u64, Vec<Coord>)> {
        let mut groups: Vec<(u64, Vec<Coord>)> = Vec::new();
        for &(t, c) in &self.events {
            match groups.last_mut() {
                Some((gt, nodes)) if *gt == t => nodes.push(c),
                _ => groups.push((t, vec![c])),
            }
        }
        groups
    }

    /// Number of crash events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if nothing ever crashes.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn c(x: i32, y: i32) -> Coord {
        Coord::new(x, y)
    }

    #[test]
    fn sorts_and_dedups_by_node() {
        let s = FaultSchedule::new([(9, c(1, 1)), (2, c(3, 3)), (5, c(1, 1))]);
        // The node crashing twice keeps its *earliest* event.
        assert_eq!(s.events(), &[(2, c(3, 3)), (5, c(1, 1))]);
        assert_eq!(s.final_faults(), vec![c(1, 1), c(3, 3)]);
    }

    #[test]
    fn grouping_batches_equal_times() {
        let s = FaultSchedule::new([(2, c(0, 0)), (2, c(1, 0)), (7, c(2, 2))]);
        let groups = s.grouped_by_time();
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0], (2, vec![c(0, 0), c(1, 0)]));
        assert_eq!(groups[1], (7, vec![c(2, 2)]));
    }

    #[test]
    fn random_is_deterministic_and_distinct() {
        let t = Topology::mesh(12, 12);
        let a = FaultSchedule::random(t, 10, 50, &mut SmallRng::seed_from_u64(4));
        let b = FaultSchedule::random(t, 10, 50, &mut SmallRng::seed_from_u64(4));
        assert_eq!(a, b);
        assert_eq!(a.len(), 10);
        assert_eq!(a.final_faults().len(), 10, "victims must be distinct");
        assert!(a.events().iter().all(|&(t, _)| (1..=50).contains(&t)));
        assert!(
            a.events().windows(2).all(|w| w[0].0 <= w[1].0),
            "sorted by time"
        );
    }

    #[test]
    fn empty_schedule() {
        let t = Topology::mesh(4, 4);
        let s = FaultSchedule::random(t, 0, 10, &mut SmallRng::seed_from_u64(1));
        assert!(s.is_empty());
        assert!(s.grouped_by_time().is_empty());
    }
}
