//! Crash-recovery chaos suite for the epoch WAL (PR 6, tentpole part d).
//!
//! Three attack surfaces, all judged against the same oracle — the
//! deterministic cold pipeline of PR 1:
//!
//! 1. a clean shutdown must recover to a **field-identical** terminal
//!    snapshot (same epoch, same fault set, same per-cell grids — checked
//!    through the FNV grid digest that also backs the certificates);
//! 2. a WAL truncated at *any* byte offset — the on-disk image of a crash
//!    mid-`write(2)` — must recover to a consistent **prefix** of the
//!    uninterrupted run, never to a mangled or reordered history;
//! 3. a WAL file copied while the writer is actively appending (a crash
//!    with no flush coordination at all) must likewise recover to a
//!    consistent prefix.

use ocp_core::prelude::*;
use ocp_mesh::{Coord, Topology};
use ocp_serve::{CertChaos, CertMode, MeshService, ServeConfig, Snapshot};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::path::PathBuf;
use std::time::Duration;

const SIDE: u32 = 12;

fn c(x: i32, y: i32) -> Coord {
    Coord::new(x, y)
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("ocp-durability-tests");
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir.join(format!("{name}-{}.wal", std::process::id()))
}

/// The same structural digest the certificates pin: topology + rule +
/// per-cell (health, safety, activation). Field equality of two snapshots
/// is equality of (epoch, digest).
fn grid_digest(snapshot: &Snapshot) -> u64 {
    outcome_digest(&snapshot.map, &snapshot.outcome)
}

/// Audit-log rows reduced to their replayable content.
type LogRow = (u64, Vec<Coord>, Vec<Coord>);

fn log_rows(service: &MeshService) -> Vec<LogRow> {
    service
        .epoch_log()
        .iter()
        .map(|r| (r.epoch, r.faults.clone(), r.repairs.clone()))
        .collect()
}

/// Runs a durable service through a deterministic fault/repair schedule,
/// quiescing after every batch, and returns the terminal (epoch, digest)
/// plus the audit log. The WAL file at `path` is left on disk.
fn run_oracle(path: &PathBuf, batches: usize) -> (u64, u64, Vec<LogRow>) {
    let service = MeshService::start_durable(
        Topology::mesh(SIDE, SIDE),
        [c(2, 2), c(3, 2)],
        ServeConfig::default(),
        path,
    )
    .expect("durable service starts");
    let handle = service.handle();
    let mut rng = SmallRng::seed_from_u64(0x0c9);
    let mut live_faults = vec![c(2, 2), c(3, 2)];
    let mut injected = 0;
    while injected < batches {
        // Mostly faults, occasionally a repair of an earlier fault, so the
        // replay exercises both the warm and the cold (repair) apply path.
        if injected % 4 == 3 && live_faults.len() > 1 {
            let node = live_faults.remove(rng.gen_range(0..live_faults.len()));
            assert_eq!(handle.repair_nodes(&[node]).accepted, 1);
        } else {
            let node = c(rng.gen_range(0..SIDE as i32), rng.gen_range(0..SIDE as i32));
            if live_faults.contains(&node) {
                continue;
            }
            if handle.inject_faults(&[node]).accepted != 1 {
                continue;
            }
            live_faults.push(node);
        }
        injected += 1;
        assert!(service.quiesce(Duration::from_secs(30)), "writer quiesces");
    }
    let mut handle = service.handle();
    let head = handle.snapshot();
    let result = (head.epoch, grid_digest(&head), log_rows(&service));
    service.shutdown();
    result
}

/// Byte offsets at which each WAL frame ends, starting after the Init
/// frame. Frames are `[u32 BE len][u64 checksum][payload]`.
fn frame_boundaries(bytes: &[u8]) -> Vec<usize> {
    let mut bounds = Vec::new();
    let mut pos = 0;
    while pos + 12 <= bytes.len() {
        let len = u32::from_be_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
        if pos + 12 + len > bytes.len() {
            break;
        }
        pos += 12 + len;
        bounds.push(pos);
    }
    bounds
}

#[test]
fn clean_shutdown_recovers_field_identical_and_keeps_serving() {
    let path = tmp("clean-shutdown");
    let (oracle_epoch, oracle_digest, oracle_log) = run_oracle(&path, 9);
    assert!(oracle_epoch >= 6, "schedule produced a real history");

    // Recovery replays the full log to the byte-identical terminal state.
    let recovered = MeshService::recover(&path, ServeConfig::default()).expect("recover succeeds");
    let mut handle = recovered.handle();
    let head = handle.snapshot();
    assert_eq!(head.epoch, oracle_epoch, "terminal epoch matches");
    assert_eq!(grid_digest(&head), oracle_digest, "terminal grids match");
    assert_eq!(log_rows(&recovered), oracle_log, "audit log matches");
    for row in recovered.epoch_log() {
        let cert = row
            .certificate
            .expect("recovered epochs carry certificates");
        assert_eq!(cert.epoch, row.epoch);
    }

    // The recovered service is live: it keeps appending to the same log.
    let extra = c(0, SIDE as i32 - 1);
    assert_eq!(handle.inject_faults(&[extra]).accepted, 1);
    assert!(recovered.quiesce(Duration::from_secs(30)));
    let extended_epoch = handle.snapshot().epoch;
    let extended_digest = grid_digest(&handle.snapshot());
    assert_eq!(extended_epoch, oracle_epoch + 1);
    recovered.shutdown();

    // ... and a second recovery sees the post-recovery epoch too.
    let again = MeshService::recover(&path, ServeConfig::default()).expect("second recover");
    let mut handle = again.handle();
    assert_eq!(handle.snapshot().epoch, extended_epoch);
    assert_eq!(grid_digest(&handle.snapshot()), extended_digest);
    again.shutdown();
    let _ = std::fs::remove_file(&path);
}

#[test]
fn recovery_does_not_fabricate_certificates_for_uncertified_epochs() {
    // A Warn-mode service whose second batch fails its certificate check
    // publishes that epoch uncertified (cert_digest 0 in the WAL).
    // Recovery must preserve that fact: re-deriving a certificate for it
    // would make the audit log claim an artifact that never existed.
    let path = tmp("warn-uncertified");
    let config = ServeConfig {
        cert_mode: CertMode::Warn,
        cert_chaos: CertChaos::RejectWarmEveryNth(2),
        ..ServeConfig::default()
    };
    let service = MeshService::start_durable(Topology::mesh(SIDE, SIDE), [c(2, 2)], config, &path)
        .expect("durable service starts");
    let handle = service.handle();
    for node in [c(7, 7), c(9, 3)] {
        assert_eq!(handle.inject_faults(&[node]).accepted, 1);
        assert!(service.quiesce(Duration::from_secs(30)));
    }
    let log = service.epoch_log();
    assert_eq!(log.len(), 2);
    assert!(log[0].certificate.is_some(), "batch 1 certified");
    assert!(log[1].certificate.is_none(), "batch 2 chaos-failed in Warn");
    service.shutdown();

    let recovered = MeshService::recover(
        &path,
        ServeConfig {
            cert_mode: CertMode::Warn,
            ..ServeConfig::default()
        },
    )
    .expect("recover succeeds");
    let log = recovered.epoch_log();
    assert_eq!(log.len(), 2);
    assert!(
        log[0].certificate.is_some(),
        "certified epoch recovers its certificate"
    );
    assert!(
        log[1].certificate.is_none(),
        "uncertified epoch must stay uncertified after recovery"
    );
    assert!(recovered.handle().certificate(2).is_none());
    recovered.shutdown();
    let _ = std::fs::remove_file(&path);
}

#[test]
fn truncation_at_fuzzed_offsets_recovers_a_consistent_prefix() {
    let path = tmp("truncate-fuzz");
    let (_, _, oracle_log) = run_oracle(&path, 8);
    let bytes = std::fs::read(&path).expect("read WAL");
    let bounds = frame_boundaries(&bytes);
    assert_eq!(
        bounds.len(),
        oracle_log.len() + 1,
        "one frame per batch plus the Init frame"
    );
    let init_end = bounds[0];

    // ≥10 fuzzed cut points: every frame boundary (a crash between
    // appends) plus random mid-frame offsets (a crash mid-write).
    let mut rng = SmallRng::seed_from_u64(0x7_0c9);
    let mut cuts: Vec<usize> = bounds.clone();
    while cuts.len() < bounds.len() + 8 {
        cuts.push(rng.gen_range(0..bytes.len()));
    }
    assert!(cuts.len() >= 10, "chaos demands at least ten cut points");

    let cut_path = tmp("truncate-fuzz-cut");
    for (i, &cut) in cuts.iter().enumerate() {
        std::fs::write(&cut_path, &bytes[..cut]).expect("write truncated copy");
        if cut < init_end {
            // Even the Init record is torn: there is nothing to replay
            // from, and recovery must say so rather than serve garbage.
            assert!(
                MeshService::recover(&cut_path, ServeConfig::default()).is_err(),
                "cut {i} at byte {cut} (inside Init) must fail to recover"
            );
            continue;
        }
        let survivors = bounds.iter().filter(|&&b| b <= cut).count() - 1;
        let recovered = MeshService::recover(&cut_path, ServeConfig::default())
            .unwrap_or_else(|e| panic!("cut {i} at byte {cut} failed to recover: {e}"));
        let rows = log_rows(&recovered);
        assert_eq!(
            rows,
            oracle_log[..survivors],
            "cut {i} at byte {cut}: recovered history is the intact prefix"
        );
        // Grid equality vs the cold oracle over the recovered fault set.
        let mut handle = recovered.handle();
        let head = handle.snapshot();
        assert_eq!(head.epoch, survivors as u64);
        let cold = Snapshot::cold(
            head.epoch,
            FaultMap::new(head.map.topology(), head.map.faults()),
            &ServeConfig::default().pipeline,
        )
        .expect("cold oracle converges");
        assert_eq!(
            grid_digest(&head),
            grid_digest(&cold),
            "cut {i}: recovered grids equal the cold oracle"
        );
        recovered.shutdown();
    }
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(&cut_path);
}

#[test]
fn wal_snapshotted_under_live_writes_recovers_a_consistent_prefix() {
    let path = tmp("live-copy");
    let service = MeshService::start_durable(
        Topology::mesh(SIDE, SIDE),
        [c(5, 5)],
        ServeConfig {
            batch_max: 1,
            ..ServeConfig::default()
        },
        &path,
    )
    .expect("durable service starts");
    let handle = service.handle();

    // Fire a stream of single-fault batches with no quiesce and grab raw
    // copies of the WAL file while the writer races us — each copy is the
    // disk image an unflushed crash would leave behind.
    let mut rng = SmallRng::seed_from_u64(0xdead);
    let mut copies = Vec::new();
    let mut injected = 0;
    while injected < 12 {
        let node = c(rng.gen_range(0..SIDE as i32), rng.gen_range(0..SIDE as i32));
        if node == c(5, 5) || handle.inject_faults(&[node]).accepted != 1 {
            continue;
        }
        injected += 1;
        copies.push(std::fs::read(&path).expect("copy live WAL"));
    }
    assert!(service.quiesce(Duration::from_secs(30)));
    let oracle_log = log_rows(&service);
    service.shutdown();

    let copy_path = tmp("live-copy-cut");
    let mut nonempty = 0;
    for (i, copy) in copies.iter().enumerate() {
        std::fs::write(&copy_path, copy).expect("write live copy");
        let Ok(recovered) = MeshService::recover(&copy_path, ServeConfig::default()) else {
            // Copy caught the file before the Init frame landed.
            continue;
        };
        let rows = log_rows(&recovered);
        assert_eq!(
            rows[..],
            oracle_log[..rows.len()],
            "live copy {i}: recovered history is a prefix of the real one"
        );
        nonempty += 1;
        recovered.shutdown();
    }
    assert!(nonempty >= 6, "most live copies recovered: {nonempty}/12");
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(&copy_path);
}
