//! Concurrent snapshot-consistency test (PR acceptance criterion).
//!
//! Reader threads hammer route queries while a `FaultSchedule` is injected
//! into the live service. Afterwards, the service's epoch log is replayed
//! cold: every recorded response must be *exactly* what a from-scratch
//! pipeline run of its epoch would have answered — i.e. each read was
//! served against some fully-consistent published snapshot, never a
//! half-updated machine. Finally, the head snapshot must equal a cold
//! oracle of the terminal fault set field-for-field.

use ocp_core::prelude::*;
use ocp_mesh::{Coord, Topology};
use ocp_serve::{CertChaos, EpochRecord, MeshService, RouteOutcome, ServeConfig, Snapshot};
use ocp_workloads::FaultSchedule;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

const SIDE: u32 = 14;

fn c(x: i32, y: i32) -> Coord {
    Coord::new(x, y)
}

/// Replays the epoch log into the per-epoch fault sets: index `k` holds the
/// faults the snapshot of epoch `k` was labeled under.
fn fault_sets_per_epoch(initial: &[Coord], log: &[EpochRecord]) -> Vec<Vec<Coord>> {
    let mut sets = vec![initial.to_vec()];
    let mut current = initial.to_vec();
    for (i, record) in log.iter().enumerate() {
        assert_eq!(
            record.epoch,
            (i + 1) as u64,
            "epoch log must be gapless and ordered"
        );
        current.retain(|f| !record.repairs.contains(f));
        current.extend(record.faults.iter().copied());
        sets.push(current.clone());
    }
    sets
}

#[test]
fn concurrent_reads_are_always_served_by_a_published_epoch() {
    let initial = vec![c(3, 3), c(10, 4)];
    let service = MeshService::start(
        Topology::mesh(SIDE, SIDE),
        initial.iter().copied(),
        ServeConfig {
            batch_max: 4,
            ..ServeConfig::default()
        },
    )
    .expect("service starts");

    // Readers: hammer routes until told to stop, recording every answer
    // with the epoch that served it.
    let stop = Arc::new(AtomicBool::new(false));
    let readers: Vec<_> = (0..4)
        .map(|worker| {
            let mut handle = service.handle();
            let stop = stop.clone();
            std::thread::spawn(move || {
                let mut rng = SmallRng::seed_from_u64(0x5eed + worker);
                let mut observed = Vec::new();
                while !stop.load(Ordering::Acquire) {
                    let src = c(rng.gen_range(0..SIDE as i32), rng.gen_range(0..SIDE as i32));
                    let dst = c(rng.gen_range(0..SIDE as i32), rng.gen_range(0..SIDE as i32));
                    let reply = handle.route(src, dst);
                    observed.push((reply.epoch, src, dst, reply.outcome));
                }
                observed
            })
        })
        .collect();

    // Writer side: drip a randomized fault schedule into the live service,
    // pausing between time-steps so several epochs publish mid-read.
    let mut rng = SmallRng::seed_from_u64(42);
    let schedule = FaultSchedule::random(Topology::mesh(SIDE, SIDE), 10, 5, &mut rng);
    let injector = service.handle();
    for (_, nodes) in schedule.grouped_by_time() {
        let ack = injector.inject_faults(&nodes);
        assert_eq!(ack.rejected, 0, "default queue must absorb the schedule");
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(service.quiesce(Duration::from_secs(60)), "writer drained");
    stop.store(true, Ordering::Release);

    let observations: Vec<_> = readers
        .into_iter()
        .flat_map(|r| r.join().expect("reader panicked"))
        .collect();
    assert!(
        observations.len() >= 100,
        "readers only got {} queries in",
        observations.len()
    );

    let log = service.epoch_log();
    assert!(!log.is_empty(), "injection published no epochs");
    let final_head = service.handle().snapshot();
    service.shutdown();

    // Cold oracle per epoch: rebuild each published machine state from
    // scratch and check every observation against its serving epoch.
    let config = PipelineConfig::default();
    let oracles: Vec<Snapshot> = fault_sets_per_epoch(&initial, &log)
        .into_iter()
        .enumerate()
        .map(|(epoch, faults)| {
            Snapshot::cold(
                epoch as u64,
                FaultMap::new(Topology::mesh(SIDE, SIDE), faults),
                &config,
            )
            .expect("cold oracle converges")
        })
        .collect();

    let mut epochs_seen = std::collections::BTreeSet::new();
    for (epoch, src, dst, outcome) in &observations {
        let oracle = oracles
            .get(*epoch as usize)
            .unwrap_or_else(|| panic!("reply tagged with unpublished epoch {epoch}"));
        epochs_seen.insert(*epoch);
        match (oracle.router.route(*src, *dst), outcome) {
            (Ok(path), RouteOutcome::Delivered { hops }) => {
                assert_eq!(
                    &path.hops, hops,
                    "epoch {epoch}: route {src:?}->{dst:?} differs from oracle"
                );
            }
            (Err(expected), RouteOutcome::Failed { error }) => {
                assert_eq!(
                    &expected, error,
                    "epoch {epoch}: failure kind differs for {src:?}->{dst:?}"
                );
            }
            (oracle_says, served) => panic!(
                "epoch {epoch}: {src:?}->{dst:?} oracle {oracle_says:?} vs served {served:?}"
            ),
        }
    }
    assert!(
        epochs_seen.len() >= 2,
        "reads only ever saw epochs {epochs_seen:?}; injection raced past the readers"
    );

    // The terminal snapshot must match the cold oracle field-for-field.
    let oracle = oracles.last().expect("at least epoch 0");
    assert_eq!(final_head.epoch, oracle.epoch);
    let mut final_faults = final_head.map.faults();
    let mut oracle_faults = oracle.map.faults();
    final_faults.sort();
    oracle_faults.sort();
    assert_eq!(final_faults, oracle_faults);
    assert_eq!(final_head.outcome.safety, oracle.outcome.safety);
    assert_eq!(final_head.outcome.activation, oracle.outcome.activation);
    assert_eq!(
        final_head.outcome.regions.len(),
        oracle.outcome.regions.len()
    );
    for y in 0..SIDE as i32 {
        for x in 0..SIDE as i32 {
            assert_eq!(
                final_head.enabled.is_enabled(c(x, y)),
                oracle.enabled.is_enabled(c(x, y)),
                "enabled view diverges at ({x},{y})"
            );
        }
    }
}

/// Batched reads under epoch churn: every outcome in every batch reply
/// must be field-equal to the singleton `route_len` answer the same
/// snapshot would have served — the batch path changes cost, never
/// answers, even while the writer publishes epochs mid-flight.
#[test]
fn batched_reads_match_singletons_under_churn() {
    let initial = vec![c(3, 3), c(10, 4)];
    let service = MeshService::start(
        Topology::mesh(SIDE, SIDE),
        initial.iter().copied(),
        ServeConfig {
            batch_max: 4,
            ..ServeConfig::default()
        },
    )
    .expect("service starts");

    // Readers: fire variable-size hop-count batches, recording each reply
    // with its serving epoch. Deliberately include faulty/disabled
    // endpoints so error outcomes ride inside successful batches.
    let stop = Arc::new(AtomicBool::new(false));
    let readers: Vec<_> = (0..3)
        .map(|worker| {
            let mut handle = service.handle();
            let stop = stop.clone();
            std::thread::spawn(move || {
                let mut rng = SmallRng::seed_from_u64(0xba7c4 + worker);
                let mut observed = Vec::new();
                while !stop.load(Ordering::Acquire) {
                    let pairs: Vec<(Coord, Coord)> = (0..rng.gen_range(1..=8))
                        .map(|_| {
                            (
                                c(rng.gen_range(0..SIDE as i32), rng.gen_range(0..SIDE as i32)),
                                c(rng.gen_range(0..SIDE as i32), rng.gen_range(0..SIDE as i32)),
                            )
                        })
                        .collect();
                    let reply = handle.route_len_batch(&pairs);
                    assert_eq!(reply.outcomes.len(), pairs.len());
                    observed.push((reply.epoch, pairs, reply.outcomes));
                }
                observed
            })
        })
        .collect();

    let mut rng = SmallRng::seed_from_u64(43);
    let schedule = FaultSchedule::random(Topology::mesh(SIDE, SIDE), 10, 5, &mut rng);
    let injector = service.handle();
    for (_, nodes) in schedule.grouped_by_time() {
        let ack = injector.inject_faults(&nodes);
        assert_eq!(ack.rejected, 0, "default queue must absorb the schedule");
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(service.quiesce(Duration::from_secs(60)), "writer drained");
    stop.store(true, Ordering::Release);

    let observations: Vec<_> = readers
        .into_iter()
        .flat_map(|r| r.join().expect("reader panicked"))
        .collect();
    assert!(
        observations.len() >= 50,
        "readers only got {} batches in",
        observations.len()
    );

    let log = service.epoch_log();
    assert!(!log.is_empty(), "injection published no epochs");
    service.shutdown();

    let config = PipelineConfig::default();
    let oracles: Vec<Snapshot> = fault_sets_per_epoch(&initial, &log)
        .into_iter()
        .enumerate()
        .map(|(epoch, faults)| {
            Snapshot::cold(
                epoch as u64,
                FaultMap::new(Topology::mesh(SIDE, SIDE), faults),
                &config,
            )
            .expect("cold oracle converges")
        })
        .collect();

    let mut epochs_seen = std::collections::BTreeSet::new();
    for (epoch, pairs, outcomes) in &observations {
        let oracle = oracles
            .get(*epoch as usize)
            .unwrap_or_else(|| panic!("batch tagged with unpublished epoch {epoch}"));
        epochs_seen.insert(*epoch);
        for (&(src, dst), outcome) in pairs.iter().zip(outcomes) {
            match (oracle.router.route_len(src, dst), outcome) {
                (Ok(len), ocp_serve::RouteLenOutcome::Delivered { len: served }) => {
                    assert_eq!(len, *served, "epoch {epoch}: {src:?}->{dst:?}");
                }
                (Err(e), ocp_serve::RouteLenOutcome::Failed { error }) => {
                    assert_eq!(&e, error, "epoch {epoch}: {src:?}->{dst:?}");
                }
                (expected, served) => panic!(
                    "epoch {epoch}: {src:?}->{dst:?} oracle {expected:?} vs served {served:?}"
                ),
            }
        }
    }
    assert!(
        epochs_seen.len() >= 2,
        "batches only ever saw epochs {epochs_seen:?}; injection raced past the readers"
    );
}

/// k-disjoint reads under epoch churn: every served route set must be
/// bit-for-bit what a cold per-epoch oracle answers for the same query —
/// the flow decomposition is deterministic, so replays are exact — and
/// every delivered set must satisfy the endpoint's own guarantees
/// (pairwise vertex-disjoint, first path identical to `route`).
#[test]
fn disjoint_reads_match_cold_oracle_under_churn() {
    let initial = vec![c(3, 3), c(10, 4)];
    let service = MeshService::start(
        Topology::mesh(SIDE, SIDE),
        initial.iter().copied(),
        ServeConfig {
            batch_max: 4,
            ..ServeConfig::default()
        },
    )
    .expect("service starts");

    let stop = Arc::new(AtomicBool::new(false));
    let readers: Vec<_> = (0..3)
        .map(|worker| {
            let mut handle = service.handle();
            let stop = stop.clone();
            std::thread::spawn(move || {
                let mut rng = SmallRng::seed_from_u64(0xd15 + worker);
                let mut observed = Vec::new();
                while !stop.load(Ordering::Acquire) {
                    let src = c(rng.gen_range(0..SIDE as i32), rng.gen_range(0..SIDE as i32));
                    let dst = c(rng.gen_range(0..SIDE as i32), rng.gen_range(0..SIDE as i32));
                    let k = rng.gen_range(1..=3);
                    let reply = handle.route_disjoint(src, dst, k);
                    observed.push((reply.epoch, src, dst, k, reply.outcome));
                }
                observed
            })
        })
        .collect();

    let mut rng = SmallRng::seed_from_u64(44);
    let schedule = FaultSchedule::random(Topology::mesh(SIDE, SIDE), 10, 5, &mut rng);
    let injector = service.handle();
    for (_, nodes) in schedule.grouped_by_time() {
        let ack = injector.inject_faults(&nodes);
        assert_eq!(ack.rejected, 0, "default queue must absorb the schedule");
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(service.quiesce(Duration::from_secs(60)), "writer drained");
    stop.store(true, Ordering::Release);

    let observations: Vec<_> = readers
        .into_iter()
        .flat_map(|r| r.join().expect("reader panicked"))
        .collect();
    assert!(
        observations.len() >= 50,
        "readers only got {} queries in",
        observations.len()
    );

    let log = service.epoch_log();
    assert!(!log.is_empty(), "injection published no epochs");
    service.shutdown();

    let config = PipelineConfig::default();
    let oracles: Vec<Snapshot> = fault_sets_per_epoch(&initial, &log)
        .into_iter()
        .enumerate()
        .map(|(epoch, faults)| {
            Snapshot::cold(
                epoch as u64,
                FaultMap::new(Topology::mesh(SIDE, SIDE), faults),
                &config,
            )
            .expect("cold oracle converges")
        })
        .collect();

    let mut epochs_seen = std::collections::BTreeSet::new();
    for (epoch, src, dst, k, outcome) in &observations {
        let oracle = oracles
            .get(*epoch as usize)
            .unwrap_or_else(|| panic!("reply tagged with unpublished epoch {epoch}"));
        epochs_seen.insert(*epoch);
        match (oracle.router.route_disjoint(*src, *dst, *k), outcome) {
            (Ok(routes), ocp_serve::RouteDisjointOutcome::Delivered { paths, stretch }) => {
                let want: Vec<Vec<Coord>> = routes.paths.iter().map(|p| p.hops.clone()).collect();
                assert_eq!(
                    &want, paths,
                    "epoch {epoch}: disjoint set {src:?}->{dst:?} k={k} differs from oracle"
                );
                assert_eq!(routes.stretch, *stretch, "epoch {epoch}: stretch");
                assert!(
                    routes.pairwise_disjoint(),
                    "epoch {epoch}: disjointness {src:?}->{dst:?} k={k} paths={paths:?}"
                );
                if *k == 1 {
                    let single = oracle.router.route(*src, *dst).expect("route succeeds");
                    assert_eq!(
                        paths[0], single.hops,
                        "epoch {epoch}: k=1 must be the production route, byte-identical"
                    );
                }
            }
            (Err(expected), ocp_serve::RouteDisjointOutcome::Failed { error }) => {
                assert_eq!(
                    &expected, error,
                    "epoch {epoch}: failure kind differs for {src:?}->{dst:?}"
                );
            }
            (oracle_says, served) => panic!(
                "epoch {epoch}: {src:?}->{dst:?} k={k} oracle {oracle_says:?} vs served {served:?}"
            ),
        }
    }
    assert!(
        epochs_seen.len() >= 2,
        "reads only ever saw epochs {epochs_seen:?}; injection raced past the readers"
    );
}

/// Staleness accounting on failed publishes (PR-6 satellite): while the
/// certificate gate chaos-rejects every third batch, readers hammering the
/// epoch counter must never observe it move backwards or skip a number,
/// and the audit log must stay a gapless 1..=N even though some batches
/// were refused. The rejected batches are reported separately in stats.
#[test]
fn cert_rejections_never_produce_nonmonotonic_or_skipped_epochs() {
    let service = MeshService::start(
        Topology::mesh(SIDE, SIDE),
        [c(3, 3)],
        ServeConfig {
            batch_max: 1, // one epoch per event: maximal counter churn
            cert_chaos: CertChaos::RejectBatchEveryNth(3),
            ..ServeConfig::default()
        },
    )
    .expect("service starts");

    let stop = Arc::new(AtomicBool::new(false));
    let watchers: Vec<_> = (0..3)
        .map(|_| {
            let handle = service.handle();
            let stop = stop.clone();
            std::thread::spawn(move || {
                let mut last = handle.epoch();
                let mut seen = vec![last];
                while !stop.load(Ordering::Acquire) {
                    let now = handle.epoch();
                    assert!(now >= last, "epoch went backwards: {last} -> {now}");
                    if now != last {
                        seen.push(now);
                        last = now;
                    }
                }
                seen
            })
        })
        .collect();

    let injector = service.handle();
    let mut rng = SmallRng::seed_from_u64(0xcafe);
    let mut injected = 0u64;
    while injected < 12 {
        let node = c(rng.gen_range(0..SIDE as i32), rng.gen_range(0..SIDE as i32));
        if node == c(3, 3) {
            continue;
        }
        let ack = injector.inject_faults(&[node]);
        if ack.accepted == 1 {
            injected += 1;
            // Let each single-event batch settle so rejections and
            // publishes interleave deterministically enough to observe.
            assert!(service.quiesce(Duration::from_secs(30)));
        }
    }
    stop.store(true, Ordering::Release);
    let stats = service.handle().stats();
    for watcher in watchers {
        // Monotonicity was asserted inside the thread on every poll; here
        // we check "never skipped": a polling reader may miss epochs that
        // flew by between polls, but every number it *did* observe must be
        // one the service actually published (1..=N, per the gapless-log
        // assertion below) — never a counter value minted for a batch that
        // was later cert-rejected.
        let seen = watcher.join().expect("watcher panicked");
        for &epoch in &seen {
            assert!(
                epoch <= stats.epochs_published,
                "a reader observed unpublished epoch {epoch} (published: {})",
                stats.epochs_published
            );
        }
    }
    assert!(
        stats.publishes_cert_rejected >= 1,
        "chaos at every 3rd batch must have rejected something: {stats:?}"
    );
    assert_eq!(
        stats.epochs_published + stats.publishes_cert_rejected,
        12,
        "every batch either published or was rejected"
    );
    assert_eq!(
        stats.events_applied, stats.epochs_published,
        "one event per published epoch at batch_max=1"
    );
    assert_eq!(
        stats.events_discarded, stats.publishes_cert_rejected,
        "rejected batches account their events as discarded"
    );

    // The audit log is exactly 1..=epochs_published: rejected batches
    // never minted an epoch number.
    let log = service.epoch_log();
    let epochs: Vec<u64> = log.iter().map(|r| r.epoch).collect();
    assert_eq!(epochs, (1..=stats.epochs_published).collect::<Vec<u64>>());
    assert_eq!(service.handle().epoch(), stats.epochs_published);
    service.shutdown();
}

#[test]
fn repairs_interleaved_with_reads_stay_consistent() {
    let initial = vec![c(4, 4), c(5, 4), c(9, 9)];
    let service = MeshService::start(
        Topology::mesh(SIDE, SIDE),
        initial.iter().copied(),
        ServeConfig {
            batch_max: 1, // force one epoch per event: worst-case churn
            ..ServeConfig::default()
        },
    )
    .expect("service starts");

    let stop = Arc::new(AtomicBool::new(false));
    let reader = {
        let mut handle = service.handle();
        let stop = stop.clone();
        std::thread::spawn(move || {
            let mut rng = SmallRng::seed_from_u64(7);
            let mut observed = Vec::new();
            while !stop.load(Ordering::Acquire) {
                let src = c(rng.gen_range(0..SIDE as i32), rng.gen_range(0..SIDE as i32));
                let dst = c(rng.gen_range(0..SIDE as i32), rng.gen_range(0..SIDE as i32));
                let reply = handle.route_len(src, dst);
                observed.push((reply.epoch, src, dst, reply.outcome));
            }
            observed
        })
    };

    let injector = service.handle();
    // Repair the initial faults one by one, then crash two fresh nodes.
    for batch in [vec![c(4, 4)], vec![c(9, 9)], vec![c(5, 4)]] {
        injector.repair_nodes(&batch);
        std::thread::sleep(Duration::from_millis(3));
    }
    injector.inject_faults(&[c(0, 7), c(7, 0)]);
    assert!(service.quiesce(Duration::from_secs(60)));
    stop.store(true, Ordering::Release);
    let observations = reader.join().expect("reader panicked");

    let log = service.epoch_log();
    service.shutdown();
    let config = PipelineConfig::default();
    let oracles: Vec<Snapshot> = fault_sets_per_epoch(&initial, &log)
        .into_iter()
        .enumerate()
        .map(|(epoch, faults)| {
            Snapshot::cold(
                epoch as u64,
                FaultMap::new(Topology::mesh(SIDE, SIDE), faults),
                &config,
            )
            .expect("cold oracle converges")
        })
        .collect();

    for (epoch, src, dst, outcome) in &observations {
        let oracle = &oracles[*epoch as usize];
        let expected = oracle.router.route_len(*src, *dst);
        match (expected, outcome) {
            (Ok(len), ocp_serve::RouteLenOutcome::Delivered { len: served }) => {
                assert_eq!(len, *served, "epoch {epoch}: {src:?}->{dst:?}");
            }
            (Err(e), ocp_serve::RouteLenOutcome::Failed { error }) => {
                assert_eq!(&e, error, "epoch {epoch}: {src:?}->{dst:?}");
            }
            (expected, served) => {
                panic!("epoch {epoch}: {src:?}->{dst:?} oracle {expected:?} vs served {served:?}")
            }
        }
    }
}

/// Metrics oracle for the incremental-build instrumentation: every
/// published epoch must record exactly one sample into each
/// `index_build_*` phase histogram, every recorded build time must sit
/// inside the measured wall-clock span of the run (histogram buckets
/// report geometric midpoints, at most 1.5× the true sample), and a
/// pure-fault churn must take the warm patch path (nonzero reuse ratio,
/// router still digest-identical to a cold oracle of the terminal state).
#[test]
fn index_build_metrics_pin_to_wall_clock_spans() {
    let t0 = std::time::Instant::now();
    let service = MeshService::start(
        Topology::mesh(SIDE, SIDE),
        [c(2, 2)],
        ServeConfig {
            batch_max: 1,
            ..ServeConfig::default()
        },
    )
    .expect("service starts");
    let mut handle = service.handle();
    for node in [c(8, 8), c(9, 9), c(11, 3), c(4, 11)] {
        assert_eq!(handle.inject_faults(&[node]).accepted, 1);
        assert!(service.quiesce(Duration::from_secs(30)));
    }
    let span_ns = t0.elapsed().as_nanos() as f64;
    let stats = handle.stats();
    assert_eq!(stats.epochs_published, 4);
    for (phase, p) in [
        ("segment", &stats.index_build_segment_ns),
        ("ring", &stats.index_build_ring_ns),
        ("wide", &stats.index_build_wide_ns),
        ("exit", &stats.index_build_exit_ns),
        ("total", &stats.index_build_total_ns),
    ] {
        assert_eq!(
            p.n, 4,
            "{phase}: one sample per published epoch, got {}",
            p.n
        );
        assert!(
            p.max <= 1.5 * span_ns,
            "{phase}: recorded build time {} ns exceeds the run's wall span {span_ns} ns",
            p.max
        );
    }
    assert!(
        stats.index_reuse_ratio > 0.0 && stats.index_reuse_ratio <= 1.0,
        "pure-fault churn must take the warm patch path (reuse {})",
        stats.index_reuse_ratio
    );

    // The warm-built head must be digest-identical to a cold oracle of
    // the same terminal fault set — the serving-layer form of the
    // incremental ≡ cold pin.
    let head = handle.snapshot();
    let oracle = Snapshot::cold(
        head.epoch,
        FaultMap::new(
            Topology::mesh(SIDE, SIDE),
            [c(2, 2), c(8, 8), c(9, 9), c(11, 3), c(4, 11)],
        ),
        &PipelineConfig::default(),
    )
    .expect("cold oracle converges");
    assert_eq!(
        head.router.table_digest(),
        oracle.router.table_digest(),
        "published warm router diverged from the cold oracle"
    );
    service.shutdown();
}
