//! # ocp-serve
//!
//! A long-lived, embeddable **mesh-state service**: the component that
//! finally *consumes* the paper's labels under production-shaped load.
//! Every other consumer in this workspace (the experiments, the routing
//! evaluation) rebuilds the labeled machine from scratch per call;
//! `ocp-serve` instead owns the labeled grid, absorbs a stream of
//! fault/repair events, and answers routing/status queries concurrently
//! while re-convergence happens off the read path.
//!
//! ## Design at a glance
//!
//! * [`snapshot`] — immutable per-epoch machine state: fault map, the
//!   converged two-phase labeling, and a ready-built
//!   [`FaultTolerantRouter`](ocp_routing::FaultTolerantRouter). Epoch
//!   `k+1` derives from `k` through the warm-start maintenance path.
//! * [`service`] — the epoch pointer (atomic epoch + `Arc` slot), the
//!   single writer thread with batched, admission-controlled event
//!   ingestion, and the lock-free [`ServiceHandle`] query API.
//! * [`api`] — the typed request/response surface shared by in-process
//!   and TCP callers; every read reply is tagged with the epoch that
//!   served it.
//! * [`net`] — a dependency-free TCP front-end (`std::net`,
//!   length-prefixed JSON frames) plus a blocking [`Client`].
//! * [`metrics`] — lock-free per-endpoint counters, a log-bucketed
//!   latency histogram with p50/p95/p99, and read-staleness tracking.
//! * [`queue`] — the bounded writer queue whose full-queue behavior is an
//!   explicit `Overloaded` rejection, never unbounded buffering.
//! * [`wal`] — the dependency-free epoch write-ahead log: checksummed,
//!   torn-tail-tolerant records appended and fsynced before each publish,
//!   replayed by [`MeshService::recover`](service::MeshService::recover).
//!   Publishes are gated by [`EpochCertificate`](ocp_core::certificate::EpochCertificate)
//!   checks per [`CertMode`](service::CertMode).
//!
//! See `DESIGN.md` §6 for the architecture rationale and `repro -- serve`
//! (experiment E14) for throughput/tail-latency/staleness measurements.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod api;
pub mod metrics;
pub mod net;
pub mod queue;
pub mod service;
pub mod snapshot;
pub mod transport;
pub mod wal;

pub use api::{
    CertificateReply, InjectReply, NodeState, Request, Response, RouteDisjointOutcome,
    RouteDisjointReply, RouteLenOutcome, RouteLenReply, RouteOutcome, RouteReply, StatusReply,
};
pub use metrics::{
    prometheus_text, EndpointReport, LatencyHistogram, Metrics, ObsReport, StatsReport,
};
pub use net::{Client, ClientError, TcpServer};
pub use queue::{BoundedQueue, PushError};
pub use service::{
    CertChaos, CertMode, EpochRecord, Event, MeshService, RecoverError, ServeConfig, ServiceHandle,
};
pub use snapshot::{EventBatch, Snapshot};
pub use transport::{dispatch_bytes, PipelinedApiClient, TcpFront, Transport};
pub use wal::{Wal, WalRecord};
