//! The long-lived mesh-state service: one writer, many lock-free readers.
//!
//! ## Architecture
//!
//! * **Epoch snapshots.** The current machine state lives in an immutable
//!   [`Snapshot`] behind an `Arc`. A single head pointer (epoch counter +
//!   slot) is advanced by the writer; it is never mutated in place.
//! * **Lock-free read hot path.** Every [`ServiceHandle`] caches an
//!   `Arc<Snapshot>`. Serving a query is: one relaxed-cost atomic load of
//!   the head epoch, an equality check, and then pure reads against the
//!   cached snapshot. The publication mutex is touched **only** when the
//!   epoch actually advanced (once per publication per handle, never per
//!   query), and only long enough to clone an `Arc`. Queries therefore
//!   never contend with each other, and never block on the writer's
//!   relabeling work.
//! * **Single writer, batched ingestion.** Fault/repair events enter a
//!   bounded queue ([`BoundedQueue`]) with explicit `Overloaded`
//!   rejection. The writer drains up to `batch_max` events at a time,
//!   validates them against the current map, re-converges via the
//!   warm-start maintenance path, and publishes one new snapshot per
//!   batch — coalescing is what keeps epoch churn (and reader refresh
//!   cost) proportional to load, not to event count.

use crate::api::{
    InjectReply, Request, Response, RouteLenBatchReply, RouteLenOutcome, RouteLenReply,
    RouteOutcome, RouteReply, StatusReply,
};
use crate::metrics::{prometheus_text, Metrics, ObsReport, StatsReport};
use crate::queue::{BoundedQueue, PushError};
use crate::snapshot::{EventBatch, Snapshot};
use ocp_core::prelude::*;
use ocp_mesh::{Coord, Topology};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tuning knobs of a [`MeshService`].
#[derive(Clone, Copy, Debug)]
pub struct ServeConfig {
    /// Labeling pipeline configuration (rule, engine, round cap). The
    /// default picks the bit-packed labeling engine — every engine
    /// produces identical snapshots, so this only shortens the writer's
    /// relabel critical section (measured in experiment E15).
    pub pipeline: PipelineConfig,
    /// Admission-control capacity of the fault/repair event queue.
    pub queue_capacity: usize,
    /// Maximum events coalesced into one published epoch.
    pub batch_max: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            pipeline: PipelineConfig {
                engine: LabelEngine::bitboard(),
                ..PipelineConfig::default()
            },
            queue_capacity: 1024,
            batch_max: 64,
        }
    }
}

/// A fault or repair event flowing through the writer queue.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Event {
    /// The node crashed.
    Fault(Coord),
    /// The node came back to life.
    Repair(Coord),
}

/// What one published epoch applied — the service's audit log, and the
/// ground truth the consistency tests replay.
#[derive(Clone, Debug)]
pub struct EpochRecord {
    /// The epoch this batch produced.
    pub epoch: u64,
    /// Faults applied in this batch.
    pub faults: Vec<Coord>,
    /// Repairs applied in this batch.
    pub repairs: Vec<Coord>,
    /// Warm phase-1 rounds the relabeling needed (0 for cold reruns).
    pub warm_rounds: u32,
}

struct Shared {
    /// Epoch of the newest published snapshot (the read hot path's only
    /// synchronization point).
    head_epoch: AtomicU64,
    /// The newest published snapshot. Readers lock this only when
    /// `head_epoch` says their cache is stale; the critical section is one
    /// `Arc::clone`.
    head: Mutex<Arc<Snapshot>>,
    metrics: Metrics,
    queue: BoundedQueue<Event>,
    /// Events admitted to the queue, ever.
    events_enqueued: AtomicU64,
    /// Events the writer has finished with (applied or discarded).
    events_settled: AtomicU64,
    epoch_log: Mutex<Vec<EpochRecord>>,
    batch_max: usize,
}

/// The service: owns the writer thread and the shared state.
///
/// Obtain [`ServiceHandle`]s via [`MeshService::handle`] to serve queries
/// from any number of threads; call [`MeshService::shutdown`] for a clean
/// stop (close queue → drain → join writer).
pub struct MeshService {
    shared: Arc<Shared>,
    config: ServeConfig,
    writer: Option<JoinHandle<()>>,
}

impl MeshService {
    /// Cold-labels `topology` under `initial_faults` and starts the writer.
    pub fn start(
        topology: Topology,
        initial_faults: impl IntoIterator<Item = Coord>,
        config: ServeConfig,
    ) -> Result<Self, ConvergenceError> {
        let map = FaultMap::new(topology, initial_faults);
        let initial = Arc::new(Snapshot::cold(0, map, &config.pipeline)?);
        let shared = Arc::new(Shared {
            head_epoch: AtomicU64::new(0),
            head: Mutex::new(initial.clone()),
            metrics: Metrics::default(),
            queue: BoundedQueue::new(config.queue_capacity),
            events_enqueued: AtomicU64::new(0),
            events_settled: AtomicU64::new(0),
            epoch_log: Mutex::new(Vec::new()),
            batch_max: config.batch_max,
        });
        let writer = {
            let shared = shared.clone();
            let pipeline = config.pipeline;
            std::thread::Builder::new()
                .name("ocp-serve-writer".into())
                .spawn(move || writer_loop(shared, initial, pipeline))
                .expect("spawn writer thread")
        };
        Ok(Self {
            shared,
            config,
            writer: Some(writer),
        })
    }

    /// A new query handle bound to the current head snapshot.
    pub fn handle(&self) -> ServiceHandle {
        ServiceHandle {
            cached: self.shared.head.lock().expect("head lock").clone(),
            shared: self.shared.clone(),
            scratch: ocp_routing::RouteScratch::new(),
        }
    }

    /// The service configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// The audit log: one record per published epoch, in order.
    pub fn epoch_log(&self) -> Vec<EpochRecord> {
        self.shared
            .epoch_log
            .lock()
            .expect("epoch log lock")
            .clone()
    }

    /// Blocks until every admitted event has been applied or discarded, or
    /// the deadline passes; returns whether quiescence was reached.
    pub fn quiesce(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        loop {
            let enqueued = self.shared.events_enqueued.load(Ordering::Acquire);
            let settled = self.shared.events_settled.load(Ordering::Acquire);
            if settled >= enqueued {
                return true;
            }
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    /// Clean shutdown: stop admitting events, let the writer drain the
    /// backlog, join it, and return the final stats.
    pub fn shutdown(mut self) -> StatsReport {
        self.shared.queue.close();
        if let Some(writer) = self.writer.take() {
            writer.join().expect("writer thread panicked");
        }
        self.handle().stats()
    }
}

impl Drop for MeshService {
    fn drop(&mut self) {
        self.shared.queue.close();
        if let Some(writer) = self.writer.take() {
            let _ = writer.join();
        }
    }
}

/// The writer: drain → validate → relabel → publish, until closed.
fn writer_loop(shared: Arc<Shared>, mut current: Arc<Snapshot>, pipeline: PipelineConfig) {
    while let Some(first) = shared.queue.recv() {
        let mut events = vec![first];
        shared
            .queue
            .drain_up_to(shared.batch_max.saturating_sub(1), &mut events);
        let drained = events.len() as u64;
        shared.metrics.batches.fetch_add(1, Ordering::Relaxed);

        // Validate against the current map; duplicates within the batch
        // and events that no longer make sense are discarded (a fault for
        // an already-faulty node, a repair for a healthy one).
        let mut batch = EventBatch::default();
        let mut discarded = 0u64;
        for event in events {
            let valid = match event {
                Event::Fault(c) => {
                    current.map.topology().contains(c)
                        && !current.map.is_faulty(c)
                        && !batch.faults.contains(&c)
                }
                Event::Repair(c) => {
                    current.map.is_faulty(c)
                        && !batch.repairs.contains(&c)
                        && !batch.faults.contains(&c)
                }
            };
            if !valid {
                discarded += 1;
                continue;
            }
            match event {
                Event::Fault(c) => batch.faults.push(c),
                Event::Repair(c) => batch.repairs.push(c),
            }
        }
        shared
            .metrics
            .events_discarded
            .fetch_add(discarded, Ordering::Relaxed);

        if !batch.is_empty() {
            // Publication lag: relabel + publish time, from the moment the
            // batch is assembled to the moment readers can see the epoch.
            let publish_start = Instant::now();
            match current.apply(&batch, &pipeline) {
                Ok(next) => {
                    let warm_rounds = if batch.repairs.is_empty() {
                        next.outcome.safety_trace.rounds()
                    } else {
                        0
                    };
                    let next = Arc::new(next);
                    {
                        // Publish: slot first, then epoch, inside the same
                        // critical section — a reader that observes the new
                        // epoch is guaranteed to find a snapshot at least
                        // that new in the slot.
                        let mut head = shared.head.lock().expect("head lock");
                        *head = next.clone();
                        shared.head_epoch.store(next.epoch, Ordering::Release);
                    }
                    shared
                        .metrics
                        .epoch_publish_lag
                        .record(publish_start.elapsed().as_nanos() as u64);
                    shared
                        .metrics
                        .events_applied
                        .fetch_add(batch.len() as u64, Ordering::Relaxed);
                    shared
                        .metrics
                        .epochs_published
                        .fetch_add(1, Ordering::Relaxed);
                    shared
                        .epoch_log
                        .lock()
                        .expect("epoch log lock")
                        .push(EpochRecord {
                            epoch: next.epoch,
                            faults: batch.faults.clone(),
                            repairs: batch.repairs.clone(),
                            warm_rounds,
                        });
                    current = next;
                }
                Err(e) => {
                    // A convergence stall is a bug upstream (the round cap
                    // is diameter-derived); keep serving the last good
                    // snapshot and account the batch as discarded.
                    shared
                        .metrics
                        .events_discarded
                        .fetch_add(batch.len() as u64, Ordering::Relaxed);
                    eprintln!("ocp-serve writer: relabeling failed, batch dropped: {e}");
                }
            }
        }
        shared.events_settled.fetch_add(drained, Ordering::Release);
    }
}

/// A cloneable query handle over the service.
///
/// Read methods take `&mut self` only to refresh the handle's cached
/// snapshot pointer; they never lock on the hot path (see the module
/// docs). A handle is `Send`, so spawn one per worker thread.
pub struct ServiceHandle {
    shared: Arc<Shared>,
    cached: Arc<Snapshot>,
    scratch: ocp_routing::RouteScratch,
}

impl Clone for ServiceHandle {
    fn clone(&self) -> Self {
        Self {
            shared: self.shared.clone(),
            cached: self.cached.clone(),
            scratch: ocp_routing::RouteScratch::new(),
        }
    }
}

impl ServiceHandle {
    /// Hot path: one atomic load; the mutex is taken only when a new epoch
    /// was actually published since this handle last looked.
    fn refresh(&mut self) {
        let head = self.shared.head_epoch.load(Ordering::Acquire);
        if self.cached.epoch != head {
            self.cached = self.shared.head.lock().expect("head lock").clone();
        }
    }

    /// Records how far behind head the just-served epoch was.
    fn note_staleness(&self, served_epoch: u64) {
        let head = self.shared.head_epoch.load(Ordering::Relaxed);
        self.shared
            .metrics
            .record_staleness(head.saturating_sub(served_epoch));
    }

    /// The snapshot the next query would be served against.
    pub fn snapshot(&mut self) -> Arc<Snapshot> {
        self.refresh();
        self.cached.clone()
    }

    /// Current head epoch.
    pub fn epoch(&self) -> u64 {
        self.shared.head_epoch.load(Ordering::Acquire)
    }

    /// Full fault-tolerant route between two nodes.
    pub fn route(&mut self, src: Coord, dst: Coord) -> RouteReply {
        let start = Instant::now();
        self.refresh();
        let outcome = match self.cached.router.route(src, dst) {
            Ok(path) => RouteOutcome::Delivered { hops: path.hops },
            Err(error) => RouteOutcome::Failed { error },
        };
        match &outcome {
            RouteOutcome::Delivered { .. } => self
                .shared
                .metrics
                .route
                .record(start.elapsed().as_nanos() as u64),
            RouteOutcome::Failed { .. } => self.shared.metrics.route.record_error(),
        }
        let reply = RouteReply {
            epoch: self.cached.epoch,
            outcome,
        };
        self.note_staleness(reply.epoch);
        reply
    }

    /// Hop count only (no path allocation).
    pub fn route_len(&mut self, src: Coord, dst: Coord) -> RouteLenReply {
        let start = Instant::now();
        self.refresh();
        let outcome = match self.cached.router.route_len(src, dst) {
            Ok(len) => RouteLenOutcome::Delivered { len },
            Err(error) => RouteLenOutcome::Failed { error },
        };
        match &outcome {
            RouteLenOutcome::Delivered { .. } => self
                .shared
                .metrics
                .route_len
                .record(start.elapsed().as_nanos() as u64),
            RouteLenOutcome::Failed { .. } => self.shared.metrics.route_len.record_error(),
        }
        let reply = RouteLenReply {
            epoch: self.cached.epoch,
            outcome,
        };
        self.note_staleness(reply.epoch);
        reply
    }

    /// Many hop counts against **one** snapshot: the batched read fast
    /// path. The snapshot is refreshed once, every pair is answered
    /// against it with the handle's persistent router scratch (zero
    /// allocation per query, and the scratch's capacity survives across
    /// batches), the reply carries a single epoch tag, and metrics are
    /// amortized: one staleness sample and one mean-latency sample for the
    /// whole batch. Outcomes are field-equal to sequential singleton
    /// [`route_len`](ServiceHandle::route_len) calls against the same
    /// snapshot.
    pub fn route_len_batch(&mut self, pairs: &[(Coord, Coord)]) -> RouteLenBatchReply {
        let start = Instant::now();
        self.refresh();
        let scratch = &mut self.scratch;
        let mut errors = 0u64;
        let outcomes: Vec<RouteLenOutcome> = pairs
            .iter()
            .map(
                |&(src, dst)| match self.cached.router.route_len_with(src, dst, scratch) {
                    Ok(len) => RouteLenOutcome::Delivered { len },
                    Err(error) => {
                        errors += 1;
                        RouteLenOutcome::Failed { error }
                    }
                },
            )
            .collect();
        self.shared.metrics.route_len.record_batch(
            pairs.len() as u64,
            errors,
            start.elapsed().as_nanos() as u64,
        );
        let reply = RouteLenBatchReply {
            epoch: self.cached.epoch,
            outcomes,
        };
        if !pairs.is_empty() {
            self.note_staleness(reply.epoch);
        }
        reply
    }

    /// Labeled state of one node.
    pub fn status(&mut self, node: Coord) -> StatusReply {
        let start = Instant::now();
        self.refresh();
        let reply = StatusReply {
            epoch: self.cached.epoch,
            node,
            state: self.cached.node_state(node),
        };
        self.shared
            .metrics
            .status
            .record(start.elapsed().as_nanos() as u64);
        self.note_staleness(reply.epoch);
        reply
    }

    /// Enqueues crash events; admission-controlled, never blocking.
    pub fn inject_faults(&self, nodes: &[Coord]) -> InjectReply {
        self.inject(nodes.iter().map(|&c| Event::Fault(c)))
    }

    /// Enqueues repair events; admission-controlled, never blocking.
    pub fn repair_nodes(&self, nodes: &[Coord]) -> InjectReply {
        self.inject(nodes.iter().map(|&c| Event::Repair(c)))
    }

    fn inject(&self, events: impl Iterator<Item = Event>) -> InjectReply {
        let epoch_at_enqueue = self.epoch();
        let mut accepted = 0usize;
        let mut rejected = 0usize;
        for event in events {
            match self.shared.queue.try_push(event) {
                Ok(()) => {
                    accepted += 1;
                    self.shared.events_enqueued.fetch_add(1, Ordering::Release);
                }
                Err(PushError::Overloaded) | Err(PushError::Closed) => rejected += 1,
            }
        }
        self.shared
            .metrics
            .events_accepted
            .fetch_add(accepted as u64, Ordering::Relaxed);
        self.shared
            .metrics
            .events_rejected
            .fetch_add(rejected as u64, Ordering::Relaxed);
        InjectReply {
            accepted,
            rejected,
            epoch_at_enqueue,
        }
    }

    /// Live counters and latency percentiles.
    pub fn stats(&self) -> StatsReport {
        let m = &self.shared.metrics;
        m.meta_requests.fetch_add(1, Ordering::Relaxed);
        let samples = m.staleness_samples.load(Ordering::Relaxed);
        StatsReport {
            epoch: self.epoch(),
            epochs_published: m.epochs_published.load(Ordering::Relaxed),
            batches: m.batches.load(Ordering::Relaxed),
            events_accepted: m.events_accepted.load(Ordering::Relaxed),
            events_rejected: m.events_rejected.load(Ordering::Relaxed),
            events_applied: m.events_applied.load(Ordering::Relaxed),
            events_discarded: m.events_discarded.load(Ordering::Relaxed),
            queue_depth: self.shared.queue.len(),
            queue_capacity: self.shared.queue.capacity(),
            route: m.route.report(),
            route_len: m.route_len.report(),
            status: m.status.report(),
            staleness_mean_epochs: if samples == 0 {
                0.0
            } else {
                m.staleness_sum.load(Ordering::Relaxed) as f64 / samples as f64
            },
            staleness_max_epochs: m.staleness_max.load(Ordering::Relaxed),
            publish_lag_ns: m.epoch_publish_lag.percentiles(),
        }
    }

    /// The Prometheus text-format exposition page: the service's own
    /// families followed by the process-global `ocp-obs` registry (labeling
    /// phases, executors, chaos counters).
    pub fn metrics_text(&self) -> String {
        let mut page = prometheus_text(&self.stats());
        page.push_str(&ocp_obs::global().render_prometheus());
        page
    }

    /// The full typed observability report: service stats plus the global
    /// metric registry snapshot and the recent span trace.
    pub fn obs_report(&self) -> ObsReport {
        ObsReport {
            stats: self.stats(),
            registry: ocp_obs::global().snapshot(),
            spans: ocp_obs::tracer().snapshot(),
        }
    }

    /// Serves one typed [`Request`] — the single dispatch point shared by
    /// the TCP layer and any in-process caller that speaks the wire API.
    pub fn dispatch(&mut self, request: Request) -> Response {
        match request {
            Request::Route { src, dst } => Response::Route(self.route(src, dst)),
            Request::RouteLen { src, dst } => Response::RouteLen(self.route_len(src, dst)),
            Request::RouteLenBatch { pairs } => {
                Response::RouteLenBatch(self.route_len_batch(&pairs))
            }
            Request::Batch { requests } => Response::Batch {
                replies: requests.into_iter().map(|r| self.dispatch(r)).collect(),
            },
            Request::Status { node } => Response::Status(self.status(node)),
            Request::InjectFaults { nodes } => Response::Injected(self.inject_faults(&nodes)),
            Request::RepairNodes { nodes } => Response::Injected(self.repair_nodes(&nodes)),
            Request::Stats => Response::Stats(self.stats()),
            Request::MetricsText => Response::MetricsText {
                text: self.metrics_text(),
            },
            Request::ObsReport => Response::Obs(self.obs_report()),
            Request::Epoch => Response::Epoch {
                epoch: self.epoch(),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::NodeState;

    fn c(x: i32, y: i32) -> Coord {
        Coord::new(x, y)
    }

    fn small_service() -> MeshService {
        MeshService::start(Topology::mesh(12, 12), [c(3, 3)], ServeConfig::default())
            .expect("service starts")
    }

    #[test]
    fn serves_routes_against_the_initial_snapshot() {
        let service = small_service();
        let mut h = service.handle();
        let reply = h.route(c(0, 3), c(11, 3));
        assert_eq!(reply.epoch, 0);
        match reply.outcome {
            RouteOutcome::Delivered { hops } => {
                assert_eq!(hops.first(), Some(&c(0, 3)));
                assert_eq!(hops.last(), Some(&c(11, 3)));
            }
            RouteOutcome::Failed { error } => panic!("route failed: {error}"),
        }
        let report = service.shutdown();
        assert_eq!(report.route.requests, 1);
    }

    #[test]
    fn injected_faults_converge_and_change_answers() {
        let service = small_service();
        let mut h = service.handle();
        assert_eq!(h.status(c(7, 7)).state, NodeState::Enabled);
        let ack = h.inject_faults(&[c(7, 7)]);
        assert_eq!((ack.accepted, ack.rejected), (1, 0));
        assert!(service.quiesce(Duration::from_secs(30)), "writer drained");
        assert_eq!(h.status(c(7, 7)).state, NodeState::Faulty);
        assert!(h.epoch() >= 1);
        // The epoch log records exactly what was applied.
        let log = service.epoch_log();
        assert_eq!(log.len(), 1);
        assert_eq!(log[0].faults, vec![c(7, 7)]);
        assert!(log[0].repairs.is_empty());
    }

    #[test]
    fn repairs_flow_through_the_cold_path() {
        let service = small_service();
        let mut h = service.handle();
        let ack = h.repair_nodes(&[c(3, 3)]);
        assert_eq!(ack.accepted, 1);
        assert!(service.quiesce(Duration::from_secs(30)));
        assert_eq!(h.status(c(3, 3)).state, NodeState::Enabled);
        assert_eq!(h.snapshot().map.fault_count(), 0);
    }

    #[test]
    fn invalid_events_are_discarded_not_applied() {
        let service = small_service();
        let h = service.handle();
        // Already faulty, off-machine, and repair-of-healthy: all invalid.
        h.inject_faults(&[c(3, 3), c(99, 99)]);
        h.repair_nodes(&[c(0, 0)]);
        assert!(service.quiesce(Duration::from_secs(30)));
        let stats = h.stats();
        assert_eq!(stats.events_discarded, 3);
        assert_eq!(stats.events_applied, 0);
        assert_eq!(h.epoch(), 0, "no epoch published for all-invalid batches");
    }

    #[test]
    fn admission_control_rejects_overload() {
        let service = MeshService::start(
            Topology::mesh(30, 30),
            [],
            ServeConfig {
                queue_capacity: 4,
                ..ServeConfig::default()
            },
        )
        .unwrap();
        let h = service.handle();
        // Far more events than capacity in one call: some must be
        // rejected (the writer may drain a few concurrently, so the exact
        // split varies, but the queue can never have buffered them all).
        let nodes: Vec<Coord> = (0..200).map(|i| c(i % 30, i / 30)).collect();
        let ack = h.inject_faults(&nodes);
        assert!(ack.rejected > 0, "queue of 4 absorbed 200 events");
        assert_eq!(ack.accepted + ack.rejected, 200);
        let stats = h.stats();
        assert_eq!(stats.events_rejected, ack.rejected as u64);
    }

    #[test]
    fn dispatch_covers_every_request_kind() {
        let service = small_service();
        let mut h = service.handle();
        let cases = [
            Request::Route {
                src: c(0, 0),
                dst: c(5, 5),
            },
            Request::RouteLen {
                src: c(0, 0),
                dst: c(5, 5),
            },
            Request::RouteLenBatch {
                pairs: vec![(c(0, 0), c(5, 5)), (c(1, 0), c(0, 1))],
            },
            Request::Batch {
                requests: vec![Request::Epoch, Request::Stats],
            },
            Request::Status { node: c(3, 3) },
            Request::InjectFaults { nodes: vec![] },
            Request::RepairNodes { nodes: vec![] },
            Request::Stats,
            Request::MetricsText,
            Request::ObsReport,
            Request::Epoch,
        ];
        for request in cases {
            let response = h.dispatch(request.clone());
            assert!(
                !matches!(response, Response::Error { .. }),
                "{request:?} errored"
            );
        }
    }

    #[test]
    fn batched_route_len_matches_singletons() {
        let service = small_service();
        let mut h = service.handle();
        let pairs = [
            (c(0, 0), c(11, 11)),
            (c(0, 3), c(11, 3)),
            (c(3, 3), c(0, 0)), // endpoint faulty: error outcome
            (c(5, 5), c(5, 5)),
        ];
        let batch = h.route_len_batch(&pairs);
        assert_eq!(batch.epoch, 0);
        assert_eq!(batch.outcomes.len(), pairs.len());
        for (&(src, dst), outcome) in pairs.iter().zip(&batch.outcomes) {
            assert_eq!(outcome, &h.route_len(src, dst).outcome, "{src}->{dst}");
        }
        let stats = h.stats();
        // 4 batched + 4 singleton requests; one error in each pass.
        assert_eq!(stats.route_len.requests, 8);
        assert_eq!(stats.route_len.errors, 2);
        // Batched metrics are amortized: one latency sample for the whole
        // batch, then one per singleton success.
        assert_eq!(stats.route_len.latency_ns.n, 4);
    }

    #[test]
    fn batch_request_dispatches_inner_requests_in_order() {
        let service = small_service();
        let mut h = service.handle();
        let response = h.dispatch(Request::Batch {
            requests: vec![
                Request::Epoch,
                Request::RouteLen {
                    src: c(0, 0),
                    dst: c(2, 0),
                },
                Request::RouteLenBatch {
                    pairs: vec![(c(0, 0), c(1, 0))],
                },
            ],
        });
        let Response::Batch { replies } = response else {
            panic!("expected batch response");
        };
        assert_eq!(replies.len(), 3);
        assert_eq!(replies[0], Response::Epoch { epoch: 0 });
        match &replies[1] {
            Response::RouteLen(r) => {
                assert_eq!(r.outcome, RouteLenOutcome::Delivered { len: 2 })
            }
            other => panic!("expected route_len reply, got {other:?}"),
        }
        match &replies[2] {
            Response::RouteLenBatch(r) => {
                assert_eq!(r.outcomes, vec![RouteLenOutcome::Delivered { len: 1 }])
            }
            other => panic!("expected route_len_batch reply, got {other:?}"),
        }
    }

    #[test]
    fn error_replies_skip_the_latency_histogram() {
        let service = small_service();
        let mut h = service.handle();
        h.route(c(3, 3), c(0, 0)); // faulty endpoint: fast-fail
        h.route(c(0, 0), c(1, 1));
        let stats = h.stats();
        assert_eq!(stats.route.requests, 2);
        assert_eq!(stats.route.errors, 1);
        assert_eq!(
            stats.route.latency_ns.n, 1,
            "fast-fail replies must not pollute latency percentiles"
        );
        let page = h.metrics_text();
        assert!(
            page.contains("ocp_serve_errors_total{endpoint=\"route\"} 1"),
            "{page}"
        );
    }

    #[test]
    fn publish_lag_and_scrape_reflect_published_epochs() {
        let service = small_service();
        let h = service.handle();
        h.inject_faults(&[c(8, 8)]);
        assert!(service.quiesce(Duration::from_secs(30)));
        let stats = h.stats();
        assert_eq!(
            stats.publish_lag_ns.n as u64, stats.epochs_published,
            "one lag sample per published epoch"
        );
        assert!(stats.publish_lag_ns.p50 > 0.0, "relabeling takes time");
        let page = h.metrics_text();
        assert!(page.contains("ocp_serve_publish_lag_ns_count 1"), "{page}");
        assert!(
            page.contains("ocp_serve_epochs_published_total 1"),
            "{page}"
        );
        let report = h.obs_report();
        assert_eq!(report.stats.epoch, h.epoch());
    }

    #[test]
    fn batches_coalesce_into_few_epochs() {
        let service = MeshService::start(
            Topology::mesh(20, 20),
            [],
            ServeConfig {
                batch_max: 64,
                ..ServeConfig::default()
            },
        )
        .unwrap();
        let h = service.handle();
        let nodes: Vec<Coord> = (0..12).map(|i| c(1 + i, 1 + i)).collect();
        let ack = h.inject_faults(&nodes);
        assert_eq!(ack.accepted, 12);
        assert!(service.quiesce(Duration::from_secs(30)));
        let stats = h.stats();
        assert_eq!(stats.events_applied, 12);
        // 12 events never need 12 epochs: the writer coalesces.
        assert!(
            stats.epochs_published <= 12,
            "published {} epochs",
            stats.epochs_published
        );
        let report = service.shutdown();
        assert_eq!(report.events_applied, 12);
    }

    #[test]
    fn stale_handle_refreshes_on_next_query() {
        let service = small_service();
        let mut reader = service.handle();
        assert_eq!(reader.route(c(0, 0), c(1, 1)).epoch, 0);
        let writer_side = service.handle();
        writer_side.inject_faults(&[c(8, 8)]);
        assert!(service.quiesce(Duration::from_secs(30)));
        // The stale reader picks up the new epoch on its next query.
        assert_eq!(reader.route(c(0, 0), c(1, 1)).epoch, 1);
    }
}
