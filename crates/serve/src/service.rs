//! The long-lived mesh-state service: one writer, many lock-free readers.
//!
//! ## Architecture
//!
//! * **Epoch snapshots.** The current machine state lives in an immutable
//!   [`Snapshot`] behind an `Arc`. A single head pointer (epoch counter +
//!   slot) is advanced by the writer; it is never mutated in place.
//! * **Lock-free read hot path.** Every [`ServiceHandle`] caches an
//!   `Arc<Snapshot>`. Serving a query is: one relaxed-cost atomic load of
//!   the head epoch, an equality check, and then pure reads against the
//!   cached snapshot. The publication mutex is touched **only** when the
//!   epoch actually advanced (once per publication per handle, never per
//!   query), and only long enough to clone an `Arc`. Queries therefore
//!   never contend with each other, and never block on the writer's
//!   relabeling work.
//! * **Single writer, batched ingestion.** Fault/repair events enter a
//!   bounded queue ([`BoundedQueue`]) with explicit `Overloaded`
//!   rejection. The writer drains up to `batch_max` events at a time,
//!   validates them against the current map, re-converges via the
//!   warm-start maintenance path, and publishes one new snapshot per
//!   batch — coalescing is what keeps epoch churn (and reader refresh
//!   cost) proportional to load, not to event count.

use crate::api::CertificateReply;
use crate::api::{
    InjectReply, Request, Response, RouteDisjointOutcome, RouteDisjointReply, RouteLenBatchReply,
    RouteLenOutcome, RouteLenReply, RouteOutcome, RouteReply, StatusReply,
};
use crate::metrics::{prometheus_text, Metrics, ObsReport, StatsReport};
use crate::queue::{BoundedQueue, PushError};
use crate::snapshot::{EventBatch, Snapshot};
use crate::wal::{Wal, WalRecord};
use ocp_core::certificate::{outcome_digest, EpochCertificate};
use ocp_core::prelude::*;
use ocp_mesh::{Coord, Topology};
use std::fmt;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How the writer treats publish-time certificates.
///
/// In `Enforce` (the default) every candidate snapshot is distilled into
/// an [`EpochCertificate`] and independently re-checked before the atomic
/// publish; a failing warm snapshot triggers one cold recompute of the
/// same epoch, and if that fails too the batch is refused — readers keep
/// the last certified epoch and never observe a skipped epoch number.
///
/// ```
/// use ocp_serve::{CertMode, ServeConfig};
///
/// // Certificates are enforced unless explicitly relaxed.
/// assert_eq!(ServeConfig::default().cert_mode, CertMode::Enforce);
/// let relaxed = ServeConfig {
///     cert_mode: CertMode::Warn,
///     ..ServeConfig::default()
/// };
/// assert_ne!(relaxed.cert_mode, CertMode::Off);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum CertMode {
    /// No certificates: zero publish-path overhead, no audit trail.
    Off,
    /// Produce and check certificates; on failure count
    /// `ocp_serve_cert_failures_total` and publish anyway (uncertified).
    Warn,
    /// Produce, check, and **gate**: refuse the publish unless a
    /// certificate validates (warm attempt, then one cold recompute).
    Enforce,
}

/// Deterministic failure injection for the certificate gate, so the
/// reject paths are testable without manufacturing a genuinely broken
/// labeling engine. Production services leave this `Off`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CertChaos {
    /// No injected failures.
    Off,
    /// Every `n`-th non-empty batch fails its warm certificate check,
    /// forcing the cold-recompute fallback (which succeeds).
    RejectWarmEveryNth(u64),
    /// Every `n`-th non-empty batch fails both the warm and the cold
    /// check: in `Enforce` the batch is refused outright.
    RejectBatchEveryNth(u64),
}

impl CertChaos {
    fn fail_warm(self, attempt: u64) -> bool {
        match self {
            CertChaos::Off => false,
            CertChaos::RejectWarmEveryNth(n) | CertChaos::RejectBatchEveryNth(n) => {
                n != 0 && attempt.is_multiple_of(n)
            }
        }
    }

    fn fail_cold(self, attempt: u64) -> bool {
        matches!(self, CertChaos::RejectBatchEveryNth(n) if n != 0 && attempt.is_multiple_of(n))
    }
}

/// Tuning knobs of a [`MeshService`].
#[derive(Clone, Copy, Debug)]
pub struct ServeConfig {
    /// Labeling pipeline configuration (rule, engine, round cap). The
    /// default picks the bit-packed labeling engine — every engine
    /// produces identical snapshots, so this only shortens the writer's
    /// relabel critical section (measured in experiment E15).
    pub pipeline: PipelineConfig,
    /// Admission-control capacity of the fault/repair event queue.
    pub queue_capacity: usize,
    /// Maximum events coalesced into one published epoch.
    pub batch_max: usize,
    /// Publish-time certificate policy (see [`CertMode`]). Defaults to
    /// [`CertMode::Enforce`]; E18 measures the overhead at ≤10% of the
    /// publish path on a 256² mesh at 10% fault density.
    pub cert_mode: CertMode,
    /// Deterministic certificate-failure injection for tests and chaos
    /// drills (see [`CertChaos`]). Defaults to [`CertChaos::Off`].
    pub cert_chaos: CertChaos,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            pipeline: PipelineConfig {
                engine: LabelEngine::bitboard(),
                ..PipelineConfig::default()
            },
            queue_capacity: 1024,
            batch_max: 64,
            cert_mode: CertMode::Enforce,
            cert_chaos: CertChaos::Off,
        }
    }
}

/// Why [`MeshService::recover`] (or [`MeshService::start_durable`]) could
/// not produce a running service.
#[derive(Debug)]
pub enum RecoverError {
    /// The WAL file could not be read or written.
    Io(std::io::Error),
    /// Relabeling failed to converge while replaying the log (a bug
    /// upstream — the round caps are diameter-derived).
    Convergence(ConvergenceError),
    /// The log's intact prefix is not a valid epoch history (missing
    /// `Init`, non-sequential epochs, or a digest that the replayed
    /// snapshot does not reproduce).
    Corrupt(String),
}

impl fmt::Display for RecoverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecoverError::Io(e) => write!(f, "WAL I/O error: {e}"),
            RecoverError::Convergence(e) => write!(f, "replay failed to converge: {e}"),
            RecoverError::Corrupt(why) => write!(f, "WAL corrupt: {why}"),
        }
    }
}

impl std::error::Error for RecoverError {}

/// A fault or repair event flowing through the writer queue.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Event {
    /// The node crashed.
    Fault(Coord),
    /// The node came back to life.
    Repair(Coord),
}

/// What one published epoch applied — the service's audit log, and the
/// ground truth the consistency tests replay.
#[derive(Clone, Debug)]
pub struct EpochRecord {
    /// The epoch this batch produced.
    pub epoch: u64,
    /// Faults applied in this batch.
    pub faults: Vec<Coord>,
    /// Repairs applied in this batch.
    pub repairs: Vec<Coord>,
    /// Warm phase-1 rounds the relabeling needed (0 for cold reruns).
    pub warm_rounds: u32,
    /// The publish-time certificate the epoch shipped with (`None` with
    /// [`CertMode::Off`], or for an uncertified [`CertMode::Warn`]
    /// publish).
    pub certificate: Option<EpochCertificate>,
}

struct Shared {
    /// Epoch of the newest published snapshot (the read hot path's only
    /// synchronization point).
    head_epoch: AtomicU64,
    /// The newest published snapshot. Readers lock this only when
    /// `head_epoch` says their cache is stale; the critical section is one
    /// `Arc::clone`.
    head: Mutex<Arc<Snapshot>>,
    metrics: Metrics,
    queue: BoundedQueue<Event>,
    /// Events admitted to the queue, ever.
    events_enqueued: AtomicU64,
    /// Events the writer has finished with (applied or discarded).
    events_settled: AtomicU64,
    epoch_log: Mutex<Vec<EpochRecord>>,
    batch_max: usize,
    /// Certificate of the epoch-0 snapshot (the epoch log only records
    /// applied batches, so the genesis certificate lives here).
    genesis_cert: Option<EpochCertificate>,
}

/// The service: owns the writer thread and the shared state.
///
/// Obtain [`ServiceHandle`]s via [`MeshService::handle`] to serve queries
/// from any number of threads; call [`MeshService::shutdown`] for a clean
/// stop (close queue → drain → join writer).
pub struct MeshService {
    shared: Arc<Shared>,
    config: ServeConfig,
    writer: Option<JoinHandle<()>>,
}

impl MeshService {
    /// Cold-labels `topology` under `initial_faults` and starts the writer
    /// (no durability — see [`MeshService::start_durable`] for the
    /// WAL-backed variant).
    pub fn start(
        topology: Topology,
        initial_faults: impl IntoIterator<Item = Coord>,
        config: ServeConfig,
    ) -> Result<Self, ConvergenceError> {
        let map = FaultMap::new(topology, initial_faults);
        let initial = Arc::new(Snapshot::cold(0, map, &config.pipeline)?);
        Ok(Self::launch(initial, config, None, Vec::new()))
    }

    /// Like [`MeshService::start`], but every applied batch is appended to
    /// a fresh write-ahead log at `wal_path` (truncating any existing
    /// file) and fsynced **before** the epoch becomes visible to readers.
    /// A crashed service is resurrected from the log with
    /// [`MeshService::recover`].
    pub fn start_durable(
        topology: Topology,
        initial_faults: impl IntoIterator<Item = Coord>,
        config: ServeConfig,
        wal_path: impl AsRef<Path>,
    ) -> Result<Self, RecoverError> {
        let map = FaultMap::new(topology, initial_faults);
        let initial =
            Arc::new(Snapshot::cold(0, map, &config.pipeline).map_err(RecoverError::Convergence)?);
        let digest = if config.cert_mode == CertMode::Off {
            0
        } else {
            outcome_digest(&initial.map, &initial.outcome)
        };
        let init = WalRecord::Init {
            topology,
            faults: initial.map.faults(),
            rule: config.pipeline.rule,
            digest,
        };
        let wal = Wal::create(wal_path, &init).map_err(RecoverError::Io)?;
        Ok(Self::launch(initial, config, Some(wal), Vec::new()))
    }

    /// Resurrects a service from its write-ahead log: replays every intact
    /// record through the ordinary epoch pipeline (tolerating a torn
    /// tail), validates each stored certificate digest against the
    /// replayed snapshot, and resumes serving — and logging into the same
    /// file — at the terminal epoch. Replay determinism (the PR-1
    /// cold-oracle property) guarantees the recovered terminal snapshot is
    /// field-identical to the pre-crash one.
    ///
    /// The safety rule recorded in the log overrides
    /// `config.pipeline.rule`: a log must be replayed under the rule that
    /// produced it.
    pub fn recover(
        wal_path: impl AsRef<Path>,
        mut config: ServeConfig,
    ) -> Result<Self, RecoverError> {
        let (wal, records) = Wal::open(wal_path).map_err(RecoverError::Io)?;
        let mut records = records.into_iter();
        let Some(WalRecord::Init {
            topology,
            faults,
            rule,
            digest,
        }) = records.next()
        else {
            return Err(RecoverError::Corrupt(
                "log does not start with an Init record".into(),
            ));
        };
        config.pipeline.rule = rule;
        let map = FaultMap::new(topology, faults);
        let mut current =
            Snapshot::cold(0, map, &config.pipeline).map_err(RecoverError::Convergence)?;
        if digest != 0 && outcome_digest(&current.map, &current.outcome) != digest {
            return Err(RecoverError::Corrupt(
                "epoch 0 digest does not match the replayed snapshot".into(),
            ));
        }

        let mut log = Vec::new();
        for record in records {
            let WalRecord::Batch {
                epoch,
                faults,
                repairs,
                cert_digest,
            } = record
            else {
                return Err(RecoverError::Corrupt("second Init record".into()));
            };
            if epoch != current.epoch + 1 {
                return Err(RecoverError::Corrupt(format!(
                    "epoch {epoch} follows epoch {}",
                    current.epoch
                )));
            }
            let batch = EventBatch { faults, repairs };
            let next = current
                .apply(&batch, &config.pipeline)
                .map_err(RecoverError::Convergence)?;
            if cert_digest != 0 && outcome_digest(&next.map, &next.outcome) != cert_digest {
                return Err(RecoverError::Corrupt(format!(
                    "epoch {epoch} digest does not match the replayed snapshot"
                )));
            }
            let warm_rounds = if batch.repairs.is_empty() {
                next.outcome.safety_trace.rounds()
            } else {
                0
            };
            // A zero digest marks an epoch that was originally published
            // uncertified (CertMode::Off, or a Warn-mode publish whose
            // check failed); re-deriving a certificate for it would make
            // the recovered audit log claim artifacts that never existed.
            let certificate = (config.cert_mode != CertMode::Off && cert_digest != 0)
                .then(|| EpochCertificate::describe(epoch, &next.map, &next.outcome));
            log.push(EpochRecord {
                epoch,
                faults: batch.faults,
                repairs: batch.repairs,
                warm_rounds,
                certificate,
            });
            current = next;
        }
        Ok(Self::launch(Arc::new(current), config, Some(wal), log))
    }

    /// Wires up the shared state and spawns the writer. `initial` is the
    /// head snapshot (epoch 0 on a fresh start, the replayed terminal
    /// epoch on recovery); `log` is the rebuilt audit log on recovery.
    fn launch(
        initial: Arc<Snapshot>,
        config: ServeConfig,
        wal: Option<Wal>,
        log: Vec<EpochRecord>,
    ) -> Self {
        let genesis_cert = match (config.cert_mode, initial.epoch) {
            (CertMode::Off, _) => None,
            // On recovery past epoch 0 the genesis snapshot is gone; its
            // batches were digest-validated during replay instead.
            (_, epoch) if epoch > 0 => None,
            _ => Some(EpochCertificate::describe(
                0,
                &initial.map,
                &initial.outcome,
            )),
        };
        let shared = Arc::new(Shared {
            head_epoch: AtomicU64::new(initial.epoch),
            head: Mutex::new(initial.clone()),
            metrics: Metrics::default(),
            queue: BoundedQueue::new(config.queue_capacity),
            events_enqueued: AtomicU64::new(0),
            events_settled: AtomicU64::new(0),
            epoch_log: Mutex::new(log),
            batch_max: config.batch_max,
            genesis_cert,
        });
        if let Some(cert) = &shared.genesis_cert {
            if cert.check(&initial.map, &initial.outcome).is_err() {
                // The cold pipeline is verified by the whole test suite;
                // this firing means a certificate-layer bug, not a bad
                // machine state. Count it — epoch 0 must exist regardless.
                shared.metrics.cert_failures.fetch_add(1, Ordering::Relaxed);
                eprintln!("ocp-serve: genesis certificate failed its own check");
            }
        }
        let writer = {
            let shared = shared.clone();
            std::thread::Builder::new()
                .name("ocp-serve-writer".into())
                .spawn(move || writer_loop(shared, initial, config, wal))
                .expect("spawn writer thread")
        };
        Self {
            shared,
            config,
            writer: Some(writer),
        }
    }

    /// A new query handle bound to the current head snapshot.
    pub fn handle(&self) -> ServiceHandle {
        ServiceHandle {
            cached: self.shared.head.lock().expect("head lock").clone(),
            shared: self.shared.clone(),
            scratch: ocp_routing::RouteScratch::new(),
            batch_results: Vec::new(),
        }
    }

    /// The service configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// The audit log: one record per published epoch, in order.
    pub fn epoch_log(&self) -> Vec<EpochRecord> {
        self.shared
            .epoch_log
            .lock()
            .expect("epoch log lock")
            .clone()
    }

    /// Blocks until every admitted event has been applied or discarded, or
    /// the deadline passes; returns whether quiescence was reached.
    pub fn quiesce(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        loop {
            let enqueued = self.shared.events_enqueued.load(Ordering::Acquire);
            let settled = self.shared.events_settled.load(Ordering::Acquire);
            if settled >= enqueued {
                return true;
            }
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    /// Clean shutdown: stop admitting events, let the writer drain the
    /// backlog, join it, and return the final stats.
    pub fn shutdown(mut self) -> StatsReport {
        self.shared.queue.close();
        if let Some(writer) = self.writer.take() {
            writer.join().expect("writer thread panicked");
        }
        self.handle().stats()
    }
}

impl Drop for MeshService {
    fn drop(&mut self) {
        self.shared.queue.close();
        if let Some(writer) = self.writer.take() {
            let _ = writer.join();
        }
    }
}

/// The writer: drain → validate → relabel → certify → log → publish,
/// until closed.
fn writer_loop(
    shared: Arc<Shared>,
    mut current: Arc<Snapshot>,
    config: ServeConfig,
    mut wal: Option<Wal>,
) {
    let pipeline = config.pipeline;
    // Non-empty batches processed, the clock the chaos injector ticks on.
    let mut attempt = 0u64;
    while let Some(first) = shared.queue.recv() {
        let mut events = vec![first];
        shared
            .queue
            .drain_up_to(shared.batch_max.saturating_sub(1), &mut events);
        let drained = events.len() as u64;
        shared.metrics.batches.fetch_add(1, Ordering::Relaxed);

        // Validate against the current map; duplicates within the batch
        // and events that no longer make sense are discarded (a fault for
        // an already-faulty node, a repair for a healthy one).
        let mut batch = EventBatch::default();
        let mut discarded = 0u64;
        for event in events {
            let valid = match event {
                Event::Fault(c) => {
                    current.map.topology().contains(c)
                        && !current.map.is_faulty(c)
                        && !batch.faults.contains(&c)
                }
                Event::Repair(c) => {
                    current.map.is_faulty(c)
                        && !batch.repairs.contains(&c)
                        && !batch.faults.contains(&c)
                }
            };
            if !valid {
                discarded += 1;
                continue;
            }
            match event {
                Event::Fault(c) => batch.faults.push(c),
                Event::Repair(c) => batch.repairs.push(c),
            }
        }
        shared
            .metrics
            .events_discarded
            .fetch_add(discarded, Ordering::Relaxed);

        if !batch.is_empty() {
            attempt += 1;
            // Publication lag: relabel + certify + log + publish time, from
            // the moment the batch is assembled to the moment readers can
            // see the epoch.
            let publish_start = Instant::now();
            match current.apply(&batch, &pipeline) {
                Ok(candidate) => {
                    let mut next = candidate;
                    let mut warm_rounds = if batch.repairs.is_empty() {
                        next.outcome.safety_trace.rounds()
                    } else {
                        0
                    };
                    // Certificate gate: distill, then independently
                    // re-check before anything becomes visible. A failing
                    // warm snapshot gets one cold recompute of the *same*
                    // epoch; a failing cold one is refused, so readers
                    // never observe an uncertified epoch in Enforce — and
                    // never a skipped epoch number either, because the
                    // counter only advances on publish.
                    let mut certificate = None;
                    let mut rejected = false;
                    if config.cert_mode != CertMode::Off {
                        let cert = EpochCertificate::describe(next.epoch, &next.map, &next.outcome);
                        let warm_ok = cert.check(&next.map, &next.outcome).is_ok()
                            && !config.cert_chaos.fail_warm(attempt);
                        if warm_ok {
                            certificate = Some(cert);
                        } else {
                            shared.metrics.cert_failures.fetch_add(1, Ordering::Relaxed);
                            if config.cert_mode == CertMode::Enforce {
                                match Snapshot::cold(next.epoch, next.map.clone(), &pipeline) {
                                    Ok(cold) => {
                                        let cert = EpochCertificate::describe(
                                            cold.epoch,
                                            &cold.map,
                                            &cold.outcome,
                                        );
                                        let cold_ok = cert.check(&cold.map, &cold.outcome).is_ok()
                                            && !config.cert_chaos.fail_cold(attempt);
                                        if cold_ok {
                                            next = cold;
                                            warm_rounds = 0;
                                            certificate = Some(cert);
                                        } else {
                                            shared
                                                .metrics
                                                .cert_failures
                                                .fetch_add(1, Ordering::Relaxed);
                                            rejected = true;
                                        }
                                    }
                                    Err(_) => rejected = true,
                                }
                            }
                            // Warn: count the failure, publish uncertified.
                        }
                    }
                    if rejected {
                        shared
                            .metrics
                            .publishes_cert_rejected
                            .fetch_add(1, Ordering::Relaxed);
                        shared
                            .metrics
                            .events_discarded
                            .fetch_add(batch.len() as u64, Ordering::Relaxed);
                        eprintln!(
                            "ocp-serve writer: certificate rejected epoch {}, batch dropped",
                            current.epoch + 1
                        );
                    } else if !wal_append(
                        &shared,
                        wal.as_mut(),
                        &next,
                        &batch,
                        certificate.as_ref(),
                    ) {
                        // Write-ahead failed: the epoch must not become
                        // visible without being durable first.
                        shared
                            .metrics
                            .publishes_overloaded
                            .fetch_add(1, Ordering::Relaxed);
                        shared
                            .metrics
                            .events_discarded
                            .fetch_add(batch.len() as u64, Ordering::Relaxed);
                    } else {
                        let next = Arc::new(next);
                        {
                            // Publish: slot first, then epoch, inside the same
                            // critical section — a reader that observes the new
                            // epoch is guaranteed to find a snapshot at least
                            // that new in the slot.
                            let mut head = shared.head.lock().expect("head lock");
                            *head = next.clone();
                            shared.head_epoch.store(next.epoch, Ordering::Release);
                        }
                        shared
                            .metrics
                            .epoch_publish_lag
                            .record(publish_start.elapsed().as_nanos() as u64);
                        shared.metrics.record_index_build(&next.build);
                        shared
                            .metrics
                            .events_applied
                            .fetch_add(batch.len() as u64, Ordering::Relaxed);
                        shared
                            .metrics
                            .epochs_published
                            .fetch_add(1, Ordering::Relaxed);
                        shared
                            .epoch_log
                            .lock()
                            .expect("epoch log lock")
                            .push(EpochRecord {
                                epoch: next.epoch,
                                faults: batch.faults.clone(),
                                repairs: batch.repairs.clone(),
                                warm_rounds,
                                certificate,
                            });
                        current = next;
                    }
                }
                Err(e) => {
                    // A convergence stall is a bug upstream (the round cap
                    // is diameter-derived); keep serving the last good
                    // snapshot and account the batch as discarded.
                    shared
                        .metrics
                        .publishes_overloaded
                        .fetch_add(1, Ordering::Relaxed);
                    shared
                        .metrics
                        .events_discarded
                        .fetch_add(batch.len() as u64, Ordering::Relaxed);
                    eprintln!("ocp-serve writer: relabeling failed, batch dropped: {e}");
                }
            }
        }
        shared.events_settled.fetch_add(drained, Ordering::Release);
    }
}

/// Appends + fsyncs one batch record ahead of its publish. Returns false
/// when the WAL write failed (the batch must then be dropped — durability
/// is a precondition of visibility). A failed append is rolled back to
/// the pre-append offset: left in place, a fully-written record for the
/// never-published epoch would collide with the next publish's reuse of
/// the same epoch number (recovery then fails on the duplicate), and torn
/// bytes would masquerade as a torn tail and swallow every later record
/// on open. If the rollback itself fails the log poisons itself and every
/// further batch is refused — durable publishing halts loudly rather than
/// silently degrading. A service without a WAL trivially succeeds.
fn wal_append(
    shared: &Shared,
    wal: Option<&mut Wal>,
    next: &Snapshot,
    batch: &EventBatch,
    certificate: Option<&EpochCertificate>,
) -> bool {
    let Some(wal) = wal else { return true };
    let digest = certificate.map_or(0, |c| c.grid_digest);
    let record = WalRecord::batch(next.epoch, batch, digest);
    let pre_append = wal.offset();
    let append_start = Instant::now();
    let appended = wal.append(&record);
    shared
        .metrics
        .wal_append_ns
        .record(append_start.elapsed().as_nanos() as u64);
    let result = appended.and_then(|()| {
        let fsync_start = Instant::now();
        let synced = wal.sync();
        shared
            .metrics
            .wal_fsync_ns
            .record(fsync_start.elapsed().as_nanos() as u64);
        synced
    });
    match result {
        Ok(()) => true,
        Err(e) => {
            match wal.rollback(pre_append) {
                Ok(()) => {
                    eprintln!(
                        "ocp-serve writer: WAL write failed, batch dropped \
                         and log rolled back: {e}"
                    );
                }
                Err(roll) => {
                    eprintln!(
                        "ocp-serve writer: WAL write failed ({e}) and rollback \
                         failed ({roll}); durable publishing halted — all \
                         further batches will be dropped"
                    );
                }
            }
            false
        }
    }
}

/// A cloneable query handle over the service.
///
/// Read methods take `&mut self` only to refresh the handle's cached
/// snapshot pointer; they never lock on the hot path (see the module
/// docs). A handle is `Send`, so spawn one per worker thread.
pub struct ServiceHandle {
    shared: Arc<Shared>,
    cached: Arc<Snapshot>,
    scratch: ocp_routing::RouteScratch,
    /// Reusable result staging for the batched read path.
    batch_results: Vec<Result<usize, ocp_routing::RoutingError>>,
}

impl Clone for ServiceHandle {
    fn clone(&self) -> Self {
        Self {
            shared: self.shared.clone(),
            cached: self.cached.clone(),
            scratch: ocp_routing::RouteScratch::new(),
            batch_results: Vec::new(),
        }
    }
}

impl ServiceHandle {
    /// Hot path: one atomic load; the mutex is taken only when a new epoch
    /// was actually published since this handle last looked.
    fn refresh(&mut self) {
        let head = self.shared.head_epoch.load(Ordering::Acquire);
        if self.cached.epoch != head {
            self.cached = self.shared.head.lock().expect("head lock").clone();
        }
    }

    /// Records how far behind head the just-served epoch was.
    fn note_staleness(&self, served_epoch: u64) {
        let head = self.shared.head_epoch.load(Ordering::Relaxed);
        self.shared
            .metrics
            .record_staleness(head.saturating_sub(served_epoch));
    }

    /// The snapshot the next query would be served against.
    pub fn snapshot(&mut self) -> Arc<Snapshot> {
        self.refresh();
        self.cached.clone()
    }

    /// Current head epoch.
    pub fn epoch(&self) -> u64 {
        self.shared.head_epoch.load(Ordering::Acquire)
    }

    /// Full fault-tolerant route between two nodes.
    pub fn route(&mut self, src: Coord, dst: Coord) -> RouteReply {
        let start = Instant::now();
        self.refresh();
        let outcome = match self.cached.router.route(src, dst) {
            Ok(path) => RouteOutcome::Delivered { hops: path.hops },
            Err(error) => RouteOutcome::Failed { error },
        };
        match &outcome {
            RouteOutcome::Delivered { .. } => self
                .shared
                .metrics
                .route
                .record(start.elapsed().as_nanos() as u64),
            RouteOutcome::Failed { .. } => self.shared.metrics.route.record_error(),
        }
        let reply = RouteReply {
            epoch: self.cached.epoch,
            outcome,
        };
        self.note_staleness(reply.epoch);
        reply
    }

    /// Up to `k` pairwise vertex-disjoint routes between two nodes,
    /// answered against one snapshot with the handle's persistent
    /// scratch. At `k == 1` the reply is byte-identical to what
    /// [`route`](ServiceHandle::route) returns, and the query fails
    /// exactly when `route` fails, with the same error.
    pub fn route_disjoint(&mut self, src: Coord, dst: Coord, k: usize) -> RouteDisjointReply {
        let start = Instant::now();
        self.refresh();
        let outcome = match self
            .cached
            .router
            .route_disjoint_with(src, dst, k, &mut self.scratch)
        {
            Ok(routes) => RouteDisjointOutcome::Delivered {
                paths: routes.paths.into_iter().map(|p| p.hops).collect(),
                stretch: routes.stretch,
            },
            Err(error) => RouteDisjointOutcome::Failed { error },
        };
        match &outcome {
            RouteDisjointOutcome::Delivered { .. } => self
                .shared
                .metrics
                .route_disjoint
                .record(start.elapsed().as_nanos() as u64),
            RouteDisjointOutcome::Failed { .. } => {
                self.shared.metrics.route_disjoint.record_error()
            }
        }
        let reply = RouteDisjointReply {
            epoch: self.cached.epoch,
            outcome,
        };
        self.note_staleness(reply.epoch);
        reply
    }

    /// Hop count only (no path allocation).
    pub fn route_len(&mut self, src: Coord, dst: Coord) -> RouteLenReply {
        let start = Instant::now();
        self.refresh();
        let outcome = match self.cached.router.route_len(src, dst) {
            Ok(len) => RouteLenOutcome::Delivered { len },
            Err(error) => RouteLenOutcome::Failed { error },
        };
        match &outcome {
            RouteLenOutcome::Delivered { .. } => self
                .shared
                .metrics
                .route_len
                .record(start.elapsed().as_nanos() as u64),
            RouteLenOutcome::Failed { .. } => self.shared.metrics.route_len.record_error(),
        }
        let reply = RouteLenReply {
            epoch: self.cached.epoch,
            outcome,
        };
        self.note_staleness(reply.epoch);
        reply
    }

    /// Many hop counts against **one** snapshot: the batched read fast
    /// path. The snapshot is refreshed once and the whole batch runs
    /// through the router's wide (SIMD-lane) batch engine with the
    /// handle's persistent scratch — SoA staging buffers and results
    /// vector are reused across batches, so a warmed-up handle performs
    /// no per-query allocation. The reply carries a single epoch tag,
    /// and metrics are amortized: one staleness sample, one mean-latency
    /// sample, and one `batch_width` sample for the whole batch.
    /// Outcomes are field-equal to sequential singleton
    /// [`route_len`](ServiceHandle::route_len) calls against the same
    /// snapshot (the wide engine is byte-identical to the scalar path).
    pub fn route_len_batch(&mut self, pairs: &[(Coord, Coord)]) -> RouteLenBatchReply {
        let start = Instant::now();
        self.refresh();
        self.cached
            .router
            .route_len_batch_with(pairs, &mut self.scratch, &mut self.batch_results);
        let mut errors = 0u64;
        let outcomes: Vec<RouteLenOutcome> = self
            .batch_results
            .iter()
            .map(|res| match res {
                Ok(len) => RouteLenOutcome::Delivered { len: *len },
                Err(error) => {
                    errors += 1;
                    RouteLenOutcome::Failed {
                        error: error.clone(),
                    }
                }
            })
            .collect();
        self.shared.metrics.route_len.record_batch(
            pairs.len() as u64,
            errors,
            start.elapsed().as_nanos() as u64,
        );
        self.shared.metrics.batch_width.record(pairs.len() as u64);
        let reply = RouteLenBatchReply {
            epoch: self.cached.epoch,
            outcomes,
        };
        if !pairs.is_empty() {
            self.note_staleness(reply.epoch);
        }
        reply
    }

    /// Labeled state of one node.
    pub fn status(&mut self, node: Coord) -> StatusReply {
        let start = Instant::now();
        self.refresh();
        let reply = StatusReply {
            epoch: self.cached.epoch,
            node,
            state: self.cached.node_state(node),
        };
        self.shared
            .metrics
            .status
            .record(start.elapsed().as_nanos() as u64);
        self.note_staleness(reply.epoch);
        reply
    }

    /// Enqueues crash events; admission-controlled, never blocking.
    pub fn inject_faults(&self, nodes: &[Coord]) -> InjectReply {
        self.inject(nodes.iter().map(|&c| Event::Fault(c)))
    }

    /// Enqueues repair events; admission-controlled, never blocking.
    pub fn repair_nodes(&self, nodes: &[Coord]) -> InjectReply {
        self.inject(nodes.iter().map(|&c| Event::Repair(c)))
    }

    fn inject(&self, events: impl Iterator<Item = Event>) -> InjectReply {
        let epoch_at_enqueue = self.epoch();
        let mut accepted = 0usize;
        let mut rejected = 0usize;
        for event in events {
            match self.shared.queue.try_push(event) {
                Ok(()) => {
                    accepted += 1;
                    self.shared.events_enqueued.fetch_add(1, Ordering::Release);
                }
                Err(PushError::Overloaded) | Err(PushError::Closed) => rejected += 1,
            }
        }
        self.shared
            .metrics
            .events_accepted
            .fetch_add(accepted as u64, Ordering::Relaxed);
        self.shared
            .metrics
            .events_rejected
            .fetch_add(rejected as u64, Ordering::Relaxed);
        InjectReply {
            accepted,
            rejected,
            epoch_at_enqueue,
        }
    }

    /// Live counters and latency percentiles.
    pub fn stats(&self) -> StatsReport {
        let m = &self.shared.metrics;
        m.meta_requests.fetch_add(1, Ordering::Relaxed);
        let samples = m.staleness_samples.load(Ordering::Relaxed);
        StatsReport {
            epoch: self.epoch(),
            epochs_published: m.epochs_published.load(Ordering::Relaxed),
            batches: m.batches.load(Ordering::Relaxed),
            events_accepted: m.events_accepted.load(Ordering::Relaxed),
            events_rejected: m.events_rejected.load(Ordering::Relaxed),
            events_applied: m.events_applied.load(Ordering::Relaxed),
            events_discarded: m.events_discarded.load(Ordering::Relaxed),
            queue_depth: self.shared.queue.len(),
            queue_capacity: self.shared.queue.capacity(),
            route: m.route.report(),
            route_len: m.route_len.report(),
            route_disjoint: m.route_disjoint.report(),
            batch_width: m.batch_width.percentiles(),
            status: m.status.report(),
            staleness_mean_epochs: if samples == 0 {
                0.0
            } else {
                m.staleness_sum.load(Ordering::Relaxed) as f64 / samples as f64
            },
            staleness_max_epochs: m.staleness_max.load(Ordering::Relaxed),
            publish_lag_ns: m.epoch_publish_lag.percentiles(),
            cert_failures: m.cert_failures.load(Ordering::Relaxed),
            publishes_cert_rejected: m.publishes_cert_rejected.load(Ordering::Relaxed),
            publishes_overloaded: m.publishes_overloaded.load(Ordering::Relaxed),
            wal_append_ns: m.wal_append_ns.percentiles(),
            wal_fsync_ns: m.wal_fsync_ns.percentiles(),
            index_build_segment_ns: m.index_build_segment_ns.percentiles(),
            index_build_ring_ns: m.index_build_ring_ns.percentiles(),
            index_build_wide_ns: m.index_build_wide_ns.percentiles(),
            index_build_exit_ns: m.index_build_exit_ns.percentiles(),
            index_build_total_ns: m.index_build_total_ns.percentiles(),
            index_reuse_ratio: m.index_reuse_ratio(),
        }
    }

    /// The certificate one published epoch shipped with, or `None` when
    /// the epoch is unknown, was published uncertified, or the service
    /// runs with [`CertMode::Off`]. Epoch 0 answers with the genesis
    /// certificate.
    pub fn certificate(&self, epoch: u64) -> Option<EpochCertificate> {
        if epoch == 0 {
            return self.shared.genesis_cert.clone();
        }
        self.shared
            .epoch_log
            .lock()
            .expect("epoch log lock")
            .iter()
            .find(|r| r.epoch == epoch)
            .and_then(|r| r.certificate.clone())
    }

    /// The Prometheus text-format exposition page: the service's own
    /// families followed by the process-global `ocp-obs` registry (labeling
    /// phases, executors, chaos counters).
    pub fn metrics_text(&self) -> String {
        let mut page = prometheus_text(&self.stats());
        page.push_str(&ocp_obs::global().render_prometheus());
        page
    }

    /// The full typed observability report: service stats plus the global
    /// metric registry snapshot and the recent span trace.
    pub fn obs_report(&self) -> ObsReport {
        ObsReport {
            stats: self.stats(),
            registry: ocp_obs::global().snapshot(),
            spans: ocp_obs::tracer().snapshot(),
        }
    }

    /// Serves one typed [`Request`] — the single dispatch point shared by
    /// the TCP layer and any in-process caller that speaks the wire API.
    pub fn dispatch(&mut self, request: Request) -> Response {
        match request {
            Request::Route { src, dst } => Response::Route(self.route(src, dst)),
            Request::RouteLen { src, dst } => Response::RouteLen(self.route_len(src, dst)),
            Request::RouteDisjoint { src, dst, k } => {
                Response::RouteDisjoint(self.route_disjoint(src, dst, k))
            }
            Request::RouteLenBatch { pairs } => {
                Response::RouteLenBatch(self.route_len_batch(&pairs))
            }
            Request::Batch { requests } => Response::Batch {
                replies: requests.into_iter().map(|r| self.dispatch(r)).collect(),
            },
            Request::Status { node } => Response::Status(self.status(node)),
            Request::InjectFaults { nodes } => Response::Injected(self.inject_faults(&nodes)),
            Request::RepairNodes { nodes } => Response::Injected(self.repair_nodes(&nodes)),
            Request::Stats => Response::Stats(self.stats()),
            Request::MetricsText => Response::MetricsText {
                text: self.metrics_text(),
            },
            Request::ObsReport => Response::Obs(self.obs_report()),
            Request::Epoch => Response::Epoch {
                epoch: self.epoch(),
            },
            Request::Certificate { epoch } => Response::Certificate(CertificateReply {
                epoch,
                certificate: self.certificate(epoch),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::NodeState;

    fn c(x: i32, y: i32) -> Coord {
        Coord::new(x, y)
    }

    fn small_service() -> MeshService {
        MeshService::start(Topology::mesh(12, 12), [c(3, 3)], ServeConfig::default())
            .expect("service starts")
    }

    #[test]
    fn serves_routes_against_the_initial_snapshot() {
        let service = small_service();
        let mut h = service.handle();
        let reply = h.route(c(0, 3), c(11, 3));
        assert_eq!(reply.epoch, 0);
        match reply.outcome {
            RouteOutcome::Delivered { hops } => {
                assert_eq!(hops.first(), Some(&c(0, 3)));
                assert_eq!(hops.last(), Some(&c(11, 3)));
            }
            RouteOutcome::Failed { error } => panic!("route failed: {error}"),
        }
        let report = service.shutdown();
        assert_eq!(report.route.requests, 1);
    }

    #[test]
    fn injected_faults_converge_and_change_answers() {
        let service = small_service();
        let mut h = service.handle();
        assert_eq!(h.status(c(7, 7)).state, NodeState::Enabled);
        let ack = h.inject_faults(&[c(7, 7)]);
        assert_eq!((ack.accepted, ack.rejected), (1, 0));
        assert!(service.quiesce(Duration::from_secs(30)), "writer drained");
        assert_eq!(h.status(c(7, 7)).state, NodeState::Faulty);
        assert!(h.epoch() >= 1);
        // The epoch log records exactly what was applied.
        let log = service.epoch_log();
        assert_eq!(log.len(), 1);
        assert_eq!(log[0].faults, vec![c(7, 7)]);
        assert!(log[0].repairs.is_empty());
    }

    #[test]
    fn repairs_flow_through_the_cold_path() {
        let service = small_service();
        let mut h = service.handle();
        let ack = h.repair_nodes(&[c(3, 3)]);
        assert_eq!(ack.accepted, 1);
        assert!(service.quiesce(Duration::from_secs(30)));
        assert_eq!(h.status(c(3, 3)).state, NodeState::Enabled);
        assert_eq!(h.snapshot().map.fault_count(), 0);
    }

    #[test]
    fn invalid_events_are_discarded_not_applied() {
        let service = small_service();
        let h = service.handle();
        // Already faulty, off-machine, and repair-of-healthy: all invalid.
        h.inject_faults(&[c(3, 3), c(99, 99)]);
        h.repair_nodes(&[c(0, 0)]);
        assert!(service.quiesce(Duration::from_secs(30)));
        let stats = h.stats();
        assert_eq!(stats.events_discarded, 3);
        assert_eq!(stats.events_applied, 0);
        assert_eq!(h.epoch(), 0, "no epoch published for all-invalid batches");
    }

    #[test]
    fn admission_control_rejects_overload() {
        let service = MeshService::start(
            Topology::mesh(30, 30),
            [],
            ServeConfig {
                queue_capacity: 4,
                ..ServeConfig::default()
            },
        )
        .unwrap();
        let h = service.handle();
        // Far more events than capacity in one call: some must be
        // rejected (the writer may drain a few concurrently, so the exact
        // split varies, but the queue can never have buffered them all).
        let nodes: Vec<Coord> = (0..200).map(|i| c(i % 30, i / 30)).collect();
        let ack = h.inject_faults(&nodes);
        assert!(ack.rejected > 0, "queue of 4 absorbed 200 events");
        assert_eq!(ack.accepted + ack.rejected, 200);
        let stats = h.stats();
        assert_eq!(stats.events_rejected, ack.rejected as u64);
    }

    #[test]
    fn dispatch_covers_every_request_kind() {
        let service = small_service();
        let mut h = service.handle();
        let cases = [
            Request::Route {
                src: c(0, 0),
                dst: c(5, 5),
            },
            Request::RouteLen {
                src: c(0, 0),
                dst: c(5, 5),
            },
            Request::RouteDisjoint {
                src: c(0, 0),
                dst: c(5, 5),
                k: 2,
            },
            Request::RouteLenBatch {
                pairs: vec![(c(0, 0), c(5, 5)), (c(1, 0), c(0, 1))],
            },
            Request::Batch {
                requests: vec![Request::Epoch, Request::Stats],
            },
            Request::Status { node: c(3, 3) },
            Request::InjectFaults { nodes: vec![] },
            Request::RepairNodes { nodes: vec![] },
            Request::Stats,
            Request::MetricsText,
            Request::ObsReport,
            Request::Epoch,
        ];
        for request in cases {
            let response = h.dispatch(request.clone());
            assert!(
                !matches!(response, Response::Error { .. }),
                "{request:?} errored"
            );
        }
    }

    #[test]
    fn batched_route_len_matches_singletons() {
        let service = small_service();
        let mut h = service.handle();
        let pairs = [
            (c(0, 0), c(11, 11)),
            (c(0, 3), c(11, 3)),
            (c(3, 3), c(0, 0)), // endpoint faulty: error outcome
            (c(5, 5), c(5, 5)),
        ];
        let batch = h.route_len_batch(&pairs);
        assert_eq!(batch.epoch, 0);
        assert_eq!(batch.outcomes.len(), pairs.len());
        for (&(src, dst), outcome) in pairs.iter().zip(&batch.outcomes) {
            assert_eq!(outcome, &h.route_len(src, dst).outcome, "{src}->{dst}");
        }
        let stats = h.stats();
        // 4 batched + 4 singleton requests; one error in each pass.
        assert_eq!(stats.route_len.requests, 8);
        assert_eq!(stats.route_len.errors, 2);
        // Batched metrics are amortized: one latency sample for the whole
        // batch, then one per singleton success.
        assert_eq!(stats.route_len.latency_ns.n, 4);
        // One batch-width sample covering the whole call; singletons
        // don't contribute.
        assert_eq!(stats.batch_width.n, 1);
        // Log-bucketed histogram: a width-4 sample reads back at its
        // bucket's geometric midpoint, so allow the [4, 8) bucket range.
        assert!(
            stats.batch_width.p50 >= 4.0 && stats.batch_width.p50 < 8.0,
            "batch width sample should read back in the [4, 8) bucket, got {}",
            stats.batch_width.p50
        );
    }

    #[test]
    fn batch_request_dispatches_inner_requests_in_order() {
        let service = small_service();
        let mut h = service.handle();
        let response = h.dispatch(Request::Batch {
            requests: vec![
                Request::Epoch,
                Request::RouteLen {
                    src: c(0, 0),
                    dst: c(2, 0),
                },
                Request::RouteLenBatch {
                    pairs: vec![(c(0, 0), c(1, 0))],
                },
            ],
        });
        let Response::Batch { replies } = response else {
            panic!("expected batch response");
        };
        assert_eq!(replies.len(), 3);
        assert_eq!(replies[0], Response::Epoch { epoch: 0 });
        match &replies[1] {
            Response::RouteLen(r) => {
                assert_eq!(r.outcome, RouteLenOutcome::Delivered { len: 2 })
            }
            other => panic!("expected route_len reply, got {other:?}"),
        }
        match &replies[2] {
            Response::RouteLenBatch(r) => {
                assert_eq!(r.outcomes, vec![RouteLenOutcome::Delivered { len: 1 }])
            }
            other => panic!("expected route_len_batch reply, got {other:?}"),
        }
    }

    #[test]
    fn error_replies_skip_the_latency_histogram() {
        let service = small_service();
        let mut h = service.handle();
        h.route(c(3, 3), c(0, 0)); // faulty endpoint: fast-fail
        h.route(c(0, 0), c(1, 1));
        let stats = h.stats();
        assert_eq!(stats.route.requests, 2);
        assert_eq!(stats.route.errors, 1);
        assert_eq!(
            stats.route.latency_ns.n, 1,
            "fast-fail replies must not pollute latency percentiles"
        );
        let page = h.metrics_text();
        assert!(
            page.contains("ocp_serve_errors_total{endpoint=\"route\"} 1"),
            "{page}"
        );
    }

    #[test]
    fn publish_lag_and_scrape_reflect_published_epochs() {
        let service = small_service();
        let h = service.handle();
        h.inject_faults(&[c(8, 8)]);
        assert!(service.quiesce(Duration::from_secs(30)));
        let stats = h.stats();
        assert_eq!(
            stats.publish_lag_ns.n as u64, stats.epochs_published,
            "one lag sample per published epoch"
        );
        assert!(stats.publish_lag_ns.p50 > 0.0, "relabeling takes time");
        let page = h.metrics_text();
        assert!(page.contains("ocp_serve_publish_lag_ns_count 1"), "{page}");
        assert!(
            page.contains("ocp_serve_epochs_published_total 1"),
            "{page}"
        );
        let report = h.obs_report();
        assert_eq!(report.stats.epoch, h.epoch());
    }

    #[test]
    fn batches_coalesce_into_few_epochs() {
        let service = MeshService::start(
            Topology::mesh(20, 20),
            [],
            ServeConfig {
                batch_max: 64,
                ..ServeConfig::default()
            },
        )
        .unwrap();
        let h = service.handle();
        let nodes: Vec<Coord> = (0..12).map(|i| c(1 + i, 1 + i)).collect();
        let ack = h.inject_faults(&nodes);
        assert_eq!(ack.accepted, 12);
        assert!(service.quiesce(Duration::from_secs(30)));
        let stats = h.stats();
        assert_eq!(stats.events_applied, 12);
        // 12 events never need 12 epochs: the writer coalesces.
        assert!(
            stats.epochs_published <= 12,
            "published {} epochs",
            stats.epochs_published
        );
        let report = service.shutdown();
        assert_eq!(report.events_applied, 12);
    }

    #[test]
    fn every_published_epoch_carries_a_validated_certificate() {
        let service = small_service(); // default: CertMode::Enforce
        let mut h = service.handle();
        h.inject_faults(&[c(7, 7)]);
        assert!(service.quiesce(Duration::from_secs(30)));
        h.inject_faults(&[c(9, 2)]);
        assert!(service.quiesce(Duration::from_secs(30)));
        let log = service.epoch_log();
        assert_eq!(log.len(), 2);
        for record in &log {
            let cert = record
                .certificate
                .as_ref()
                .expect("Enforce always certifies");
            assert_eq!(cert.epoch, record.epoch);
        }
        // The head certificate re-validates against the head snapshot —
        // independently of the engine that produced it.
        let snap = h.snapshot();
        let head_cert = h.certificate(snap.epoch).expect("head epoch certified");
        head_cert
            .check(&snap.map, &snap.outcome)
            .expect("head certificate validates");
        // Epoch 0 is answered from the genesis certificate.
        assert!(h.certificate(0).is_some());
        assert!(h.certificate(999).is_none());
        // And the dispatch surface exposes the same thing.
        match h.dispatch(Request::Certificate { epoch: snap.epoch }) {
            Response::Certificate(reply) => {
                assert_eq!(reply.epoch, snap.epoch);
                assert_eq!(reply.certificate, Some(head_cert));
            }
            other => panic!("expected certificate reply, got {other:?}"),
        }
    }

    #[test]
    fn cert_off_publishes_without_certificates() {
        let service = MeshService::start(
            Topology::mesh(12, 12),
            [c(3, 3)],
            ServeConfig {
                cert_mode: CertMode::Off,
                ..ServeConfig::default()
            },
        )
        .unwrap();
        let h = service.handle();
        h.inject_faults(&[c(7, 7)]);
        assert!(service.quiesce(Duration::from_secs(30)));
        let log = service.epoch_log();
        assert_eq!(log.len(), 1);
        assert!(log[0].certificate.is_none());
        assert!(h.certificate(0).is_none());
        assert_eq!(h.stats().cert_failures, 0);
    }

    #[test]
    fn chaos_warm_failure_falls_back_to_cold_and_publishes() {
        let service = MeshService::start(
            Topology::mesh(12, 12),
            [c(3, 3)],
            ServeConfig {
                cert_chaos: CertChaos::RejectWarmEveryNth(1),
                ..ServeConfig::default()
            },
        )
        .unwrap();
        let mut h = service.handle();
        h.inject_faults(&[c(7, 7)]);
        assert!(service.quiesce(Duration::from_secs(30)));
        assert_eq!(h.epoch(), 1, "cold fallback still publishes");
        assert_eq!(h.status(c(7, 7)).state, NodeState::Faulty);
        let stats = h.stats();
        assert_eq!(stats.cert_failures, 1, "the injected warm failure");
        assert_eq!(stats.publishes_cert_rejected, 0);
        let log = service.epoch_log();
        assert_eq!(log[0].warm_rounds, 0, "published from the cold recompute");
        let cert = log[0].certificate.as_ref().expect("cold publish certified");
        let snap = h.snapshot();
        cert.check(&snap.map, &snap.outcome)
            .expect("cert validates");
    }

    #[test]
    fn chaos_batch_rejection_never_advances_the_reader_epoch() {
        let service = MeshService::start(
            Topology::mesh(12, 12),
            [c(3, 3)],
            ServeConfig {
                cert_chaos: CertChaos::RejectBatchEveryNth(2),
                ..ServeConfig::default()
            },
        )
        .unwrap();
        let mut h = service.handle();
        // Batch 1 publishes, batch 2 is chaos-rejected, batch 3 publishes.
        for (i, node) in [c(7, 7), c(9, 2), c(1, 9)].iter().enumerate() {
            h.inject_faults(&[*node]);
            assert!(service.quiesce(Duration::from_secs(30)), "batch {i}");
        }
        assert_eq!(h.epoch(), 2, "two publishes, one rejection, no gaps");
        let stats = h.stats();
        assert_eq!(stats.publishes_cert_rejected, 1);
        assert_eq!(stats.cert_failures, 2, "warm + cold failures of batch 2");
        assert_eq!(stats.events_discarded, 1, "the rejected batch's event");
        assert_eq!(stats.events_applied, 2);
        // The epoch log is gapless: 1, 2.
        let epochs: Vec<u64> = service.epoch_log().iter().map(|r| r.epoch).collect();
        assert_eq!(epochs, vec![1, 2]);
        // The rejected batch's fault never became visible.
        assert_eq!(h.status(c(9, 2)).state, NodeState::Enabled);
        // The scrape page carries the publish-result breakdown.
        let page = h.metrics_text();
        assert!(
            page.contains("ocp_serve_epoch_publish_total{result=\"ok\"} 2"),
            "{page}"
        );
        assert!(
            page.contains("ocp_serve_epoch_publish_total{result=\"cert_reject\"} 1"),
            "{page}"
        );
        assert!(page.contains("ocp_serve_cert_failures_total 2"), "{page}");
    }

    #[test]
    fn warn_mode_counts_failures_but_still_publishes() {
        let service = MeshService::start(
            Topology::mesh(12, 12),
            [c(3, 3)],
            ServeConfig {
                cert_mode: CertMode::Warn,
                cert_chaos: CertChaos::RejectWarmEveryNth(1),
                ..ServeConfig::default()
            },
        )
        .unwrap();
        let h = service.handle();
        h.inject_faults(&[c(7, 7)]);
        assert!(service.quiesce(Duration::from_secs(30)));
        assert_eq!(h.epoch(), 1, "Warn never refuses");
        let stats = h.stats();
        assert_eq!(stats.cert_failures, 1);
        assert_eq!(stats.publishes_cert_rejected, 0);
        let log = service.epoch_log();
        assert!(
            log[0].certificate.is_none(),
            "failed check leaves the epoch uncertified in Warn"
        );
    }

    #[test]
    fn stale_handle_refreshes_on_next_query() {
        let service = small_service();
        let mut reader = service.handle();
        assert_eq!(reader.route(c(0, 0), c(1, 1)).epoch, 0);
        let writer_side = service.handle();
        writer_side.inject_faults(&[c(8, 8)]);
        assert!(service.quiesce(Duration::from_secs(30)));
        // The stale reader picks up the new epoch on its next query.
        assert_eq!(reader.route(c(0, 0), c(1, 1)).epoch, 1);
    }
}
