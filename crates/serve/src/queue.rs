//! The bounded event queue between query handles and the writer thread.
//!
//! Admission control is the point: the queue has a hard capacity, and a
//! full queue **rejects** new events with an explicit error instead of
//! buffering without bound — under overload the caller learns immediately
//! and can shed or retry, and the service's memory stays flat. Only event
//! producers and the single writer touch this queue; the read hot path
//! (route/status queries) never does.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Why an event was not admitted.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PushError {
    /// The queue is at capacity — back off and retry.
    Overloaded,
    /// The service is shutting down; no more events will be accepted.
    Closed,
}

impl std::fmt::Display for PushError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PushError::Overloaded => f.write_str("event queue at capacity"),
            PushError::Closed => f.write_str("service shutting down"),
        }
    }
}

impl std::error::Error for PushError {}

struct State<T> {
    queue: VecDeque<T>,
    closed: bool,
}

struct Inner<T> {
    state: Mutex<State<T>>,
    ready: Condvar,
    capacity: usize,
}

/// A bounded multi-producer single-consumer queue with non-blocking,
/// explicitly-rejecting admission.
pub struct BoundedQueue<T> {
    inner: Arc<Inner<T>>,
}

impl<T> Clone for BoundedQueue<T> {
    fn clone(&self) -> Self {
        Self {
            inner: self.inner.clone(),
        }
    }
}

impl<T> BoundedQueue<T> {
    /// Creates a queue holding at most `capacity` events.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "a zero-capacity queue admits nothing");
        Self {
            inner: Arc::new(Inner {
                state: Mutex::new(State {
                    queue: VecDeque::new(),
                    closed: false,
                }),
                ready: Condvar::new(),
                capacity,
            }),
        }
    }

    /// Admits one event, or rejects it immediately when full or closed.
    pub fn try_push(&self, item: T) -> Result<(), PushError> {
        let mut state = self.inner.state.lock().expect("queue lock");
        if state.closed {
            return Err(PushError::Closed);
        }
        if state.queue.len() >= self.inner.capacity {
            return Err(PushError::Overloaded);
        }
        state.queue.push_back(item);
        drop(state);
        self.inner.ready.notify_one();
        Ok(())
    }

    /// Blocks until an event is available or the queue is closed *and*
    /// drained; `None` means no event will ever arrive again.
    pub fn recv(&self) -> Option<T> {
        let mut state = self.inner.state.lock().expect("queue lock");
        loop {
            if let Some(item) = state.queue.pop_front() {
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self.inner.ready.wait(state).expect("queue lock");
        }
    }

    /// Like [`BoundedQueue::recv`] with a timeout; `Ok(None)` means closed
    /// and drained, `Err(())` means the timeout elapsed with no event.
    #[allow(clippy::result_unit_err)]
    pub fn recv_timeout(&self, timeout: Duration) -> Result<Option<T>, ()> {
        let deadline = std::time::Instant::now() + timeout;
        let mut state = self.inner.state.lock().expect("queue lock");
        loop {
            if let Some(item) = state.queue.pop_front() {
                return Ok(Some(item));
            }
            if state.closed {
                return Ok(None);
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return Err(());
            }
            let (s, _timed_out) = self
                .inner
                .ready
                .wait_timeout(state, deadline - now)
                .expect("queue lock");
            state = s;
        }
    }

    /// Moves up to `max` immediately-available events into `out` without
    /// blocking; returns how many were moved. This is the writer's batch
    /// coalescing: one `recv` for the first event, one `drain` for the
    /// rest of the batch.
    pub fn drain_up_to(&self, max: usize, out: &mut Vec<T>) -> usize {
        let mut state = self.inner.state.lock().expect("queue lock");
        let n = max.min(state.queue.len());
        out.extend(state.queue.drain(..n));
        n
    }

    /// Events currently queued.
    pub fn len(&self) -> usize {
        self.inner.state.lock().expect("queue lock").queue.len()
    }

    /// True when no events are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The admission-control capacity.
    pub fn capacity(&self) -> usize {
        self.inner.capacity
    }

    /// Closes the queue: future pushes fail with [`PushError::Closed`],
    /// and `recv` returns `None` once the backlog is drained.
    pub fn close(&self) {
        let mut state = self.inner.state.lock().expect("queue lock");
        state.closed = true;
        drop(state);
        self.inner.ready.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_when_full_instead_of_buffering() {
        let q = BoundedQueue::new(2);
        assert_eq!(q.try_push(1), Ok(()));
        assert_eq!(q.try_push(2), Ok(()));
        assert_eq!(q.try_push(3), Err(PushError::Overloaded));
        assert_eq!(q.len(), 2);
        // Draining frees capacity.
        assert_eq!(q.recv(), Some(1));
        assert_eq!(q.try_push(3), Ok(()));
    }

    #[test]
    fn close_rejects_pushes_but_drains_backlog() {
        let q = BoundedQueue::new(8);
        q.try_push("a").unwrap();
        q.close();
        assert_eq!(q.try_push("b"), Err(PushError::Closed));
        assert_eq!(q.recv(), Some("a"));
        assert_eq!(q.recv(), None);
    }

    #[test]
    fn drain_coalesces_a_batch() {
        let q = BoundedQueue::new(16);
        for i in 0..10 {
            q.try_push(i).unwrap();
        }
        let first = q.recv().unwrap();
        assert_eq!(first, 0);
        let mut batch = vec![first];
        let drained = q.drain_up_to(5, &mut batch);
        assert_eq!(drained, 5);
        assert_eq!(batch, vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(q.len(), 4);
    }

    #[test]
    fn recv_timeout_distinguishes_empty_from_closed() {
        let q: BoundedQueue<u32> = BoundedQueue::new(4);
        assert_eq!(q.recv_timeout(Duration::from_millis(10)), Err(()));
        q.close();
        assert_eq!(q.recv_timeout(Duration::from_millis(10)), Ok(None));
    }

    #[test]
    fn recv_blocks_until_producer_pushes() {
        let q = BoundedQueue::new(4);
        let q2 = q.clone();
        let t = std::thread::spawn(move || q2.recv());
        std::thread::sleep(Duration::from_millis(20));
        q.try_push(99).unwrap();
        assert_eq!(t.join().unwrap(), Some(99));
    }

    #[test]
    #[should_panic(expected = "zero-capacity")]
    fn zero_capacity_is_rejected() {
        let _ = BoundedQueue::<u8>::new(0);
    }

    /// Concurrent producers vs. one consumer: admission accounting must be
    /// exact. Every push attempt either lands (and is received exactly
    /// once) or is rejected `Overloaded`; nothing is lost or duplicated,
    /// and the queue never exceeds capacity.
    #[test]
    fn concurrent_producers_exact_admission_accounting() {
        use std::sync::atomic::{AtomicUsize, Ordering};

        const PRODUCERS: usize = 8;
        const PER_PRODUCER: usize = 2_000;
        const CAPACITY: usize = 32;

        let q: BoundedQueue<(usize, usize)> = BoundedQueue::new(CAPACITY);
        let admitted = Arc::new(AtomicUsize::new(0));
        let overloaded = Arc::new(AtomicUsize::new(0));

        let consumer = {
            let q = q.clone();
            std::thread::spawn(move || {
                let mut got: Vec<(usize, usize)> = Vec::new();
                while let Some(item) = q.recv() {
                    got.push(item);
                }
                got
            })
        };

        let producers: Vec<_> = (0..PRODUCERS)
            .map(|p| {
                let q = q.clone();
                let admitted = admitted.clone();
                let overloaded = overloaded.clone();
                std::thread::spawn(move || {
                    for i in 0..PER_PRODUCER {
                        match q.try_push((p, i)) {
                            Ok(()) => {
                                admitted.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(PushError::Overloaded) => {
                                overloaded.fetch_add(1, Ordering::Relaxed);
                                // Back off so the consumer makes progress
                                // and both outcomes are exercised.
                                std::thread::yield_now();
                            }
                            Err(PushError::Closed) => panic!("queue closed early"),
                        }
                        assert!(q.len() <= CAPACITY, "capacity breached");
                    }
                })
            })
            .collect();
        for producer in producers {
            producer.join().unwrap();
        }
        q.close();
        let got = consumer.join().unwrap();

        let admitted = admitted.load(Ordering::Relaxed);
        let overloaded = overloaded.load(Ordering::Relaxed);
        // Exact accounting: every attempt has exactly one outcome, and
        // every admitted item reaches the consumer exactly once.
        assert_eq!(admitted + overloaded, PRODUCERS * PER_PRODUCER);
        assert_eq!(got.len(), admitted, "lost or duplicated items");
        let unique: std::collections::HashSet<_> = got.iter().copied().collect();
        assert_eq!(unique.len(), got.len(), "duplicated items");
        // Under a 32-slot queue and 16k attempts, both outcomes must occur.
        assert!(admitted > 0, "no item admitted");
        assert!(overloaded > 0, "overload path never exercised");
    }

    /// Producers racing `close`: pushes after close are `Closed`, pushes
    /// before close are all drained, and the consumer sees a clean end.
    #[test]
    fn concurrent_producers_racing_close_lose_nothing_admitted() {
        use std::sync::atomic::{AtomicUsize, Ordering};

        let q: BoundedQueue<usize> = BoundedQueue::new(64);
        let admitted = Arc::new(AtomicUsize::new(0));
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let q = q.clone();
                let admitted = admitted.clone();
                std::thread::spawn(move || loop {
                    match q.try_push(p) {
                        Ok(()) => {
                            admitted.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(PushError::Overloaded) => std::thread::yield_now(),
                        Err(PushError::Closed) => return,
                    }
                })
            })
            .collect();
        std::thread::sleep(Duration::from_millis(20));
        q.close();
        for producer in producers {
            producer.join().unwrap();
        }
        // Everything admitted before close is still drainable.
        let mut drained = 0;
        while q.recv().is_some() {
            drained += 1;
        }
        assert_eq!(drained, admitted.load(Ordering::Relaxed));
    }
}
