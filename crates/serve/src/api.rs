//! The typed request/response surface of the mesh-state service.
//!
//! The same types are used in-process (method per request kind on
//! [`ServiceHandle`](crate::service::ServiceHandle)) and on the wire (the
//! TCP layer frames one serialized [`Request`] per query and one
//! [`Response`] per reply). Every read reply carries the **epoch** of the
//! snapshot that served it, so clients can reason about staleness and the
//! consistency tests can check each answer against the exact published
//! state it claims to come from.

use crate::metrics::{ObsReport, StatsReport};
use ocp_core::certificate::EpochCertificate;
use ocp_mesh::Coord;
use ocp_routing::RoutingError;
use serde::{Deserialize, Serialize};

/// A query or command accepted by the service.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// Full fault-tolerant route between two enabled nodes.
    Route {
        /// Source node.
        src: Coord,
        /// Destination node.
        dst: Coord,
    },
    /// Hop count only (the allocation-free fast path).
    RouteLen {
        /// Source node.
        src: Coord,
        /// Destination node.
        dst: Coord,
    },
    /// Up to `k` pairwise vertex-disjoint routes between two enabled
    /// nodes (`FaultTolerantRouter::route_disjoint`): the CW/CCW detour
    /// split generalized to the vertex min-cut.
    RouteDisjoint {
        /// Source node.
        src: Coord,
        /// Destination node.
        dst: Coord,
        /// Requested number of routes; the reply carries
        /// `min(k, min-cut)` paths.
        k: usize,
    },
    /// Many hop-count queries answered against **one** snapshot: the
    /// batched read fast path. One frame, one snapshot refresh, one epoch
    /// tag, one shared router scratch, and amortized metrics for the whole
    /// batch.
    RouteLenBatch {
        /// `(src, dst)` pairs, answered in order.
        pairs: Vec<(Coord, Coord)>,
    },
    /// Several requests in one frame, dispatched in order. Replies come
    /// back positionally in [`Response::Batch`]. Unlike
    /// [`Request::RouteLenBatch`] the inner requests are independent
    /// (each refreshes its own snapshot); this variant only amortizes
    /// framing and round-trips.
    Batch {
        /// The requests, dispatched in order. Nested batches are allowed
        /// but pointless.
        requests: Vec<Request>,
    },
    /// Labeled state of one node.
    Status {
        /// The node to inspect.
        node: Coord,
    },
    /// Enqueue crash events for the given nodes (asynchronous: the reply
    /// acknowledges admission, not convergence).
    InjectFaults {
        /// Nodes that just failed.
        nodes: Vec<Coord>,
    },
    /// Enqueue repair events for the given nodes.
    RepairNodes {
        /// Nodes that came back to life.
        nodes: Vec<Coord>,
    },
    /// Service counters and latency percentiles.
    Stats,
    /// Prometheus text-format scrape: the service's own families plus the
    /// process-global `ocp-obs` registry.
    MetricsText,
    /// Full typed observability report — the `stats` superset carrying the
    /// global metric registry snapshot and recent spans.
    ObsReport,
    /// Current head epoch.
    Epoch,
    /// The publish-time certificate of one epoch (see
    /// [`ocp_core::certificate::EpochCertificate`]): the serializable
    /// proof that the published labeling satisfied the paper's theorems,
    /// re-checkable by the client without trusting the service.
    Certificate {
        /// The epoch whose certificate is requested.
        epoch: u64,
    },
}

impl Request {
    /// Short endpoint name, used for per-endpoint metrics and logs.
    pub fn endpoint(&self) -> &'static str {
        match self {
            Request::Route { .. } => "route",
            Request::RouteLen { .. } => "route_len",
            Request::RouteDisjoint { .. } => "route_disjoint",
            Request::RouteLenBatch { .. } => "route_len_batch",
            Request::Batch { .. } => "batch",
            Request::Status { .. } => "status",
            Request::InjectFaults { .. } => "inject_faults",
            Request::RepairNodes { .. } => "repair_nodes",
            Request::Stats => "stats",
            Request::MetricsText => "metrics",
            Request::ObsReport => "obs",
            Request::Epoch => "epoch",
            Request::Certificate { .. } => "certificate",
        }
    }
}

/// Reply to a [`Request`], one variant per request kind.
// The size skew from `Stats` is fine: a `Response` lives only for the one
// dispatch/serialize round-trip, never in bulk collections.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Response {
    /// Reply to [`Request::Route`].
    Route(RouteReply),
    /// Reply to [`Request::RouteLen`].
    RouteLen(RouteLenReply),
    /// Reply to [`Request::RouteDisjoint`].
    RouteDisjoint(RouteDisjointReply),
    /// Reply to [`Request::RouteLenBatch`].
    RouteLenBatch(RouteLenBatchReply),
    /// Reply to [`Request::Batch`]: one response per inner request, in
    /// order.
    Batch {
        /// Positional replies.
        replies: Vec<Response>,
    },
    /// Reply to [`Request::Status`].
    Status(StatusReply),
    /// Reply to [`Request::InjectFaults`] / [`Request::RepairNodes`].
    Injected(InjectReply),
    /// Reply to [`Request::Stats`].
    Stats(StatsReport),
    /// Reply to [`Request::MetricsText`].
    MetricsText {
        /// The rendered Prometheus text exposition page.
        text: String,
    },
    /// Reply to [`Request::ObsReport`].
    Obs(ObsReport),
    /// Reply to [`Request::Epoch`].
    Epoch {
        /// Head epoch at the time the reply was produced.
        epoch: u64,
    },
    /// Reply to [`Request::Certificate`].
    Certificate(CertificateReply),
    /// The request could not be handled (malformed frame, internal error).
    Error {
        /// Human-readable reason.
        message: String,
    },
}

/// A full route answered against one snapshot.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RouteReply {
    /// Epoch of the snapshot that served the query.
    pub epoch: u64,
    /// The route, or why none was produced.
    pub outcome: RouteOutcome,
}

/// Result of a route query (a serializable `Result`).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum RouteOutcome {
    /// A valid route was found.
    Delivered {
        /// Visited nodes, source first, destination last.
        hops: Vec<Coord>,
    },
    /// Routing failed.
    Failed {
        /// The router's error.
        error: RoutingError,
    },
}

/// A k-disjoint route set answered against one snapshot.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RouteDisjointReply {
    /// Epoch of the snapshot that served the query.
    pub epoch: u64,
    /// The routes, or why none were produced.
    pub outcome: RouteDisjointOutcome,
}

/// Result of a k-disjoint route query.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum RouteDisjointOutcome {
    /// `min(k, min-cut)` pairwise vertex-disjoint routes were found.
    Delivered {
        /// The routes, each source first and destination last. For
        /// `k == 1` the single path is byte-identical to what
        /// [`Request::Route`] would return; for larger `k` the set is
        /// seeded from that route but flow augmentation may reroute it.
        paths: Vec<Vec<Coord>>,
        /// `max hop count / topology distance` (1.0 when src == dst).
        stretch: f64,
    },
    /// Routing failed — exactly when [`Request::Route`] would fail, with
    /// the same error.
    Failed {
        /// The router's error.
        error: RoutingError,
    },
}

/// A hop count answered against one snapshot.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RouteLenReply {
    /// Epoch of the snapshot that served the query.
    pub epoch: u64,
    /// The hop count, or why none was produced.
    pub outcome: RouteLenOutcome,
}

/// Result of a hop-count query.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum RouteLenOutcome {
    /// A valid route exists with this many links.
    Delivered {
        /// Number of links traversed.
        len: usize,
    },
    /// Routing failed.
    Failed {
        /// The router's error.
        error: RoutingError,
    },
}

/// A batch of hop counts answered against one snapshot.
///
/// Field-for-field, `outcomes[i]` equals the `outcome` of a singleton
/// [`RouteLenReply`] for `pairs[i]` served against the same snapshot — the
/// batch path changes cost, never answers (enforced by the consistency
/// suite).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RouteLenBatchReply {
    /// Epoch of the snapshot that served **every** query in the batch.
    pub epoch: u64,
    /// One outcome per requested pair, in order.
    pub outcomes: Vec<RouteLenOutcome>,
}

/// Labeled state of one node under one snapshot.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct StatusReply {
    /// Epoch of the snapshot that served the query.
    pub epoch: u64,
    /// The inspected node.
    pub node: Coord,
    /// Its label.
    pub state: NodeState,
}

/// The service-level view of a node's label.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum NodeState {
    /// The coordinate is outside the machine.
    OffMachine,
    /// The node is faulty.
    Faulty,
    /// Nonfaulty but disabled (inside an orthogonal convex fault region).
    Disabled,
    /// Enabled: carries traffic.
    Enabled,
}

/// Acknowledgement of an event-injection command.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct InjectReply {
    /// Events admitted to the writer queue.
    pub accepted: usize,
    /// Events rejected by admission control (queue full). Nonzero means
    /// the caller should back off and retry the rejected tail.
    pub rejected: usize,
    /// Head epoch at admission time; convergence of these events will be
    /// visible at some later epoch.
    pub epoch_at_enqueue: u64,
}

impl InjectReply {
    /// True if every event was admitted.
    pub fn fully_accepted(&self) -> bool {
        self.rejected == 0
    }
}

/// The certificate of one published epoch, if the service retained one.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CertificateReply {
    /// The epoch that was asked about.
    pub epoch: u64,
    /// Its certificate; `None` when the epoch is unknown or the service
    /// runs with `CertMode::Off`.
    pub certificate: Option<EpochCertificate>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(x: i32, y: i32) -> Coord {
        Coord::new(x, y)
    }

    #[test]
    fn requests_round_trip_json() {
        let reqs = [
            Request::Route {
                src: c(0, 0),
                dst: c(3, 4),
            },
            Request::RouteLen {
                src: c(1, 1),
                dst: c(2, 2),
            },
            Request::RouteDisjoint {
                src: c(0, 2),
                dst: c(4, 4),
                k: 2,
            },
            Request::RouteLenBatch {
                pairs: vec![(c(0, 0), c(3, 3)), (c(1, 1), c(2, 0))],
            },
            Request::Batch {
                requests: vec![
                    Request::Epoch,
                    Request::RouteLen {
                        src: c(0, 0),
                        dst: c(1, 1),
                    },
                ],
            },
            Request::Status { node: c(5, 5) },
            Request::InjectFaults {
                nodes: vec![c(1, 2), c(3, 4)],
            },
            Request::RepairNodes { nodes: vec![] },
            Request::Stats,
            Request::MetricsText,
            Request::ObsReport,
            Request::Epoch,
            Request::Certificate { epoch: 3 },
        ];
        for req in reqs {
            let json = serde_json::to_string(&req).unwrap();
            let back: Request = serde_json::from_str(&json).unwrap();
            assert_eq!(req, back);
        }
    }

    #[test]
    fn responses_round_trip_json() {
        let resps = [
            Response::Route(RouteReply {
                epoch: 3,
                outcome: RouteOutcome::Delivered {
                    hops: vec![c(0, 0), c(1, 0)],
                },
            }),
            Response::Route(RouteReply {
                epoch: 4,
                outcome: RouteOutcome::Failed {
                    error: RoutingError::EndpointDisabled { node: c(9, 9) },
                },
            }),
            Response::RouteDisjoint(RouteDisjointReply {
                epoch: 5,
                outcome: RouteDisjointOutcome::Delivered {
                    paths: vec![
                        vec![c(0, 0), c(1, 0), c(1, 1)],
                        vec![c(0, 0), c(0, 1), c(1, 1)],
                    ],
                    stretch: 1.0,
                },
            }),
            Response::RouteDisjoint(RouteDisjointReply {
                epoch: 5,
                outcome: RouteDisjointOutcome::Failed {
                    error: RoutingError::EndpointDisabled { node: c(2, 2) },
                },
            }),
            Response::RouteLenBatch(RouteLenBatchReply {
                epoch: 6,
                outcomes: vec![
                    RouteLenOutcome::Delivered { len: 4 },
                    RouteLenOutcome::Failed {
                        error: RoutingError::LivelockDetected,
                    },
                ],
            }),
            Response::Batch {
                replies: vec![
                    Response::Epoch { epoch: 6 },
                    Response::RouteLen(RouteLenReply {
                        epoch: 6,
                        outcome: RouteLenOutcome::Delivered { len: 2 },
                    }),
                ],
            },
            Response::Status(StatusReply {
                epoch: 1,
                node: c(2, 2),
                state: NodeState::Disabled,
            }),
            Response::Injected(InjectReply {
                accepted: 2,
                rejected: 1,
                epoch_at_enqueue: 7,
            }),
            Response::Epoch { epoch: 12 },
            Response::Certificate(CertificateReply {
                epoch: 9,
                certificate: None,
            }),
            Response::MetricsText {
                text: "# TYPE ocp_serve_epoch gauge\nocp_serve_epoch 3\n".into(),
            },
            Response::Error {
                message: "bad frame".into(),
            },
        ];
        for resp in resps {
            let json = serde_json::to_string(&resp).unwrap();
            let back: Response = serde_json::from_str(&json).unwrap();
            assert_eq!(resp, back);
        }
    }

    #[test]
    fn endpoint_names_are_stable() {
        assert_eq!(Request::Stats.endpoint(), "stats");
        assert_eq!(Request::Certificate { epoch: 0 }.endpoint(), "certificate");
        assert_eq!(Request::MetricsText.endpoint(), "metrics");
        assert_eq!(Request::ObsReport.endpoint(), "obs");
        assert_eq!(
            Request::RouteLenBatch { pairs: vec![] }.endpoint(),
            "route_len_batch"
        );
        assert_eq!(
            Request::RouteDisjoint {
                src: c(0, 0),
                dst: c(1, 1),
                k: 2
            }
            .endpoint(),
            "route_disjoint"
        );
        assert_eq!(Request::Batch { requests: vec![] }.endpoint(), "batch");
        assert_eq!(
            Request::Route {
                src: c(0, 0),
                dst: c(1, 1)
            }
            .endpoint(),
            "route"
        );
    }
}
