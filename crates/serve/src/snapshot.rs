//! Immutable epoch snapshots of the labeled machine.
//!
//! A [`Snapshot`] is everything a query needs, computed once per published
//! epoch and never mutated afterwards: the fault map, the converged
//! two-phase labeling, the enabled view, and a ready-built
//! [`FaultTolerantRouter`]. Readers hold snapshots behind `Arc`s, so a
//! query is answered entirely against one self-consistent machine state no
//! matter how many newer epochs the writer publishes mid-flight.
//!
//! Epoch `k+1` is derived from epoch `k` by [`Snapshot::apply`]: a batch
//! of new faults reuses the paper's warm-start maintenance path (phase 1
//! is monotone in the fault set), while any repair in the batch forces the
//! cold rerun that repairs require — exactly the rules
//! `ocp-core::maintenance` centralizes.

use crate::api::NodeState;
use ocp_core::maintenance::try_relabel_after_faults;
use ocp_core::prelude::*;
use ocp_geometry::Region;
use ocp_mesh::Coord;
use ocp_routing::{BuildBreakdown, EnabledMap, FaultTolerantRouter};

/// One batch of coalesced fault/repair events, the unit of epoch
/// advancement.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct EventBatch {
    /// Nodes that crashed.
    pub faults: Vec<Coord>,
    /// Nodes that came back to life.
    pub repairs: Vec<Coord>,
}

impl EventBatch {
    /// Number of events in the batch.
    pub fn len(&self) -> usize {
        self.faults.len() + self.repairs.len()
    }

    /// True when the batch carries no events.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty() && self.repairs.is_empty()
    }
}

/// An immutable, fully-labeled machine state at one epoch.
#[derive(Clone)]
pub struct Snapshot {
    /// Monotone publication counter; epoch 0 is the initial cold run.
    pub epoch: u64,
    /// The fault set this snapshot was labeled under.
    pub map: FaultMap,
    /// The converged two-phase labeling.
    pub outcome: PipelineOutcome,
    /// The routing view (enabled nodes only).
    pub enabled: EnabledMap,
    /// Router built over the disabled regions, ready to answer queries.
    pub router: FaultTolerantRouter,
    /// Phase breakdown of this snapshot's router/index construction
    /// (cold banded build or incremental patch of the previous epoch).
    pub build: BuildBreakdown,
}

impl std::fmt::Debug for Snapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Snapshot")
            .field("epoch", &self.epoch)
            .field("faults", &self.map.fault_count())
            .field("regions", &self.outcome.regions.len())
            .finish_non_exhaustive()
    }
}

impl Snapshot {
    /// Cold-builds the snapshot for `map` (used for epoch 0 and for
    /// batches containing repairs).
    pub fn cold(
        epoch: u64,
        map: FaultMap,
        config: &PipelineConfig,
    ) -> Result<Self, ConvergenceError> {
        let outcome = try_run_pipeline(&map, config)?;
        Ok(Self::from_outcome(epoch, map, outcome))
    }

    /// Wraps an already-converged outcome into a snapshot, cold-building
    /// the enabled view and the router (including its per-snapshot query
    /// indexes, banded over the machine's cores; build time lands in the
    /// global obs registry when enabled).
    pub fn from_outcome(epoch: u64, map: FaultMap, outcome: PipelineOutcome) -> Self {
        Self::build_with(epoch, map, outcome, None)
    }

    /// [`from_outcome`](Self::from_outcome), but patching `prev`'s router
    /// tables incrementally instead of cold-building — byte-identical
    /// output (pinned by `FaultTolerantRouter::table_digest` suites), at
    /// a cost proportional to the epoch delta rather than the machine.
    pub fn from_outcome_after(
        prev: &Snapshot,
        epoch: u64,
        map: FaultMap,
        outcome: PipelineOutcome,
    ) -> Self {
        Self::build_with(epoch, map, outcome, Some(prev))
    }

    fn build_with(
        epoch: u64,
        map: FaultMap,
        outcome: PipelineOutcome,
        prev: Option<&Snapshot>,
    ) -> Self {
        let enabled = EnabledMap::from_outcome(&outcome);
        let regions: Vec<Region> = outcome.regions.iter().map(|r| r.cells.clone()).collect();
        let build_obs = ocp_obs::enabled().then(|| {
            let reg = ocp_obs::global();
            (
                reg.counter(
                    "ocp_routing_index_builds_total",
                    "Router + query-index constructions (one per published snapshot).",
                    &[],
                ),
                reg.histogram(
                    "ocp_routing_index_build_ns",
                    "Wall-clock cost of one FaultTolerantRouter construction, \
                     including segment and ring index builds, nanoseconds.",
                    &[],
                ),
                std::time::Instant::now(),
            )
        });
        let (router, build) = match prev {
            Some(p) => FaultTolerantRouter::rebuild_from(&p.router, enabled.clone(), &regions),
            None => {
                let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
                FaultTolerantRouter::new_with_threads(enabled.clone(), &regions, threads)
            }
        };
        if let Some((builds, build_ns, start)) = build_obs {
            builds.inc();
            build_ns.record(start.elapsed().as_nanos() as u64);
        }
        Self {
            epoch,
            map,
            outcome,
            enabled,
            router,
            build,
        }
    }

    /// Derives the next epoch's snapshot after `batch`. Pure-fault batches
    /// take the warm-start relabeling path and patch the router's tables
    /// incrementally from this snapshot's; any repair forces a cold rerun
    /// (warm-starting across repairs is unsound — see
    /// `ocp-core::maintenance::relabel_after_repair`), which also
    /// cold-builds the router and so serves as the pinned fallback.
    pub fn apply(
        &self,
        batch: &EventBatch,
        config: &PipelineConfig,
    ) -> Result<Self, ConvergenceError> {
        let epoch = self.epoch + 1;
        if batch.repairs.is_empty() {
            let (map, m) =
                try_relabel_after_faults(&self.map, &batch.faults, &self.outcome, config)?;
            Ok(Self::from_outcome_after(self, epoch, map, m.outcome))
        } else {
            let mut map = self.map.clone();
            for &r in &batch.repairs {
                map = map.with_repaired_node(r);
            }
            for &f in &batch.faults {
                map = map.with_additional_fault(f);
            }
            Self::cold(epoch, map, config)
        }
    }

    /// The service-level label of one coordinate under this snapshot.
    pub fn node_state(&self, c: Coord) -> NodeState {
        if !self.map.topology().contains(c) {
            NodeState::OffMachine
        } else if self.map.is_faulty(c) {
            NodeState::Faulty
        } else if self.enabled.is_enabled(c) {
            NodeState::Enabled
        } else {
            NodeState::Disabled
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocp_mesh::Topology;

    fn c(x: i32, y: i32) -> Coord {
        Coord::new(x, y)
    }

    #[test]
    fn warm_fault_batch_matches_cold_oracle() {
        let cfg = PipelineConfig::default();
        let base = Snapshot::cold(
            0,
            FaultMap::new(Topology::mesh(12, 12), [c(3, 3), c(4, 4)]),
            &cfg,
        )
        .unwrap();
        let batch = EventBatch {
            faults: vec![c(8, 8), c(9, 9)],
            repairs: vec![],
        };
        let next = base.apply(&batch, &cfg).unwrap();
        assert_eq!(next.epoch, 1);
        let oracle = Snapshot::cold(1, next.map.clone(), &cfg).unwrap();
        assert_eq!(next.outcome.safety, oracle.outcome.safety);
        assert_eq!(next.outcome.activation, oracle.outcome.activation);
    }

    #[test]
    fn repair_batch_takes_the_cold_path() {
        // A concave fault pattern: (3,4) is nonfaulty but disabled to make
        // the surrounding region orthogonal convex.
        let cfg = PipelineConfig::default();
        let base = Snapshot::cold(
            0,
            FaultMap::new(Topology::mesh(8, 8), [c(3, 3), c(4, 4), c(3, 5)]),
            &cfg,
        )
        .unwrap();
        assert_eq!(base.node_state(c(3, 4)), NodeState::Disabled);
        let batch = EventBatch {
            faults: vec![c(6, 6)],
            repairs: vec![c(4, 4)],
        };
        let next = base.apply(&batch, &cfg).unwrap();
        assert_eq!(next.map.fault_count(), 3); // -1 repair, +1 fault
                                               // With the concavity's corner fault repaired, (3,4) is re-enabled.
        assert_eq!(next.node_state(c(3, 4)), NodeState::Enabled);
        assert_eq!(next.node_state(c(4, 4)), NodeState::Enabled);
        assert_eq!(next.node_state(c(6, 6)), NodeState::Faulty);
    }

    #[test]
    fn node_state_covers_all_labels() {
        let cfg = PipelineConfig::default();
        let snap = Snapshot::cold(
            0,
            FaultMap::new(Topology::mesh(8, 8), [c(3, 3), c(4, 4), c(3, 5)]),
            &cfg,
        )
        .unwrap();
        assert_eq!(snap.node_state(c(-1, 0)), NodeState::OffMachine);
        assert_eq!(snap.node_state(c(3, 3)), NodeState::Faulty);
        assert_eq!(snap.node_state(c(3, 4)), NodeState::Disabled);
        assert_eq!(snap.node_state(c(0, 0)), NodeState::Enabled);
    }

    #[test]
    fn router_build_is_observable_when_obs_is_on() {
        let cfg = PipelineConfig::default();
        let before_enabled = ocp_obs::enabled();
        ocp_obs::set_enabled(true);
        let builds = ocp_obs::global().counter(
            "ocp_routing_index_builds_total",
            "Router + query-index constructions (one per published snapshot).",
            &[],
        );
        let before = builds.get();
        let _snap =
            Snapshot::cold(0, FaultMap::new(Topology::mesh(8, 8), [c(3, 3)]), &cfg).unwrap();
        ocp_obs::set_enabled(before_enabled);
        // `>=`: the registry is process-global and other tests may build
        // snapshots concurrently.
        assert!(builds.get() > before);
        let build_ns = ocp_obs::global()
            .snapshot()
            .histogram("ocp_routing_index_build_ns", &[])
            .cloned()
            .expect("build-time histogram registered");
        assert!(build_ns.count >= 1);
    }

    #[test]
    fn router_in_snapshot_respects_the_labeling() {
        let cfg = PipelineConfig::default();
        let snap = Snapshot::cold(0, FaultMap::new(Topology::mesh(9, 9), [c(4, 4)]), &cfg).unwrap();
        let p = snap.router.route(c(0, 4), c(8, 4)).unwrap();
        p.validate(&snap.enabled).unwrap();
        assert_eq!(p.len(), 10); // minimal detour around one cell
    }
}
