//! Service observability: lock-free per-endpoint counters and a
//! log-bucketed latency histogram with tail percentiles.
//!
//! Every recording path is a handful of relaxed atomic operations — query
//! threads never take a lock to report a latency, so the metrics layer
//! cannot serialize the reader hot path it is measuring. Percentiles are
//! approximate (bucket-resolution: powers of two in nanoseconds, read out
//! at the geometric bucket midpoint), which is the standard trade for a
//! fixed-size concurrent histogram.

use ocp_analysis::Percentiles;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};

/// Number of power-of-two buckets; bucket `i` holds observations in
/// `[2^i, 2^(i+1))` nanoseconds, so 64 buckets cover every `u64` value.
const BUCKETS: usize = 64;

/// A concurrent latency histogram with power-of-two nanosecond buckets.
///
/// Recording is one relaxed `fetch_add`; reading produces nearest-rank
/// percentiles at bucket resolution.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self {
            buckets: [const { AtomicU64::new(0) }; BUCKETS],
        }
    }
}

/// Representative value of bucket `i`: the geometric midpoint of
/// `[2^i, 2^(i+1))`.
fn bucket_mid(i: usize) -> f64 {
    (1u64 << i) as f64 * 1.5
}

impl LatencyHistogram {
    /// Records one observation in nanoseconds (lock-free).
    pub fn record(&self, nanos: u64) {
        let idx = 63 - nanos.max(1).leading_zeros() as usize;
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
    }

    /// Total observations recorded.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Nearest-rank percentiles over the bucketed sample, with each bucket
    /// represented by its geometric midpoint (all-zero when empty).
    pub fn percentiles(&self) -> Percentiles {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return Percentiles::of(&[]);
        }
        let value_at_rank = |rank: u64| -> f64 {
            let mut cumulative = 0u64;
            for (i, &n) in counts.iter().enumerate() {
                cumulative += n;
                if cumulative >= rank {
                    return bucket_mid(i);
                }
            }
            bucket_mid(BUCKETS - 1)
        };
        let rank = |p: f64| -> u64 { ((p / 100.0 * total as f64).ceil() as u64).clamp(1, total) };
        let max_bucket = counts.iter().rposition(|&n| n > 0).unwrap_or(0);
        Percentiles {
            n: total as usize,
            p50: value_at_rank(rank(50.0)),
            p90: value_at_rank(rank(90.0)),
            p95: value_at_rank(rank(95.0)),
            p99: value_at_rank(rank(99.0)),
            max: bucket_mid(max_bucket),
        }
    }
}

/// Counters and latency for one query endpoint.
#[derive(Debug, Default)]
pub struct EndpointMetrics {
    /// Requests served.
    pub requests: AtomicU64,
    /// Service-time histogram (nanoseconds).
    pub latency: LatencyHistogram,
}

impl EndpointMetrics {
    /// Records one served request.
    pub fn record(&self, nanos: u64) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        self.latency.record(nanos);
    }

    /// Serializable view.
    pub fn report(&self) -> EndpointReport {
        EndpointReport {
            requests: self.requests.load(Ordering::Relaxed),
            latency_ns: self.latency.percentiles(),
        }
    }
}

/// All live counters of a running service.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Route queries.
    pub route: EndpointMetrics,
    /// Hop-count queries.
    pub route_len: EndpointMetrics,
    /// Status queries.
    pub status: EndpointMetrics,
    /// Stats/epoch meta queries.
    pub meta_requests: AtomicU64,
    /// Fault/repair events admitted to the queue.
    pub events_accepted: AtomicU64,
    /// Events rejected by admission control (queue full).
    pub events_rejected: AtomicU64,
    /// Events applied to a published snapshot.
    pub events_applied: AtomicU64,
    /// Events discarded as invalid (already faulty, off-machine, …).
    pub events_discarded: AtomicU64,
    /// Snapshots published (excluding the initial one).
    pub epochs_published: AtomicU64,
    /// Event batches drained (one published epoch each, unless all events
    /// in the batch were invalid).
    pub batches: AtomicU64,
    /// Sum over read queries of `head_epoch - serving_epoch`.
    pub staleness_sum: AtomicU64,
    /// Largest single-query staleness observed, in epochs.
    pub staleness_max: AtomicU64,
    /// Read queries contributing to the staleness counters.
    pub staleness_samples: AtomicU64,
}

impl Metrics {
    /// Records how many epochs behind head a read query was served.
    pub fn record_staleness(&self, epochs_behind: u64) {
        self.staleness_sum
            .fetch_add(epochs_behind, Ordering::Relaxed);
        self.staleness_max
            .fetch_max(epochs_behind, Ordering::Relaxed);
        self.staleness_samples.fetch_add(1, Ordering::Relaxed);
    }
}

/// Serializable snapshot of one endpoint's counters.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct EndpointReport {
    /// Requests served.
    pub requests: u64,
    /// Service-time percentiles in nanoseconds.
    pub latency_ns: Percentiles,
}

/// Serializable snapshot of the whole service's counters — the payload of
/// the `Stats` endpoint.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct StatsReport {
    /// Head epoch when the report was taken.
    pub epoch: u64,
    /// Snapshots published since start (excluding the initial one).
    pub epochs_published: u64,
    /// Event batches coalesced and drained by the writer.
    pub batches: u64,
    /// Events admitted to the writer queue.
    pub events_accepted: u64,
    /// Events rejected by admission control.
    pub events_rejected: u64,
    /// Events applied to published snapshots.
    pub events_applied: u64,
    /// Events discarded as invalid.
    pub events_discarded: u64,
    /// Events currently waiting in the writer queue.
    pub queue_depth: usize,
    /// Capacity of the writer queue.
    pub queue_capacity: usize,
    /// Route endpoint counters.
    pub route: EndpointReport,
    /// Hop-count endpoint counters.
    pub route_len: EndpointReport,
    /// Status endpoint counters.
    pub status: EndpointReport,
    /// Mean read staleness in epochs behind head.
    pub staleness_mean_epochs: f64,
    /// Worst read staleness in epochs behind head.
    pub staleness_max_epochs: u64,
}

impl StatsReport {
    /// Total read queries served across route/route_len/status.
    pub fn reads_served(&self) -> u64 {
        self.route.requests + self.route_len.requests + self.status.requests
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_empty_is_zero() {
        let h = LatencyHistogram::default();
        assert_eq!(h.count(), 0);
        let p = h.percentiles();
        assert_eq!((p.n, p.p50, p.max), (0, 0.0, 0.0));
    }

    #[test]
    fn histogram_buckets_by_power_of_two() {
        let h = LatencyHistogram::default();
        // 1000ns lands in bucket 9 ([512, 1024)); mid = 768.
        h.record(1000);
        let p = h.percentiles();
        assert_eq!(p.n, 1);
        assert_eq!(p.p50, 768.0);
        assert_eq!(p.max, 768.0);
        // Zero is clamped into the lowest bucket instead of panicking.
        h.record(0);
        assert_eq!(h.count(), 2);
    }

    #[test]
    fn histogram_percentiles_track_the_tail() {
        let h = LatencyHistogram::default();
        for _ in 0..99 {
            h.record(100); // bucket 6: [64,128), mid 96
        }
        h.record(1 << 20); // ~1ms outlier
        let p = h.percentiles();
        assert_eq!(p.p50, 96.0);
        assert_eq!(p.p99, 96.0);
        assert!(p.max > 1_000_000.0);
    }

    #[test]
    fn histogram_is_usable_from_many_threads() {
        let h = std::sync::Arc::new(LatencyHistogram::default());
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let h = h.clone();
                std::thread::spawn(move || {
                    for i in 0..1000u64 {
                        h.record(50 + t * 10 + i % 7);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(h.count(), 4000);
    }

    #[test]
    fn staleness_counters_accumulate() {
        let m = Metrics::default();
        m.record_staleness(0);
        m.record_staleness(3);
        m.record_staleness(1);
        assert_eq!(m.staleness_sum.load(Ordering::Relaxed), 4);
        assert_eq!(m.staleness_max.load(Ordering::Relaxed), 3);
        assert_eq!(m.staleness_samples.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn stats_report_round_trips_json() {
        let r = StatsReport {
            epoch: 5,
            epochs_published: 5,
            batches: 4,
            events_accepted: 10,
            events_rejected: 2,
            events_applied: 9,
            events_discarded: 1,
            queue_depth: 0,
            queue_capacity: 128,
            route: EndpointReport {
                requests: 42,
                latency_ns: Percentiles::of(&[100.0, 200.0]),
            },
            route_len: EndpointReport {
                requests: 0,
                latency_ns: Percentiles::of(&[]),
            },
            status: EndpointReport {
                requests: 7,
                latency_ns: Percentiles::of(&[50.0]),
            },
            staleness_mean_epochs: 0.25,
            staleness_max_epochs: 2,
        };
        let json = serde_json::to_string(&r).unwrap();
        let back: StatsReport = serde_json::from_str(&json).unwrap();
        assert_eq!(r, back);
        assert_eq!(r.reads_served(), 49);
    }
}
