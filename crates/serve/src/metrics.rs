//! Service observability: lock-free per-endpoint counters and a
//! log-bucketed latency histogram with tail percentiles.
//!
//! Every recording path is a handful of relaxed atomic operations — query
//! threads never take a lock to report a latency, so the metrics layer
//! cannot serialize the reader hot path it is measuring. Percentiles are
//! approximate (bucket-resolution: powers of two in nanoseconds, read out
//! at the geometric bucket midpoint), which is the standard trade for a
//! fixed-size concurrent histogram.

use ocp_analysis::Percentiles;
use serde::{Deserialize, Serialize};
use std::fmt::Write;
use std::sync::atomic::{AtomicU64, Ordering};

/// The concurrent power-of-two-bucketed histogram this module introduced,
/// since promoted into [`ocp_obs`] so every crate can record into one; the
/// alias keeps the serve-local name (observations are nanoseconds here).
pub use ocp_obs::Histogram as LatencyHistogram;

/// Counters and latency for one query endpoint.
#[derive(Debug, Default)]
pub struct EndpointMetrics {
    /// Requests served (successes and errors).
    pub requests: AtomicU64,
    /// Requests that returned an error outcome. Error replies are counted
    /// here and kept **out** of the latency histogram, so fast-fail
    /// replies (e.g. `EndpointDisabled`) cannot drag the percentiles.
    pub errors: AtomicU64,
    /// Service-time histogram (nanoseconds), successful requests only.
    pub latency: LatencyHistogram,
}

impl EndpointMetrics {
    /// Records one successfully served request.
    pub fn record(&self, nanos: u64) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        self.latency.record(nanos);
    }

    /// Records one request that produced an error outcome: counted, but
    /// excluded from the latency histogram.
    pub fn record_error(&self) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        self.errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a batch of `total` requests served in `total_nanos`, of
    /// which `errors` returned error outcomes. One amortized latency
    /// sample (the batch's mean per-query time) is recorded, which is the
    /// metrics-cost side of the batched read path.
    pub fn record_batch(&self, total: u64, errors: u64, total_nanos: u64) {
        if total == 0 {
            return;
        }
        self.requests.fetch_add(total, Ordering::Relaxed);
        self.errors.fetch_add(errors, Ordering::Relaxed);
        if errors < total {
            self.latency.record(total_nanos / total);
        }
    }

    /// Serializable view.
    pub fn report(&self) -> EndpointReport {
        EndpointReport {
            requests: self.requests.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            latency_ns: self.latency.percentiles(),
        }
    }
}

/// All live counters of a running service.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Route queries.
    pub route: EndpointMetrics,
    /// Hop-count queries.
    pub route_len: EndpointMetrics,
    /// k-disjoint route queries.
    pub route_disjoint: EndpointMetrics,
    /// Pairs-per-call histogram of the batched hop-count endpoint — how
    /// wide callers actually drive `route_len_batch`, and therefore how
    /// much lane-level parallelism the wide engine gets to use. One
    /// sample per batch call (empty batches included).
    pub batch_width: LatencyHistogram,
    /// Status queries.
    pub status: EndpointMetrics,
    /// Stats/epoch meta queries.
    pub meta_requests: AtomicU64,
    /// Fault/repair events admitted to the queue.
    pub events_accepted: AtomicU64,
    /// Events rejected by admission control (queue full).
    pub events_rejected: AtomicU64,
    /// Events applied to a published snapshot.
    pub events_applied: AtomicU64,
    /// Events discarded as invalid (already faulty, off-machine, …).
    pub events_discarded: AtomicU64,
    /// Snapshots published (excluding the initial one).
    pub epochs_published: AtomicU64,
    /// Event batches drained (one published epoch each, unless all events
    /// in the batch were invalid).
    pub batches: AtomicU64,
    /// Sum over read queries of `head_epoch - serving_epoch`.
    pub staleness_sum: AtomicU64,
    /// Largest single-query staleness observed, in epochs.
    pub staleness_max: AtomicU64,
    /// Read queries contributing to the staleness counters.
    pub staleness_samples: AtomicU64,
    /// Epoch publication lag: nanoseconds from the writer draining a batch
    /// to the rebuilt snapshot becoming visible to readers.
    pub epoch_publish_lag: LatencyHistogram,
    /// Certificate checks that failed at publish time (warm and cold
    /// attempts each count once). `CertMode::Warn` counts without
    /// refusing; `CertMode::Enforce` also refuses the publish.
    pub cert_failures: AtomicU64,
    /// Batches refused publication because even the cold-recompute
    /// certificate failed (`CertMode::Enforce` only). The epoch counter
    /// readers observe does **not** advance for these.
    pub publishes_cert_rejected: AtomicU64,
    /// Batches dropped for capacity-ish reasons off the certificate path:
    /// relabeling convergence failure or a WAL I/O error.
    pub publishes_overloaded: AtomicU64,
    /// WAL frame-append time (serialize + write), nanoseconds.
    pub wal_append_ns: LatencyHistogram,
    /// WAL fsync time, nanoseconds — the dominant durability cost.
    pub wal_fsync_ns: LatencyHistogram,
    /// Router/index build time of published snapshots, segment-CSR phase,
    /// nanoseconds (one sample per publish, warm and cold alike).
    pub index_build_segment_ns: LatencyHistogram,
    /// Build time, ring construction + per-ring index phase, nanoseconds.
    pub index_build_ring_ns: LatencyHistogram,
    /// Build time, wide SoA table phase, nanoseconds.
    pub index_build_wide_ns: LatencyHistogram,
    /// Build time, exit-directory phase, nanoseconds.
    pub index_build_exit_ns: LatencyHistogram,
    /// Whole router/index build wall clock, nanoseconds (≥ the sum of the
    /// phases; the remainder is region merge + grid assembly).
    pub index_build_total_ns: LatencyHistogram,
    /// Reuse ratio of the most recently published build (`f64` bits):
    /// fraction of rings, rows, and columns carried over from the
    /// previous epoch's tables. Zero for cold builds.
    pub index_reuse_ratio_bits: AtomicU64,
}

impl Metrics {
    /// Records how many epochs behind head a read query was served.
    pub fn record_staleness(&self, epochs_behind: u64) {
        self.staleness_sum
            .fetch_add(epochs_behind, Ordering::Relaxed);
        self.staleness_max
            .fetch_max(epochs_behind, Ordering::Relaxed);
        self.staleness_samples.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one published snapshot's router/index build breakdown.
    pub fn record_index_build(&self, b: &ocp_routing::BuildBreakdown) {
        self.index_build_segment_ns.record(b.segment_ns);
        self.index_build_ring_ns.record(b.ring_ns);
        self.index_build_wide_ns.record(b.wide_ns);
        self.index_build_exit_ns.record(b.exit_ns);
        self.index_build_total_ns.record(b.total_ns);
        self.index_reuse_ratio_bits
            .store(b.reuse_ratio().to_bits(), Ordering::Relaxed);
    }

    /// The latest published build's reuse ratio.
    pub fn index_reuse_ratio(&self) -> f64 {
        f64::from_bits(self.index_reuse_ratio_bits.load(Ordering::Relaxed))
    }
}

/// Serializable snapshot of one endpoint's counters.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct EndpointReport {
    /// Requests served (successes and errors).
    pub requests: u64,
    /// Requests that returned an error outcome (excluded from
    /// `latency_ns`).
    pub errors: u64,
    /// Service-time percentiles in nanoseconds, successful requests only.
    pub latency_ns: Percentiles,
}

/// Serializable snapshot of the whole service's counters — the payload of
/// the `Stats` endpoint.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct StatsReport {
    /// Head epoch when the report was taken.
    pub epoch: u64,
    /// Snapshots published since start (excluding the initial one).
    pub epochs_published: u64,
    /// Event batches coalesced and drained by the writer.
    pub batches: u64,
    /// Events admitted to the writer queue.
    pub events_accepted: u64,
    /// Events rejected by admission control.
    pub events_rejected: u64,
    /// Events applied to published snapshots.
    pub events_applied: u64,
    /// Events discarded as invalid.
    pub events_discarded: u64,
    /// Events currently waiting in the writer queue.
    pub queue_depth: usize,
    /// Capacity of the writer queue.
    pub queue_capacity: usize,
    /// Route endpoint counters.
    pub route: EndpointReport,
    /// Hop-count endpoint counters.
    pub route_len: EndpointReport,
    /// k-disjoint route endpoint counters.
    pub route_disjoint: EndpointReport,
    /// Batch-width percentiles of the batched hop-count endpoint
    /// (pairs per `route_len_batch` call; `n` counts batch calls).
    pub batch_width: Percentiles,
    /// Status endpoint counters.
    pub status: EndpointReport,
    /// Mean read staleness in epochs behind head.
    pub staleness_mean_epochs: f64,
    /// Worst read staleness in epochs behind head.
    pub staleness_max_epochs: u64,
    /// Epoch publication lag percentiles (drain → snapshot visible), in
    /// nanoseconds.
    pub publish_lag_ns: Percentiles,
    /// Publish-time certificate check failures (see
    /// [`Metrics::cert_failures`]).
    pub cert_failures: u64,
    /// Batches refused publication by the certificate gate.
    pub publishes_cert_rejected: u64,
    /// Batches dropped on convergence failure or WAL I/O error.
    pub publishes_overloaded: u64,
    /// WAL append-time percentiles, nanoseconds (all-zero when the service
    /// runs without a WAL).
    pub wal_append_ns: Percentiles,
    /// WAL fsync-time percentiles, nanoseconds.
    pub wal_fsync_ns: Percentiles,
    /// Router/index build-time percentiles per phase, nanoseconds, one
    /// sample per published snapshot (warm and cold): segment CSR, ring
    /// indexes, wide tables, exit directory, and whole-build wall clock.
    pub index_build_segment_ns: Percentiles,
    /// Ring-phase build percentiles, nanoseconds.
    pub index_build_ring_ns: Percentiles,
    /// Wide-table-phase build percentiles, nanoseconds.
    pub index_build_wide_ns: Percentiles,
    /// Exit-directory-phase build percentiles, nanoseconds.
    pub index_build_exit_ns: Percentiles,
    /// Whole-build wall-clock percentiles, nanoseconds.
    pub index_build_total_ns: Percentiles,
    /// Fraction of rings/rows/columns the most recently published build
    /// reused from the previous epoch (zero for cold builds).
    pub index_reuse_ratio: f64,
}

impl StatsReport {
    /// Total read queries served across route/route_len/route_disjoint/
    /// status.
    pub fn reads_served(&self) -> u64 {
        self.route.requests
            + self.route_len.requests
            + self.route_disjoint.requests
            + self.status.requests
    }
}

/// The `stats`-superset observability payload: service counters plus the
/// process-global metric registry and the most recent completed spans.
/// This is the typed twin of the Prometheus text page.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ObsReport {
    /// The service's own counters (identical to the `Stats` reply).
    pub stats: StatsReport,
    /// Snapshot of every family in the global `ocp-obs` registry.
    pub registry: ocp_obs::RegistrySnapshot,
    /// Recent completed spans from the global trace ring, oldest first.
    pub spans: Vec<ocp_obs::SpanRecord>,
}

/// Writes one latency summary (quantiles + count) in the text format.
fn render_summary(out: &mut String, name: &str, labels: &str, p: &Percentiles) {
    for (q, v) in [
        ("0.5", p.p50),
        ("0.9", p.p90),
        ("0.95", p.p95),
        ("0.99", p.p99),
    ] {
        let sep = if labels.is_empty() { "" } else { "," };
        let _ = writeln!(out, "{name}{{{labels}{sep}quantile=\"{q}\"}} {v}");
    }
    let suffix = if labels.is_empty() {
        String::new()
    } else {
        format!("{{{labels}}}")
    };
    let _ = writeln!(out, "{name}_count{suffix} {}", p.n);
}

/// Renders the service's own counters as Prometheus text-format families
/// (`ocp_serve_*`). The full `/metrics` page the service exposes is this
/// plus [`ocp_obs::Registry::render_prometheus`] over the global registry.
pub fn prometheus_text(stats: &StatsReport) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# HELP ocp_serve_epoch Current head epoch.");
    let _ = writeln!(out, "# TYPE ocp_serve_epoch gauge");
    let _ = writeln!(out, "ocp_serve_epoch {}", stats.epoch);

    let _ = writeln!(
        out,
        "# HELP ocp_serve_epochs_published_total Snapshots published since start."
    );
    let _ = writeln!(out, "# TYPE ocp_serve_epochs_published_total counter");
    let _ = writeln!(
        out,
        "ocp_serve_epochs_published_total {}",
        stats.epochs_published
    );

    let _ = writeln!(
        out,
        "# HELP ocp_serve_batches_total Event batches drained by the writer."
    );
    let _ = writeln!(out, "# TYPE ocp_serve_batches_total counter");
    let _ = writeln!(out, "ocp_serve_batches_total {}", stats.batches);

    let _ = writeln!(
        out,
        "# HELP ocp_serve_events_total Fault/repair events, by admission outcome."
    );
    let _ = writeln!(out, "# TYPE ocp_serve_events_total counter");
    for (outcome, value) in [
        ("accepted", stats.events_accepted),
        ("rejected", stats.events_rejected),
        ("applied", stats.events_applied),
        ("discarded", stats.events_discarded),
    ] {
        let _ = writeln!(
            out,
            "ocp_serve_events_total{{outcome=\"{outcome}\"}} {value}"
        );
    }

    let _ = writeln!(
        out,
        "# HELP ocp_serve_queue_depth Events waiting in the writer queue."
    );
    let _ = writeln!(out, "# TYPE ocp_serve_queue_depth gauge");
    let _ = writeln!(out, "ocp_serve_queue_depth {}", stats.queue_depth);
    let _ = writeln!(
        out,
        "# HELP ocp_serve_queue_capacity Capacity of the writer queue."
    );
    let _ = writeln!(out, "# TYPE ocp_serve_queue_capacity gauge");
    let _ = writeln!(out, "ocp_serve_queue_capacity {}", stats.queue_capacity);

    let _ = writeln!(
        out,
        "# HELP ocp_serve_requests_total Read queries served, by endpoint."
    );
    let _ = writeln!(out, "# TYPE ocp_serve_requests_total counter");
    let endpoints = [
        ("route", &stats.route),
        ("route_len", &stats.route_len),
        ("route_disjoint", &stats.route_disjoint),
        ("status", &stats.status),
    ];
    for (name, ep) in &endpoints {
        let _ = writeln!(
            out,
            "ocp_serve_requests_total{{endpoint=\"{name}\"}} {}",
            ep.requests
        );
    }

    let _ = writeln!(
        out,
        "# HELP ocp_serve_errors_total Read queries that returned an error outcome, by endpoint."
    );
    let _ = writeln!(out, "# TYPE ocp_serve_errors_total counter");
    for (name, ep) in &endpoints {
        let _ = writeln!(
            out,
            "ocp_serve_errors_total{{endpoint=\"{name}\"}} {}",
            ep.errors
        );
    }

    let _ = writeln!(
        out,
        "# HELP ocp_serve_latency_ns Service-time quantiles per endpoint, nanoseconds."
    );
    let _ = writeln!(out, "# TYPE ocp_serve_latency_ns summary");
    for (name, ep) in &endpoints {
        render_summary(
            &mut out,
            "ocp_serve_latency_ns",
            &format!("endpoint=\"{name}\""),
            &ep.latency_ns,
        );
    }

    let _ = writeln!(
        out,
        "# HELP ocp_serve_batch_width Pairs per route_len_batch call (count is batch calls)."
    );
    let _ = writeln!(out, "# TYPE ocp_serve_batch_width summary");
    render_summary(&mut out, "ocp_serve_batch_width", "", &stats.batch_width);

    let _ = writeln!(
        out,
        "# HELP ocp_serve_staleness_epochs Read staleness in epochs behind head."
    );
    let _ = writeln!(out, "# TYPE ocp_serve_staleness_epochs gauge");
    let _ = writeln!(
        out,
        "ocp_serve_staleness_epochs{{stat=\"mean\"}} {}",
        stats.staleness_mean_epochs
    );
    let _ = writeln!(
        out,
        "ocp_serve_staleness_epochs{{stat=\"max\"}} {}",
        stats.staleness_max_epochs
    );

    let _ = writeln!(
        out,
        "# HELP ocp_serve_publish_lag_ns Epoch publication lag quantiles (drain to visible), nanoseconds."
    );
    let _ = writeln!(out, "# TYPE ocp_serve_publish_lag_ns summary");
    render_summary(
        &mut out,
        "ocp_serve_publish_lag_ns",
        "",
        &stats.publish_lag_ns,
    );

    let _ = writeln!(
        out,
        "# HELP ocp_serve_epoch_publish_total Epoch publish attempts, by result."
    );
    let _ = writeln!(out, "# TYPE ocp_serve_epoch_publish_total counter");
    for (result, value) in [
        ("ok", stats.epochs_published),
        ("cert_reject", stats.publishes_cert_rejected),
        ("overloaded", stats.publishes_overloaded),
    ] {
        let _ = writeln!(
            out,
            "ocp_serve_epoch_publish_total{{result=\"{result}\"}} {value}"
        );
    }

    let _ = writeln!(
        out,
        "# HELP ocp_serve_cert_failures_total Publish-time certificate check failures."
    );
    let _ = writeln!(out, "# TYPE ocp_serve_cert_failures_total counter");
    let _ = writeln!(out, "ocp_serve_cert_failures_total {}", stats.cert_failures);

    let _ = writeln!(
        out,
        "# HELP ocp_serve_wal_append_ns WAL frame append time quantiles, nanoseconds."
    );
    let _ = writeln!(out, "# TYPE ocp_serve_wal_append_ns summary");
    render_summary(
        &mut out,
        "ocp_serve_wal_append_ns",
        "",
        &stats.wal_append_ns,
    );

    let _ = writeln!(
        out,
        "# HELP ocp_serve_wal_fsync_ns WAL fsync time quantiles, nanoseconds."
    );
    let _ = writeln!(out, "# TYPE ocp_serve_wal_fsync_ns summary");
    render_summary(&mut out, "ocp_serve_wal_fsync_ns", "", &stats.wal_fsync_ns);

    let _ = writeln!(
        out,
        "# HELP ocp_serve_index_build_seconds Router/index build time per phase, seconds \
         (one sample per published snapshot)."
    );
    let _ = writeln!(out, "# TYPE ocp_serve_index_build_seconds summary");
    for (phase, p) in [
        ("segment", &stats.index_build_segment_ns),
        ("ring", &stats.index_build_ring_ns),
        ("wide", &stats.index_build_wide_ns),
        ("exit", &stats.index_build_exit_ns),
        ("total", &stats.index_build_total_ns),
    ] {
        // Histograms record nanoseconds; the exported unit is seconds.
        let scaled = Percentiles {
            n: p.n,
            p50: p.p50 / 1e9,
            p90: p.p90 / 1e9,
            p95: p.p95 / 1e9,
            p99: p.p99 / 1e9,
            max: p.max / 1e9,
        };
        render_summary(
            &mut out,
            "ocp_serve_index_build_seconds",
            &format!("phase=\"{phase}\""),
            &scaled,
        );
    }

    let _ = writeln!(
        out,
        "# HELP ocp_serve_index_reuse_ratio Fraction of rings/rows/columns the latest \
         published build reused from the previous epoch."
    );
    let _ = writeln!(out, "# TYPE ocp_serve_index_reuse_ratio gauge");
    let _ = writeln!(
        out,
        "ocp_serve_index_reuse_ratio {}",
        stats.index_reuse_ratio
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_empty_is_zero() {
        let h = LatencyHistogram::default();
        assert_eq!(h.count(), 0);
        let p = h.percentiles();
        assert_eq!((p.n, p.p50, p.max), (0, 0.0, 0.0));
    }

    #[test]
    fn histogram_buckets_by_power_of_two() {
        let h = LatencyHistogram::default();
        // 1000ns lands in bucket 9 ([512, 1024)); mid = 768.
        h.record(1000);
        let p = h.percentiles();
        assert_eq!(p.n, 1);
        assert_eq!(p.p50, 768.0);
        assert_eq!(p.max, 768.0);
        // Zero is clamped into the lowest bucket instead of panicking.
        h.record(0);
        assert_eq!(h.count(), 2);
    }

    #[test]
    fn histogram_percentiles_track_the_tail() {
        let h = LatencyHistogram::default();
        for _ in 0..99 {
            h.record(100); // bucket 6: [64,128), mid 96
        }
        h.record(1 << 20); // ~1ms outlier
        let p = h.percentiles();
        assert_eq!(p.p50, 96.0);
        assert_eq!(p.p99, 96.0);
        assert!(p.max > 1_000_000.0);
    }

    #[test]
    fn histogram_is_usable_from_many_threads() {
        let h = std::sync::Arc::new(LatencyHistogram::default());
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let h = h.clone();
                std::thread::spawn(move || {
                    for i in 0..1000u64 {
                        h.record(50 + t * 10 + i % 7);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(h.count(), 4000);
    }

    #[test]
    fn errors_are_counted_but_kept_out_of_latency() {
        let ep = EndpointMetrics::default();
        ep.record(1000);
        ep.record_error();
        ep.record_error();
        let report = ep.report();
        assert_eq!(report.requests, 3);
        assert_eq!(report.errors, 2);
        assert_eq!(
            report.latency_ns.n, 1,
            "error replies must not enter the histogram"
        );
    }

    #[test]
    fn batch_recording_amortizes_one_latency_sample() {
        let ep = EndpointMetrics::default();
        ep.record_batch(64, 2, 64_000);
        let report = ep.report();
        assert_eq!(report.requests, 64);
        assert_eq!(report.errors, 2);
        assert_eq!(report.latency_ns.n, 1, "one mean sample per batch");
        ep.record_batch(0, 0, 0);
        assert_eq!(ep.report().requests, 64, "empty batches record nothing");
        // An all-error batch contributes counters but no latency sample.
        ep.record_batch(4, 4, 400);
        let report = ep.report();
        assert_eq!((report.requests, report.errors), (68, 6));
        assert_eq!(report.latency_ns.n, 1);
    }

    #[test]
    fn staleness_counters_accumulate() {
        let m = Metrics::default();
        m.record_staleness(0);
        m.record_staleness(3);
        m.record_staleness(1);
        assert_eq!(m.staleness_sum.load(Ordering::Relaxed), 4);
        assert_eq!(m.staleness_max.load(Ordering::Relaxed), 3);
        assert_eq!(m.staleness_samples.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn stats_report_round_trips_json() {
        let r = StatsReport {
            epoch: 5,
            epochs_published: 5,
            batches: 4,
            events_accepted: 10,
            events_rejected: 2,
            events_applied: 9,
            events_discarded: 1,
            queue_depth: 0,
            queue_capacity: 128,
            route: EndpointReport {
                requests: 42,
                errors: 3,
                latency_ns: Percentiles::of(&[100.0, 200.0]),
            },
            route_len: EndpointReport {
                requests: 0,
                errors: 0,
                latency_ns: Percentiles::of(&[]),
            },
            route_disjoint: EndpointReport {
                requests: 5,
                errors: 1,
                latency_ns: Percentiles::of(&[400.0]),
            },
            batch_width: Percentiles::of(&[8.0, 64.0]),
            status: EndpointReport {
                requests: 7,
                errors: 0,
                latency_ns: Percentiles::of(&[50.0]),
            },
            staleness_mean_epochs: 0.25,
            staleness_max_epochs: 2,
            publish_lag_ns: Percentiles::of(&[1000.0, 2000.0]),
            cert_failures: 1,
            publishes_cert_rejected: 1,
            publishes_overloaded: 0,
            wal_append_ns: Percentiles::of(&[300.0]),
            wal_fsync_ns: Percentiles::of(&[9000.0]),
            index_build_segment_ns: Percentiles::of(&[10_000.0]),
            index_build_ring_ns: Percentiles::of(&[20_000.0]),
            index_build_wide_ns: Percentiles::of(&[30_000.0]),
            index_build_exit_ns: Percentiles::of(&[40_000.0]),
            index_build_total_ns: Percentiles::of(&[120_000.0]),
            index_reuse_ratio: 0.75,
        };
        let json = serde_json::to_string(&r).unwrap();
        let back: StatsReport = serde_json::from_str(&json).unwrap();
        assert_eq!(r, back);
        assert_eq!(r.reads_served(), 54);
    }

    #[test]
    fn index_build_recording_tracks_phases_and_reuse() {
        let m = Metrics::default();
        assert_eq!(m.index_reuse_ratio(), 0.0);
        let b = ocp_routing::BuildBreakdown {
            segment_ns: 1_000,
            ring_ns: 2_000,
            wide_ns: 3_000,
            exit_ns: 4_000,
            total_ns: 11_000,
            rings_total: 4,
            rings_reused: 3,
            rows_total: 16,
            rows_reused: 12,
            cols_total: 16,
            cols_reused: 12,
            incremental: true,
            threads: 1,
        };
        m.record_index_build(&b);
        assert_eq!(m.index_build_segment_ns.count(), 1);
        assert_eq!(m.index_build_total_ns.count(), 1);
        assert_eq!(m.index_reuse_ratio(), b.reuse_ratio());
        assert!(m.index_reuse_ratio() > 0.7);
    }

    #[test]
    fn prometheus_text_renders_every_family() {
        let m = Metrics::default();
        m.route.record(1000);
        m.route.record_error();
        m.epoch_publish_lag.record(5000);
        m.wal_append_ns.record(300);
        m.record_index_build(&ocp_routing::BuildBreakdown {
            segment_ns: 1_000,
            ring_ns: 2_000,
            wide_ns: 3_000,
            exit_ns: 4_000,
            total_ns: 11_000,
            rings_total: 2,
            rings_reused: 1,
            rows_total: 8,
            rows_reused: 4,
            cols_total: 8,
            cols_reused: 4,
            incremental: true,
            threads: 1,
        });
        let r = StatsReport {
            epoch: 2,
            epochs_published: 2,
            batches: 2,
            events_accepted: 3,
            events_rejected: 0,
            events_applied: 2,
            events_discarded: 1,
            queue_depth: 1,
            queue_capacity: 64,
            route: m.route.report(),
            route_len: m.route_len.report(),
            route_disjoint: m.route_disjoint.report(),
            batch_width: m.batch_width.percentiles(),
            status: m.status.report(),
            staleness_mean_epochs: 0.5,
            staleness_max_epochs: 1,
            publish_lag_ns: m.epoch_publish_lag.percentiles(),
            cert_failures: 3,
            publishes_cert_rejected: 1,
            publishes_overloaded: 1,
            wal_append_ns: m.wal_append_ns.percentiles(),
            wal_fsync_ns: m.wal_fsync_ns.percentiles(),
            index_build_segment_ns: m.index_build_segment_ns.percentiles(),
            index_build_ring_ns: m.index_build_ring_ns.percentiles(),
            index_build_wide_ns: m.index_build_wide_ns.percentiles(),
            index_build_exit_ns: m.index_build_exit_ns.percentiles(),
            index_build_total_ns: m.index_build_total_ns.percentiles(),
            index_reuse_ratio: m.index_reuse_ratio(),
        };
        let text = prometheus_text(&r);
        for needle in [
            "# TYPE ocp_serve_epoch gauge",
            "ocp_serve_epoch 2",
            "ocp_serve_events_total{outcome=\"applied\"} 2",
            "ocp_serve_requests_total{endpoint=\"route\"} 2",
            "# TYPE ocp_serve_errors_total counter",
            "ocp_serve_errors_total{endpoint=\"route\"} 1",
            "ocp_serve_errors_total{endpoint=\"route_len\"} 0",
            "ocp_serve_requests_total{endpoint=\"route_disjoint\"} 0",
            "ocp_serve_latency_ns{endpoint=\"route\",quantile=\"0.5\"}",
            "ocp_serve_latency_ns_count{endpoint=\"route\"} 1",
            "# TYPE ocp_serve_publish_lag_ns summary",
            "ocp_serve_publish_lag_ns_count 1",
            "# TYPE ocp_serve_batch_width summary",
            "ocp_serve_batch_width_count 0",
            "ocp_serve_staleness_epochs{stat=\"max\"} 1",
            "# TYPE ocp_serve_epoch_publish_total counter",
            "ocp_serve_epoch_publish_total{result=\"ok\"} 2",
            "ocp_serve_epoch_publish_total{result=\"cert_reject\"} 1",
            "ocp_serve_epoch_publish_total{result=\"overloaded\"} 1",
            "ocp_serve_cert_failures_total 3",
            "# TYPE ocp_serve_wal_append_ns summary",
            "ocp_serve_wal_append_ns_count 1",
            "# TYPE ocp_serve_wal_fsync_ns summary",
            "ocp_serve_wal_fsync_ns_count 0",
            "# TYPE ocp_serve_index_build_seconds summary",
            "ocp_serve_index_build_seconds{phase=\"segment\",quantile=\"0.5\"}",
            "ocp_serve_index_build_seconds{phase=\"total\",quantile=\"0.99\"}",
            "ocp_serve_index_build_seconds_count{phase=\"exit\"} 1",
            "# TYPE ocp_serve_index_reuse_ratio gauge",
            "ocp_serve_index_reuse_ratio 0.5",
        ] {
            assert!(text.contains(needle), "missing `{needle}` in:\n{text}");
        }
    }
}
