//! The TCP transport: length-prefixed JSON frames over `std::net`.
//!
//! Wire format: each message is a 4-byte big-endian length followed by
//! that many bytes of JSON (one serialized [`Request`] or [`Response`]).
//! The server runs one acceptor thread plus one thread per connection,
//! each with its own [`ServiceHandle`] — so TCP readers inherit the same
//! lock-free hot path as in-process readers. No external async runtime is
//! involved; the protocol is strictly request/response per connection.

use crate::api::{Request, Response};
use crate::service::{MeshService, ServiceHandle};
use serde::{Deserialize, Serialize};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Upper bound on a single frame; anything larger is a protocol error.
const MAX_FRAME_BYTES: u32 = 16 * 1024 * 1024;

/// Writes one length-prefixed JSON frame.
pub fn write_frame<T: Serialize>(w: &mut impl Write, value: &T) -> io::Result<()> {
    let body = serde_json::to_string(value)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    let bytes = body.as_bytes();
    if bytes.len() as u64 > MAX_FRAME_BYTES as u64 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "frame too large",
        ));
    }
    w.write_all(&(bytes.len() as u32).to_be_bytes())?;
    w.write_all(bytes)?;
    w.flush()
}

/// Reads one length-prefixed JSON frame; `Ok(None)` on clean EOF at a
/// frame boundary.
pub fn read_frame<T: Deserialize>(r: &mut impl Read) -> io::Result<Option<T>> {
    let mut len_buf = [0u8; 4];
    match r.read_exact(&mut len_buf) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_be_bytes(len_buf);
    if len > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "frame too large",
        ));
    }
    let mut body = vec![0u8; len as usize];
    r.read_exact(&mut body)?;
    let text = String::from_utf8(body)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    serde_json::from_str(&text)
        .map(Some)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
}

/// A running TCP front-end over a [`MeshService`].
pub struct TcpServer {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    served: Arc<AtomicU64>,
    acceptor: Option<JoinHandle<()>>,
    connections: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl TcpServer {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// starts accepting connections, each served by a clone of a handle
    /// from `service`.
    pub fn start(service: &MeshService, addr: &str) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let served = Arc::new(AtomicU64::new(0));
        let connections: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let prototype = service.handle();

        let acceptor = {
            let stop = stop.clone();
            let served = served.clone();
            let connections = connections.clone();
            std::thread::Builder::new()
                .name("ocp-serve-acceptor".into())
                .spawn(move || {
                    for incoming in listener.incoming() {
                        if stop.load(Ordering::Acquire) {
                            break;
                        }
                        let Ok(stream) = incoming else { continue };
                        let handle = prototype.clone();
                        let stop = stop.clone();
                        let served = served.clone();
                        let conn = std::thread::Builder::new()
                            .name("ocp-serve-conn".into())
                            .spawn(move || serve_connection(stream, handle, stop, served))
                            .expect("spawn connection thread");
                        connections.lock().expect("connections lock").push(conn);
                    }
                })
                .expect("spawn acceptor thread")
        };

        Ok(Self {
            local_addr,
            stop,
            served,
            acceptor: Some(acceptor),
            connections,
        })
    }

    /// The bound address (resolve the ephemeral port here).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Requests served over TCP so far.
    pub fn served_requests(&self) -> u64 {
        self.served.load(Ordering::Acquire)
    }

    /// Stops accepting, unblocks the acceptor, and joins every thread.
    /// Returns the total requests served.
    pub fn shutdown(mut self) -> u64 {
        self.stop.store(true, Ordering::Release);
        // Unblock the acceptor's blocking accept with a throwaway connect.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        let connections = std::mem::take(&mut *self.connections.lock().expect("connections lock"));
        for conn in connections {
            let _ = conn.join();
        }
        self.served.load(Ordering::Acquire)
    }
}

impl Drop for TcpServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        let _ = TcpStream::connect(self.local_addr);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
    }
}

/// One connection: read a request frame, dispatch, write the response,
/// until EOF, error, or server shutdown.
///
/// Shutdown is a *drain*, not an abandonment: once `stop` is observed the
/// thread keeps serving whatever requests are already buffered on the
/// socket (replies already owed must be delivered) and only exits when the
/// stream goes idle at a frame boundary.
fn serve_connection(
    stream: TcpStream,
    mut handle: ServiceHandle,
    stop: Arc<AtomicBool>,
    served: Arc<AtomicU64>,
) {
    use std::io::BufRead;
    let _ = stream.set_nodelay(true);
    // A finite read timeout lets the thread notice server shutdown even
    // when the client goes quiet without closing.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
    let mut reader = io::BufReader::new(stream.try_clone().expect("clone stream"));
    let mut writer = io::BufWriter::new(stream);
    loop {
        let stopping = stop.load(Ordering::Acquire);
        // Wait for the next frame's first byte without consuming anything:
        // an idle timeout here can never desynchronize the stream, and a
        // drain decision is only taken at a frame boundary.
        match reader.fill_buf() {
            Ok([]) => return, // clean EOF
            Ok(_) => {}
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if stopping {
                    let _ = writer.flush();
                    return; // drained: no request in flight on this socket
                }
                continue;
            }
            Err(_) => return,
        }
        let request: Request = match read_frame(&mut reader) {
            Ok(Some(request)) => request,
            Ok(None) => return, // clean EOF
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                // Stalled mid-frame: the header may be partially consumed,
                // so the stream is no longer frame-aligned. Close rather
                // than misparse everything that follows.
                return;
            }
            Err(e) => {
                let _ = write_frame(
                    &mut writer,
                    &Response::Error {
                        message: format!("bad frame: {e}"),
                    },
                );
                return;
            }
        };
        let response = handle.dispatch(request);
        served.fetch_add(1, Ordering::Relaxed);
        if write_frame(&mut writer, &response).is_err() {
            return;
        }
    }
}

/// Why a [`Client`] call failed.
#[derive(Debug)]
pub enum ClientError {
    /// A configured read or write deadline elapsed before the operation
    /// completed. After a read timeout the connection is no longer
    /// frame-aligned; reconnect rather than retry on the same socket.
    Timeout,
    /// Any other transport or protocol failure.
    Io(io::Error),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Timeout => f.write_str("request timed out"),
            ClientError::Io(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut {
            ClientError::Timeout
        } else {
            ClientError::Io(e)
        }
    }
}

impl From<ClientError> for io::Error {
    fn from(e: ClientError) -> Self {
        match e {
            ClientError::Timeout => io::Error::new(io::ErrorKind::TimedOut, "request timed out"),
            ClientError::Io(e) => e,
        }
    }
}

/// A blocking client for the framed TCP protocol.
pub struct Client {
    reader: io::BufReader<TcpStream>,
    writer: io::BufWriter<TcpStream>,
}

impl Client {
    /// Connects to a [`TcpServer`]. No timeouts are set: calls block until
    /// the server answers. See [`set_read_timeout`](Self::set_read_timeout).
    pub fn connect(addr: SocketAddr) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        Ok(Self {
            reader: io::BufReader::new(stream.try_clone()?),
            writer: io::BufWriter::new(stream),
        })
    }

    /// Bounds how long a [`request`](Self::request) waits for its response;
    /// `None` (the default) blocks forever. On expiry the call fails with
    /// [`ClientError::Timeout`] instead of hanging on a stalled server.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        self.reader.get_ref().set_read_timeout(timeout)
    }

    /// Bounds how long sending a request may block on a congested socket.
    pub fn set_write_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        self.writer.get_ref().set_write_timeout(timeout)
    }

    /// Sends one request and blocks for its response (subject to the
    /// configured timeouts).
    pub fn request(&mut self, request: &Request) -> Result<Response, ClientError> {
        write_frame(&mut self.writer, request)?;
        read_frame(&mut self.reader)?.ok_or_else(|| {
            ClientError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed mid-request",
            ))
        })
    }

    /// k-disjoint route convenience: one frame out, one typed reply back.
    pub fn route_disjoint(
        &mut self,
        src: ocp_mesh::Coord,
        dst: ocp_mesh::Coord,
        k: usize,
    ) -> Result<crate::api::RouteDisjointReply, ClientError> {
        match self.request(&Request::RouteDisjoint { src, dst, k })? {
            Response::RouteDisjoint(reply) => Ok(reply),
            other => Err(ClientError::Io(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unexpected response to RouteDisjoint: {other:?}"),
            ))),
        }
    }

    /// Batched hop-count convenience: one frame out, one snapshot and one
    /// frame back for the whole batch.
    pub fn route_len_batch(
        &mut self,
        pairs: Vec<(ocp_mesh::Coord, ocp_mesh::Coord)>,
    ) -> Result<crate::api::RouteLenBatchReply, ClientError> {
        match self.request(&Request::RouteLenBatch { pairs })? {
            Response::RouteLenBatch(reply) => Ok(reply),
            other => Err(ClientError::Io(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unexpected response to RouteLenBatch: {other:?}"),
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::{NodeState, RouteOutcome};
    use crate::service::ServeConfig;
    use ocp_mesh::{Coord, Topology};

    fn c(x: i32, y: i32) -> Coord {
        Coord::new(x, y)
    }

    #[test]
    fn frames_round_trip_over_a_buffer() {
        let mut buf = Vec::new();
        let req = Request::Status { node: c(2, 3) };
        write_frame(&mut buf, &req).unwrap();
        let mut cursor = io::Cursor::new(buf);
        let back: Request = read_frame(&mut cursor).unwrap().unwrap();
        assert_eq!(req, back);
        // Clean EOF after the frame.
        let eof: Option<Request> = read_frame(&mut cursor).unwrap();
        assert!(eof.is_none());
    }

    #[test]
    fn oversized_frame_is_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_be_bytes());
        let mut cursor = io::Cursor::new(buf);
        let err = read_frame::<Request>(&mut cursor).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn end_to_end_over_tcp() {
        let service =
            MeshService::start(Topology::mesh(10, 10), [c(4, 4)], ServeConfig::default()).unwrap();
        let server = TcpServer::start(&service, "127.0.0.1:0").unwrap();
        let mut client = Client::connect(server.local_addr()).unwrap();

        // Route around the fault.
        match client
            .request(&Request::Route {
                src: c(0, 4),
                dst: c(9, 4),
            })
            .unwrap()
        {
            Response::Route(reply) => match reply.outcome {
                RouteOutcome::Delivered { hops } => assert_eq!(hops.last(), Some(&c(9, 4))),
                RouteOutcome::Failed { error } => panic!("route failed: {error}"),
            },
            other => panic!("unexpected response: {other:?}"),
        }

        // Inject a fault over the wire and watch status flip.
        match client
            .request(&Request::InjectFaults {
                nodes: vec![c(7, 7)],
            })
            .unwrap()
        {
            Response::Injected(ack) => assert_eq!(ack.accepted, 1),
            other => panic!("unexpected response: {other:?}"),
        }
        assert!(service.quiesce(Duration::from_secs(30)));
        match client.request(&Request::Status { node: c(7, 7) }).unwrap() {
            Response::Status(reply) => {
                assert_eq!(reply.state, NodeState::Faulty);
                assert!(reply.epoch >= 1);
            }
            other => panic!("unexpected response: {other:?}"),
        }

        // Stats over the wire counts the TCP-served reads.
        match client.request(&Request::Stats).unwrap() {
            Response::Stats(stats) => assert!(stats.reads_served() >= 2),
            other => panic!("unexpected response: {other:?}"),
        }

        // The published epoch's certificate round-trips the wire and
        // re-validates client-side against nothing but the reply itself.
        match client.request(&Request::Certificate { epoch: 1 }).unwrap() {
            Response::Certificate(reply) => {
                assert_eq!(reply.epoch, 1);
                let cert = reply.certificate.expect("Enforce default certifies");
                assert_eq!(cert.epoch, 1);
                assert_ne!(cert.grid_digest, 0);
            }
            other => panic!("unexpected response: {other:?}"),
        }

        drop(client);
        let served = server.shutdown();
        assert!(served >= 4, "served {served} requests");
        service.shutdown();
    }

    #[test]
    fn batched_reads_flow_over_tcp() {
        use crate::api::RouteLenOutcome;
        let service =
            MeshService::start(Topology::mesh(10, 10), [c(4, 4)], ServeConfig::default()).unwrap();
        let server = TcpServer::start(&service, "127.0.0.1:0").unwrap();
        let mut client = Client::connect(server.local_addr()).unwrap();

        // One frame carries the whole hop-count batch; every outcome must
        // match its singleton twin served over the same connection.
        let pairs = vec![
            (c(0, 4), c(9, 4)),
            (c(0, 0), c(9, 9)),
            (c(4, 4), c(0, 0)), // faulty source: a fast-fail error outcome
        ];
        let reply = client.route_len_batch(pairs.clone()).unwrap();
        assert_eq!(reply.outcomes.len(), pairs.len());
        assert!(matches!(reply.outcomes[2], RouteLenOutcome::Failed { .. }));
        for (&(src, dst), outcome) in pairs.iter().zip(&reply.outcomes) {
            match client.request(&Request::RouteLen { src, dst }).unwrap() {
                Response::RouteLen(single) => assert_eq!(&single.outcome, outcome),
                other => panic!("unexpected response: {other:?}"),
            }
        }

        // A heterogeneous Request::Batch round-trips positionally.
        match client
            .request(&Request::Batch {
                requests: vec![Request::Epoch, Request::Status { node: c(4, 4) }],
            })
            .unwrap()
        {
            Response::Batch { replies } => {
                assert_eq!(replies.len(), 2);
                assert!(matches!(replies[0], Response::Epoch { .. }));
                match &replies[1] {
                    Response::Status(status) => assert_eq!(status.state, NodeState::Faulty),
                    other => panic!("unexpected inner reply: {other:?}"),
                }
            }
            other => panic!("unexpected response: {other:?}"),
        }

        drop(client);
        server.shutdown();
        service.shutdown();
    }

    #[test]
    fn shutdown_drains_queued_pipelined_requests() {
        // Pin the drain contract: every request already on the socket when
        // shutdown begins gets its reply delivered, not abandoned.
        let service = MeshService::start(Topology::mesh(8, 8), [], ServeConfig::default()).unwrap();
        let server = TcpServer::start(&service, "127.0.0.1:0").unwrap();
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        let mut reader = io::BufReader::new(stream.try_clone().unwrap());
        // One synchronous request first, so the connection thread is known
        // to be up before the shutdown race starts.
        write_frame(&mut stream, &Request::Epoch).unwrap();
        let first: Response = read_frame(&mut reader).unwrap().unwrap();
        assert!(matches!(first, Response::Epoch { .. }));
        const PIPELINED: usize = 49;
        let mut wire = Vec::new();
        for _ in 0..PIPELINED {
            write_frame(&mut wire, &Request::Epoch).unwrap();
        }
        stream.write_all(&wire).unwrap();
        stream.flush().unwrap();
        // Shut down immediately: most of the burst is still queued.
        let served = server.shutdown();
        assert_eq!(
            served as usize,
            PIPELINED + 1,
            "no queued request abandoned"
        );
        for _ in 0..PIPELINED {
            let reply: Response = read_frame(&mut reader)
                .unwrap()
                .expect("reply delivered during drain");
            assert!(matches!(reply, Response::Epoch { .. }));
        }
        service.shutdown();
    }

    #[test]
    fn client_read_timeout_surfaces_as_typed_timeout() {
        // A server that accepts and then goes silent must not hang the
        // client forever once a read timeout is configured.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = Client::connect(addr).unwrap();
        client
            .set_read_timeout(Some(Duration::from_millis(100)))
            .unwrap();
        let _silent = listener.accept().unwrap();
        match client.request(&Request::Epoch) {
            Err(ClientError::Timeout) => {}
            other => panic!("expected ClientError::Timeout, got {other:?}"),
        }
    }

    #[test]
    fn two_clients_share_one_service() {
        let service = MeshService::start(Topology::mesh(8, 8), [], ServeConfig::default()).unwrap();
        let server = TcpServer::start(&service, "127.0.0.1:0").unwrap();
        let addr = server.local_addr();
        let workers: Vec<_> = (0..2)
            .map(|w| {
                std::thread::spawn(move || {
                    let mut client = Client::connect(addr).unwrap();
                    for i in 0..20 {
                        let resp = client
                            .request(&Request::RouteLen {
                                src: c(w, 0),
                                dst: c(7 - w, i % 8),
                            })
                            .unwrap();
                        assert!(matches!(resp, Response::RouteLen(_)));
                    }
                })
            })
            .collect();
        for worker in workers {
            worker.join().unwrap();
        }
        assert_eq!(server.shutdown(), 40);
        service.shutdown();
    }
}
