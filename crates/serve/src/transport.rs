//! Transport selection for the TCP front-end.
//!
//! Two ways to put a [`MeshService`] on a socket:
//!
//! * [`Transport::Blocking`] — the original `std::net` thread-per-connection
//!   server in [`crate::net`], kept unchanged as the pinned reference
//!   transport;
//! * [`Transport::Reactor`] — the `ocp-reactor` event loop: one poll thread
//!   multiplexing every connection plus a fixed worker pool, with pipelined
//!   framing v2 negotiated per connection (legacy v1 clients keep working —
//!   the reactor answers them in order).
//!
//! Both speak the same JSON request/response surface; a [`crate::Client`]
//! cannot tell them apart, which is exactly what lets the blocking transport
//! serve as the correctness oracle for the reactor in experiment E19.

use crate::api::{Request, Response, RouteDisjointReply, RouteLenBatchReply};
use crate::net::TcpServer;
use crate::service::{MeshService, ServiceHandle};
use ocp_mesh::Coord;
use ocp_reactor::{PipelinedClient, ReactorConfig, ReactorServer, StatsSnapshot};
use std::io;
use std::net::{SocketAddr, SocketAddrV4};

/// Which TCP front-end to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Transport {
    /// Thread-per-connection `std::net` server (the pinned reference).
    Blocking,
    /// Epoll event loop with a worker pool and pipelined framing.
    Reactor,
}

/// Decodes one framed request payload, dispatches it on `handle`, and
/// encodes the response — the byte-level bridge between the reactor's
/// framing and the typed API. Malformed JSON gets a `Response::Error`
/// instead of tearing the connection down.
pub fn dispatch_bytes(handle: &mut ServiceHandle, payload: &[u8]) -> Vec<u8> {
    let response = match serde_json::from_slice::<Request>(payload) {
        Ok(request) => handle.dispatch(request),
        Err(e) => Response::Error {
            message: format!("bad request: {e}"),
        },
    };
    serde_json::to_vec(&response).unwrap_or_else(|_| b"{}".to_vec())
}

/// A typed client over the reactor's pipelined (framing v2) connection:
/// JSON-encodes [`Request`]s under correlation ids and decodes
/// [`Response`]s — the [`Transport::Reactor`] twin of the blocking
/// [`crate::Client`]. Several requests may be in flight at once;
/// replies come back in server completion order, keyed by id.
pub struct PipelinedApiClient {
    inner: PipelinedClient,
}

impl PipelinedApiClient {
    /// Connects and negotiates pipelined framing v2.
    pub fn connect(addr: SocketAddr) -> io::Result<PipelinedApiClient> {
        Ok(PipelinedApiClient {
            inner: PipelinedClient::connect(addr)?,
        })
    }

    /// Sends one request without waiting, returning its correlation id.
    pub fn send(&mut self, request: &Request) -> io::Result<u64> {
        let payload = serde_json::to_vec(request)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        self.inner.send(&payload)
    }

    /// Receives the next reply in server completion order.
    pub fn recv(&mut self) -> io::Result<(u64, Response)> {
        let (id, payload) = self.inner.recv()?;
        let response = serde_json::from_slice(&payload)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        Ok((id, response))
    }

    /// Round-trips one k-disjoint route query. The connection must have
    /// no other replies outstanding (drain pipelined traffic first).
    pub fn route_disjoint(
        &mut self,
        src: Coord,
        dst: Coord,
        k: usize,
    ) -> io::Result<RouteDisjointReply> {
        let id = self.send(&Request::RouteDisjoint { src, dst, k })?;
        let (got_id, response) = self.recv()?;
        if got_id != id {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("reply for correlation id {got_id}, expected {id}"),
            ));
        }
        match response {
            Response::RouteDisjoint(reply) => Ok(reply),
            Response::Error { message } => Err(io::Error::other(message)),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unexpected response to RouteDisjoint: {other:?}"),
            )),
        }
    }

    /// Round-trips one batched hop-count query — the wide read path over
    /// the reactor transport. The connection must have no other replies
    /// outstanding (drain pipelined traffic first).
    pub fn route_len_batch(
        &mut self,
        pairs: Vec<(Coord, Coord)>,
    ) -> io::Result<RouteLenBatchReply> {
        let id = self.send(&Request::RouteLenBatch { pairs })?;
        let (got_id, response) = self.recv()?;
        if got_id != id {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("reply for correlation id {got_id}, expected {id}"),
            ));
        }
        match response {
            Response::RouteLenBatch(reply) => Ok(reply),
            Response::Error { message } => Err(io::Error::other(message)),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unexpected response to RouteLenBatch: {other:?}"),
            )),
        }
    }
}

/// A running TCP front-end of either flavor.
pub enum TcpFront {
    /// The blocking reference transport.
    Blocking(TcpServer),
    /// The event-loop transport.
    Reactor(ReactorServer),
}

impl TcpFront {
    /// Starts the selected transport on `addr` (use port 0 for ephemeral).
    pub fn start(service: &MeshService, addr: &str, transport: Transport) -> io::Result<TcpFront> {
        match transport {
            Transport::Blocking => Ok(TcpFront::Blocking(TcpServer::start(service, addr)?)),
            Transport::Reactor => Self::start_reactor(service, addr, ReactorConfig::default()),
        }
    }

    /// Starts the reactor transport with explicit tuning.
    pub fn start_reactor(
        service: &MeshService,
        addr: &str,
        config: ReactorConfig,
    ) -> io::Result<TcpFront> {
        let addr: SocketAddrV4 = addr
            .parse()
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, format!("bad addr: {e}")))?;
        // One ServiceHandle per worker: each worker keeps the same lock-free
        // snapshot-cached hot path as an in-process reader.
        let prototype = service.handle();
        let server = ReactorServer::start(addr, config, move || {
            let mut handle = prototype.clone();
            move |payload: &[u8]| dispatch_bytes(&mut handle, payload)
        })?;
        Ok(TcpFront::Reactor(server))
    }

    /// The bound address (ephemeral port resolved).
    pub fn local_addr(&self) -> SocketAddr {
        match self {
            TcpFront::Blocking(s) => s.local_addr(),
            TcpFront::Reactor(s) => s.local_addr(),
        }
    }

    /// Requests served so far.
    pub fn served_requests(&self) -> u64 {
        match self {
            TcpFront::Blocking(s) => s.served_requests(),
            TcpFront::Reactor(s) => s.stats().responses,
        }
    }

    /// Reactor counters, when running the reactor transport.
    pub fn reactor_stats(&self) -> Option<StatsSnapshot> {
        match self {
            TcpFront::Blocking(_) => None,
            TcpFront::Reactor(s) => Some(s.stats()),
        }
    }

    /// Graceful shutdown (both transports drain in-flight requests);
    /// returns the total requests served.
    pub fn shutdown(self) -> u64 {
        match self {
            TcpFront::Blocking(s) => s.shutdown(),
            TcpFront::Reactor(mut s) => {
                s.shutdown();
                s.stats().responses
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::NodeState;
    use crate::net::Client;
    use crate::service::ServeConfig;
    use ocp_mesh::{Coord, Topology};
    use ocp_reactor::PipelinedClient;

    fn c(x: i32, y: i32) -> Coord {
        Coord::new(x, y)
    }

    #[test]
    fn legacy_v1_client_works_against_the_reactor() {
        let service =
            MeshService::start(Topology::mesh(8, 8), [c(3, 3)], ServeConfig::default()).unwrap();
        let front = TcpFront::start(&service, "127.0.0.1:0", Transport::Reactor).unwrap();
        let mut client = Client::connect(front.local_addr()).unwrap();
        match client.request(&Request::Status { node: c(3, 3) }).unwrap() {
            Response::Status(reply) => assert_eq!(reply.state, NodeState::Faulty),
            other => panic!("unexpected response: {other:?}"),
        }
        match client.request(&Request::Epoch).unwrap() {
            Response::Epoch { .. } => {}
            other => panic!("unexpected response: {other:?}"),
        }
        drop(client);
        assert!(front.shutdown() >= 2);
        service.shutdown();
    }

    #[test]
    fn pipelined_v2_replies_match_the_in_process_oracle() {
        let service =
            MeshService::start(Topology::mesh(10, 10), [c(4, 4)], ServeConfig::default()).unwrap();
        let front = TcpFront::start(&service, "127.0.0.1:0", Transport::Reactor).unwrap();
        let mut oracle = service.handle();
        let mut client = PipelinedClient::connect(front.local_addr()).unwrap();

        let requests: Vec<Request> = (0..9)
            .map(|i| Request::RouteLen {
                src: c(i % 3, 0),
                dst: c(9 - i % 3, 9),
            })
            .chain([Request::Epoch, Request::Stats])
            .collect();
        let mut expected = std::collections::BTreeMap::new();
        for request in &requests {
            let id = client.send(&serde_json::to_vec(request).unwrap()).unwrap();
            expected.insert(id, request.clone());
        }
        for _ in 0..requests.len() {
            let (id, payload) = client.recv().unwrap();
            let got: Response = serde_json::from_slice(&payload).unwrap();
            let want = oracle.dispatch(expected.remove(&id).unwrap());
            // Stats replies embed live counters; compare only the variant.
            match (&got, &want) {
                (Response::Stats(_), Response::Stats(_)) => {}
                (Response::Epoch { .. }, Response::Epoch { .. }) => {}
                _ => assert_eq!(got, want, "reply for corr id {id} diverged from oracle"),
            }
        }
        drop(client);
        front.shutdown();
        service.shutdown();
    }

    #[test]
    fn typed_pipelined_client_serves_batched_route_len() {
        let service =
            MeshService::start(Topology::mesh(12, 12), [c(5, 5)], ServeConfig::default()).unwrap();
        let front = TcpFront::start(&service, "127.0.0.1:0", Transport::Reactor).unwrap();
        let mut oracle = service.handle();
        let mut client = PipelinedApiClient::connect(front.local_addr()).unwrap();

        // Pipelined typed traffic first: ids come back keyed, interleaved
        // at the server's discretion.
        let id_a = client.send(&Request::Epoch).unwrap();
        let id_b = client
            .send(&Request::RouteLen {
                src: c(0, 0),
                dst: c(11, 11),
            })
            .unwrap();
        for _ in 0..2 {
            let (id, response) = client.recv().unwrap();
            if id == id_a {
                assert!(matches!(response, Response::Epoch { .. }));
            } else {
                assert_eq!(id, id_b);
                let want = oracle.dispatch(Request::RouteLen {
                    src: c(0, 0),
                    dst: c(11, 11),
                });
                assert_eq!(response, want);
            }
        }

        // Then the batched read path: pairs spanning detours around the
        // fault, an error outcome, and a zero-hop self-pair, answered
        // through the service's wide engine and field-equal to the
        // in-process oracle.
        let pairs = vec![
            (c(0, 5), c(11, 5)),
            (c(5, 5), c(0, 0)), // endpoint faulty
            (c(2, 2), c(2, 2)),
            (c(11, 0), c(0, 11)),
        ];
        let reply = client.route_len_batch(pairs.clone()).unwrap();
        let want = oracle.route_len_batch(&pairs);
        assert_eq!(reply, want);
        assert_eq!(reply.outcomes.len(), pairs.len());

        drop(client);
        front.shutdown();
        service.shutdown();
    }

    #[test]
    fn blocking_selector_still_runs_the_reference_transport() {
        let service = MeshService::start(Topology::mesh(6, 6), [], ServeConfig::default()).unwrap();
        let front = TcpFront::start(&service, "127.0.0.1:0", Transport::Blocking).unwrap();
        assert!(front.reactor_stats().is_none());
        let mut client = Client::connect(front.local_addr()).unwrap();
        assert!(matches!(
            client.request(&Request::Epoch).unwrap(),
            Response::Epoch { .. }
        ));
        drop(client);
        assert_eq!(front.shutdown(), 1);
        service.shutdown();
    }
}
