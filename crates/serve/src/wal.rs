//! A dependency-free epoch write-ahead log.
//!
//! The writer thread appends one record per applied event batch **before**
//! publishing the resulting snapshot, so a crash between append and
//! publish loses at most the not-yet-visible epoch — never a published
//! one. [`crate::service::MeshService::recover`] replays the log through
//! the ordinary pipeline: because epoch application is deterministic
//! (the PR-1 cold-oracle replay property), the replayed terminal snapshot
//! is field-identical to the pre-crash one, and the certificate digest
//! stored per record proves it.
//!
//! ## On-disk format
//!
//! A WAL file is a sequence of frames:
//!
//! ```text
//! [u32 BE payload length][u64 BE FNV-1a checksum of payload][payload]
//! ```
//!
//! where the payload is the JSON serialization of one [`WalRecord`]. The
//! first record is always [`WalRecord::Init`] (topology + initial faults +
//! rule); every subsequent record is a [`WalRecord::Batch`]. Frames are
//! written with a single `write_all` and fsynced before the corresponding
//! epoch publish.
//!
//! ## Torn-tail tolerance vs mid-file corruption
//!
//! A crash mid-append leaves a torn frame at the tail: a truncated header,
//! a truncated payload, or a payload whose checksum does not match — and
//! nothing decodable after it, because appends only ever extend the file.
//! [`Wal::open`] reads frames until the first invalid one and then
//! distinguishes the two cases: if no intact frame exists anywhere after
//! the invalid region (a true torn tail), the file is **truncated back to
//! the last intact frame boundary** and positioned for append, so recovery
//! sees a clean prefix and the service can keep logging into the same
//! file. If intact frames *do* follow the invalid region, the file was
//! corrupted mid-file (bit rot or tampering); truncating would destroy
//! fsynced, published epochs, so `open` refuses with an
//! [`InvalidData`](io::ErrorKind::InvalidData) error instead.
//!
//! ## Failed-append rollback
//!
//! A failed append or fsync on a *live* log must not leave bytes behind:
//! a fully-written record for an epoch that was never published would make
//! the next publish's record a duplicate epoch number (recovery then fails
//! on the non-sequential history), and a partially-written frame would
//! masquerade as a torn tail and swallow every later record on open. The
//! writer records [`Wal::offset`] before each append and calls
//! [`Wal::rollback`] on failure; if the rollback itself fails the log is
//! **poisoned** — every further append fails fast rather than risk landing
//! records behind torn bytes.

use crate::snapshot::EventBatch;
use ocp_core::certificate::fnv1a;
use ocp_core::prelude::SafetyRule;
use ocp_mesh::{Coord, Topology};
use serde::{Deserialize, Serialize};
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Frame header size: u32 length + u64 checksum.
const HEADER: usize = 12;

/// Upper bound on one record's payload, as a sanity check against reading
/// garbage lengths from a corrupt header (16 MiB is orders of magnitude
/// above any real batch record).
const MAX_PAYLOAD: u32 = 16 << 20;

/// One durable record.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum WalRecord {
    /// First record of every log: the machine and its initial state.
    Init {
        /// The machine.
        topology: Topology,
        /// Faults present at epoch 0.
        faults: Vec<Coord>,
        /// Safety rule the service labels under.
        rule: SafetyRule,
        /// [`ocp_core::certificate::outcome_digest`] of the epoch-0
        /// snapshot (0 when certificates are off).
        digest: u64,
    },
    /// One applied event batch.
    Batch {
        /// Epoch the batch produced.
        epoch: u64,
        /// Fault events in the batch.
        faults: Vec<Coord>,
        /// Repair events in the batch.
        repairs: Vec<Coord>,
        /// Certificate grid digest of the resulting snapshot (0 when
        /// certificates are off). Recovery re-derives the snapshot and
        /// verifies the digest matches.
        cert_digest: u64,
    },
}

impl WalRecord {
    /// Convenience constructor for a batch record.
    pub fn batch(epoch: u64, batch: &EventBatch, cert_digest: u64) -> Self {
        WalRecord::Batch {
            epoch,
            faults: batch.faults.clone(),
            repairs: batch.repairs.clone(),
            cert_digest,
        }
    }
}

/// An open write-ahead log, positioned for append.
#[derive(Debug)]
pub struct Wal {
    file: File,
    path: PathBuf,
    /// Logical end of the intact log — the offset the next append writes
    /// at, which is also the rollback point for a failed append.
    len: u64,
    /// Set when a failed append could not be rolled back: the on-disk
    /// tail is in an unknown state, so further appends must not land
    /// after it (they would be silently dropped by the next `open`).
    poisoned: bool,
}

impl Wal {
    /// Creates a fresh log at `path` (truncating any existing file) and
    /// writes + fsyncs the `init` record.
    pub fn create(path: impl AsRef<Path>, init: &WalRecord) -> io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)?;
        let mut wal = Self {
            file,
            path,
            len: 0,
            poisoned: false,
        };
        wal.append(init)?;
        wal.sync()?;
        Ok(wal)
    }

    /// Opens an existing log, validates every frame, truncates a torn
    /// tail, and returns the intact records plus the log positioned for
    /// append.
    ///
    /// Only the *last* frame may legitimately be torn (a crash mid-append
    /// tears at most one frame, and appends only extend the file, so
    /// nothing decodable can follow a tear). An invalid frame with intact
    /// frames after it therefore means the log was tampered with or the
    /// disk corrupted it mid-file; truncating there would destroy
    /// fsynced, published epochs, so that case is an
    /// [`InvalidData`](io::ErrorKind::InvalidData) error. Callers decide
    /// how much of a torn-tail prefix is acceptable (recovery requires at
    /// least the `Init` record).
    pub fn open(path: impl AsRef<Path>) -> io::Result<(Self, Vec<WalRecord>)> {
        let path = path.as_ref().to_path_buf();
        let mut file = OpenOptions::new().read(true).write(true).open(&path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;

        let mut records = Vec::new();
        let mut offset = 0usize;
        while bytes.len() - offset >= HEADER {
            let len = u32::from_be_bytes(bytes[offset..offset + 4].try_into().expect("4 bytes"));
            if len > MAX_PAYLOAD {
                break; // garbage length: torn header
            }
            let len = len as usize;
            let Some(end) = offset.checked_add(HEADER + len) else {
                break;
            };
            if end > bytes.len() {
                break; // truncated payload
            }
            let checksum =
                u64::from_be_bytes(bytes[offset + 4..offset + HEADER].try_into().expect("8"));
            let payload = &bytes[offset + HEADER..end];
            if fnv1a(payload) != checksum {
                break; // corrupt payload
            }
            let Ok(record) = serde_json::from_slice::<WalRecord>(payload) else {
                break; // checksummed but undecodable: treat as end of prefix
            };
            records.push(record);
            offset = end;
        }

        if offset < bytes.len() {
            // A true torn tail has nothing decodable after the invalid
            // region (appends only extend the file). Intact frames after
            // it mean mid-file corruption: truncating would silently
            // destroy fsynced, published epochs — refuse instead.
            if (offset..bytes.len()).any(|p| intact_frame_at(&bytes, p)) {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "WAL corrupt mid-file: intact frames follow an \
                         invalid frame at byte {offset}"
                    ),
                ));
            }
            // Torn tail: truncate so appends resume at a frame boundary.
            file.set_len(offset as u64)?;
        }
        file.seek(SeekFrom::Start(offset as u64))?;
        Ok((
            Self {
                file,
                path,
                len: offset as u64,
                poisoned: false,
            },
            records,
        ))
    }

    /// Appends one record (buffered in the OS; call [`Wal::sync`] to make
    /// it durable). Fails fast on a poisoned log — see [`Wal::rollback`].
    pub fn append(&mut self, record: &WalRecord) -> io::Result<()> {
        if self.poisoned {
            return Err(io::Error::other(
                "wal poisoned by an earlier failed rollback",
            ));
        }
        let payload =
            serde_json::to_vec(record).map_err(|e| io::Error::other(format!("wal encode: {e}")))?;
        let len =
            u32::try_from(payload.len()).map_err(|_| io::Error::other("wal record over 4 GiB"))?;
        if len > MAX_PAYLOAD {
            return Err(io::Error::other("wal record over frame cap"));
        }
        let mut frame = Vec::with_capacity(HEADER + payload.len());
        frame.extend_from_slice(&len.to_be_bytes());
        frame.extend_from_slice(&fnv1a(&payload).to_be_bytes());
        frame.extend_from_slice(&payload);
        self.file.write_all(&frame)?;
        self.len += frame.len() as u64;
        Ok(())
    }

    /// Forces appended records to stable storage.
    pub fn sync(&mut self) -> io::Result<()> {
        self.file.sync_data()
    }

    /// The logical end of the intact log: record this before an append so
    /// a failed append (or its fsync) can be rolled back.
    pub fn offset(&self) -> u64 {
        self.len
    }

    /// Rolls the file back to `offset` (a value previously returned by
    /// [`Wal::offset`]) after a failed append or fsync, removing any
    /// fully- or partially-written bytes of the aborted record so the log
    /// never holds a frame for an epoch that was not published. The
    /// truncation is itself fsynced. If any step fails the log is
    /// **poisoned**: its on-disk tail is unknown, and every further
    /// [`Wal::append`] fails fast instead of landing records behind torn
    /// bytes that the next [`Wal::open`] would silently drop.
    pub fn rollback(&mut self, offset: u64) -> io::Result<()> {
        if self.poisoned {
            return Err(io::Error::other(
                "wal poisoned by an earlier failed rollback",
            ));
        }
        let result = self
            .file
            .set_len(offset)
            .and_then(|()| self.file.seek(SeekFrom::Start(offset)).map(|_| ()))
            .and_then(|()| self.file.sync_data());
        match result {
            Ok(()) => {
                self.len = offset;
                Ok(())
            }
            Err(e) => {
                self.poisoned = true;
                Err(e)
            }
        }
    }

    /// The path this log lives at.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// True when a fully intact, decodable frame starts at byte `p` — the
/// evidence [`Wal::open`] uses to tell mid-file corruption (intact frames
/// after the bad region) from a torn tail (nothing decodable after it).
/// A random 12-byte window passing the length bound, the checksum, *and*
/// JSON-decoding as a [`WalRecord`] by accident is not a realistic event.
fn intact_frame_at(bytes: &[u8], p: usize) -> bool {
    if bytes.len().saturating_sub(p) < HEADER {
        return false;
    }
    let len = u32::from_be_bytes(bytes[p..p + 4].try_into().expect("4 bytes"));
    if len > MAX_PAYLOAD {
        return false;
    }
    let Some(end) = p.checked_add(HEADER + len as usize) else {
        return false;
    };
    if end > bytes.len() {
        return false;
    }
    let checksum = u64::from_be_bytes(bytes[p + 4..p + HEADER].try_into().expect("8 bytes"));
    let payload = &bytes[p + HEADER..end];
    fnv1a(payload) == checksum && serde_json::from_slice::<WalRecord>(payload).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    fn c(x: i32, y: i32) -> Coord {
        Coord::new(x, y)
    }

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("ocp-wal-tests");
        fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}-{}.wal", std::process::id()))
    }

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord::Init {
                topology: Topology::mesh(8, 8),
                faults: vec![c(1, 1)],
                rule: SafetyRule::BothDimensions,
                digest: 42,
            },
            WalRecord::Batch {
                epoch: 1,
                faults: vec![c(2, 2), c(3, 3)],
                repairs: vec![],
                cert_digest: 7,
            },
            WalRecord::Batch {
                epoch: 2,
                faults: vec![],
                repairs: vec![c(2, 2)],
                cert_digest: 9,
            },
        ]
    }

    fn write_all(path: &Path, records: &[WalRecord]) {
        let mut wal = Wal::create(path, &records[0]).unwrap();
        for r in &records[1..] {
            wal.append(r).unwrap();
        }
        wal.sync().unwrap();
    }

    #[test]
    fn round_trips_records() {
        let path = tmp("round-trip");
        let records = sample_records();
        write_all(&path, &records);
        let (_wal, back) = Wal::open(&path).unwrap();
        assert_eq!(back, records);
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn append_after_open_continues_the_log() {
        let path = tmp("reopen-append");
        let records = sample_records();
        write_all(&path, &records);
        let (mut wal, _) = Wal::open(&path).unwrap();
        let extra = WalRecord::Batch {
            epoch: 3,
            faults: vec![c(5, 5)],
            repairs: vec![],
            cert_digest: 11,
        };
        wal.append(&extra).unwrap();
        wal.sync().unwrap();
        drop(wal);
        let (_wal, back) = Wal::open(&path).unwrap();
        assert_eq!(back.len(), 4);
        assert_eq!(back[3], extra);
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_at_every_offset() {
        let path = tmp("torn-tail");
        let records = sample_records();
        write_all(&path, &records);
        let full = fs::read(&path).unwrap();

        // Find each frame boundary so we know how many records survive a
        // cut at any byte offset.
        let mut boundaries = vec![0usize];
        let mut off = 0usize;
        while off < full.len() {
            let len = u32::from_be_bytes(full[off..off + 4].try_into().unwrap()) as usize;
            off += HEADER + len;
            boundaries.push(off);
        }

        for cut in 0..full.len() {
            fs::write(&path, &full[..cut]).unwrap();
            let (_wal, back) = Wal::open(&path).unwrap();
            let expect = boundaries.iter().filter(|&&b| b <= cut && b > 0).count();
            assert_eq!(back.len(), expect, "cut at {cut}");
            assert_eq!(back, records[..expect], "cut at {cut}");
            assert_eq!(
                fs::metadata(&path).unwrap().len(),
                boundaries[expect] as u64,
                "tail truncated to last intact frame (cut {cut})"
            );
        }
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn mid_file_corruption_is_an_error_not_a_truncation() {
        let path = tmp("corrupt-mid");
        let records = sample_records();
        write_all(&path, &records);
        let mut bytes = fs::read(&path).unwrap();
        // Flip a byte inside the second frame's payload: the intact third
        // frame after it proves this is mid-file corruption, not a torn
        // tail, and open() must refuse rather than destroy frame 3.
        let first_len = u32::from_be_bytes(bytes[0..4].try_into().unwrap()) as usize;
        let second_payload_start = HEADER + first_len + HEADER;
        bytes[second_payload_start] ^= 0xff;
        fs::write(&path, &bytes).unwrap();
        let err = Wal::open(&path).expect_err("mid-file corruption refused");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert_eq!(
            fs::metadata(&path).unwrap().len(),
            bytes.len() as u64,
            "refusal must not modify the file"
        );
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupt_final_frame_is_truncated_as_a_torn_tail() {
        let path = tmp("corrupt-tail");
        let records = sample_records();
        write_all(&path, &records);
        let mut bytes = fs::read(&path).unwrap();
        // Flip a byte inside the *last* frame's payload: nothing intact
        // follows, so this is indistinguishable from a torn tail and the
        // prefix survives.
        let mut off = 0usize;
        for _ in 0..2 {
            let len = u32::from_be_bytes(bytes[off..off + 4].try_into().unwrap()) as usize;
            off += HEADER + len;
        }
        bytes[off + HEADER] ^= 0xff;
        fs::write(&path, &bytes).unwrap();
        let (_wal, back) = Wal::open(&path).unwrap();
        assert_eq!(back, records[..2], "intact prefix survives");
        assert_eq!(fs::metadata(&path).unwrap().len(), off as u64);
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn rollback_removes_an_aborted_append() {
        let path = tmp("rollback");
        let records = sample_records();
        write_all(&path, &records);
        let (mut wal, _) = Wal::open(&path).unwrap();
        let pre = wal.offset();
        let extra = WalRecord::Batch {
            epoch: 3,
            faults: vec![c(6, 6)],
            repairs: vec![],
            cert_digest: 13,
        };
        // Simulate a publish whose fsync failed after a complete append:
        // the rollback must erase the record as if it never happened.
        wal.append(&extra).unwrap();
        assert!(wal.offset() > pre, "append advanced the logical end");
        wal.rollback(pre).unwrap();
        assert_eq!(wal.offset(), pre);
        // The log still accepts the *same epoch* afterwards — exactly what
        // the writer's retry with the next batch produces.
        wal.append(&extra).unwrap();
        wal.sync().unwrap();
        drop(wal);
        let (_wal, back) = Wal::open(&path).unwrap();
        assert_eq!(back.len(), 4, "no duplicate-epoch record survives");
        assert_eq!(back[..3], records);
        assert_eq!(back[3], extra);
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn garbage_length_header_is_tolerated() {
        let path = tmp("garbage-len");
        let records = sample_records();
        write_all(&path, &records);
        let mut bytes = fs::read(&path).unwrap();
        let len = bytes.len();
        bytes.extend_from_slice(&u32::MAX.to_be_bytes()); // absurd length
        bytes.extend_from_slice(&[0u8; 20]);
        fs::write(&path, &bytes).unwrap();
        let (_wal, back) = Wal::open(&path).unwrap();
        assert_eq!(back, records);
        assert_eq!(fs::metadata(&path).unwrap().len(), len as u64);
        fs::remove_file(&path).unwrap();
    }
}
