//! Executable versions of the paper's worked examples (Section 3 and
//! Figure 2), pinned end to end.

use ocp_core::prelude::*;
use ocp_core::verify::verify;
use ocp_mesh::Coord;
use ocp_workloads::fixtures;

fn c(x: i32, y: i32) -> Coord {
    Coord::new(x, y)
}

#[test]
fn section3_example_full_flow() {
    let fx = fixtures::sec3_example();
    let map = FaultMap::new(fx.topology, fx.faults.iter().copied());
    let out = run_pipeline(&map, &PipelineConfig::default());

    // One faulty block {1..3}^2.
    assert_eq!(out.blocks.len(), 1);
    let block = &out.blocks[0];
    assert_eq!(block.len(), 9);
    assert!(block.is_rectangle());
    assert_eq!(
        block.bbox().unwrap(),
        ocp_geometry::Rect::new(c(1, 1), c(3, 3))
    );

    // All nonfaulty nodes of the block are enabled; the disabled set is
    // exactly the faults. The paper groups them as {(1,3)} and
    // {(2,1),(3,2)} per originating block; under 4-connectivity the latter
    // two are separate singleton regions (documented in DESIGN.md §4) —
    // the substantive claim (every region fault-only) is what we pin.
    assert_eq!(out.regions.len(), 3);
    for region in &out.regions {
        assert_eq!(region.nonfaulty_count(), 0);
        assert_eq!(region.len(), 1);
        assert!(region.is_orthogonally_convex());
    }
    let stats = ModelStats::collect(&map, &out);
    assert_eq!(stats.enabled_ratio(), Some(1.0));

    verify(&map, &out).expect("all Section 4 invariants");
}

#[test]
fn fig2a_corner_pocket_enables() {
    let fx = fixtures::fig2a_corner_pocket();
    let map = FaultMap::new(fx.topology, fx.faults.iter().copied());
    let out = run_pipeline(&map, &PipelineConfig::default());
    // The 2x2 corner pocket is fully re-enabled...
    for p in ocp_geometry::Rect::new(c(3, 3), c(4, 4)).cells() {
        assert_eq!(*out.activation.get(p), ActivationState::Enabled, "{p}");
    }
    // ...leaving a single L-shaped disabled region of exactly the faults.
    assert_eq!(out.regions.len(), 1);
    let region = &out.regions[0];
    assert_eq!(region.nonfaulty_count(), 0);
    assert_eq!(region.len(), 16 - 4);
    assert!(region.is_orthogonally_convex());
    verify(&map, &out).expect("invariants");
}

#[test]
fn fig2b_center_pocket_stays_disabled() {
    let fx = fixtures::fig2b_center_pocket();
    let map = FaultMap::new(fx.topology, fx.faults.iter().copied());
    let out = run_pipeline(&map, &PipelineConfig::default());
    // The monotone Definition 3 keeps the center pocket disabled: the
    // whole block remains one disabled region (faults + 4 pocket nodes).
    for p in ocp_geometry::Rect::new(c(2, 3), c(3, 4)).cells() {
        assert_eq!(*out.activation.get(p), ActivationState::Disabled, "{p}");
    }
    assert_eq!(out.regions.len(), 1);
    let region = &out.regions[0];
    assert_eq!(region.nonfaulty_count(), 4);
    assert_eq!(region.len(), 20);
    // Theorem 1/2 still hold: the full rectangle is the smallest orthogonal
    // convex polygon containing this fault set.
    assert!(region.is_orthogonally_convex());
    verify(&map, &out).expect("invariants");
}

#[test]
fn fig2_pocket_position_is_the_whole_difference() {
    // Same pocket size, same block area; only the pocket position differs,
    // and that alone decides whether the pocket nodes are recovered — the
    // paper's motivation for the monotone rule.
    let a = fixtures::fig2a_corner_pocket();
    let b = fixtures::fig2b_center_pocket();
    let map_a = FaultMap::new(a.topology, a.faults.iter().copied());
    let map_b = FaultMap::new(b.topology, b.faults.iter().copied());
    let out_a = run_pipeline(&map_a, &PipelineConfig::default());
    let out_b = run_pipeline(&map_b, &PipelineConfig::default());
    let sa = ModelStats::collect(&map_a, &out_a);
    let sb = ModelStats::collect(&map_b, &out_b);
    assert_eq!(sa.disabled_nonfaulty, 0);
    assert_eq!(sb.disabled_nonfaulty, 4);
}

#[test]
fn atlas_pattern_demonstrates_rule_differences() {
    let fx = fixtures::atlas_pattern();
    let map = FaultMap::new(fx.topology, fx.faults.iter().copied());
    let out_2a = run_pipeline(
        &map,
        &PipelineConfig {
            rule: SafetyRule::TwoUnsafeNeighbors,
            ..PipelineConfig::default()
        },
    );
    let out_2b = run_pipeline(&map, &PipelineConfig::default());
    let s2a = ModelStats::collect(&map, &out_2a);
    let s2b = ModelStats::collect(&map, &out_2b);
    // 2b sacrifices no more nonfaulty nodes than 2a, and phase 2 recovers
    // further nodes under both.
    assert!(s2b.unsafe_nonfaulty <= s2a.unsafe_nonfaulty);
    assert!(s2b.disabled_nonfaulty <= s2b.unsafe_nonfaulty);
    verify(&map, &out_2a).expect("2a invariants");
    verify(&map, &out_2b).expect("2b invariants");
}

#[test]
fn paper_round_claims_on_fixtures() {
    // "the averages of the maximum numbers of rounds ... are both
    // relatively low, much lower than the diameter of the mesh."
    for fx in fixtures::all() {
        let map = FaultMap::new(fx.topology, fx.faults.iter().copied());
        let out = run_pipeline(&map, &PipelineConfig::default());
        let diameter = fx.topology.diameter();
        assert!(out.safety_trace.rounds() < diameter / 2, "{}", fx.name);
        assert!(out.enablement_trace.rounds() < diameter / 2, "{}", fx.name);
        assert!(out.safety_trace.converged && out.enablement_trace.converged);
    }
}
