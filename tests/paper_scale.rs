//! One full run at the paper's exact scale (100×100, f = 100), end to end
//! through labeling, verification, statistics, distance field and routing —
//! the "does the whole stack hold together at evaluation size" test.

use ocp_core::labeling::distance::compute_distance_field;
use ocp_core::prelude::*;
use ocp_distsim::Executor;
use ocp_mesh::Topology;
use ocp_routing::{EnabledMap, FaultTolerantRouter};
use ocp_workloads::uniform_faults;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

#[test]
fn full_stack_at_paper_scale() {
    let topology = Topology::mesh(100, 100);
    let mut rng = SmallRng::seed_from_u64(20010425);
    let faults = uniform_faults(topology, 100, &mut rng);
    let map = FaultMap::new(topology, faults);

    // Labeling with the parallel sharded executor (the HPC path).
    let out = run_pipeline(
        &map,
        &PipelineConfig {
            engine: LabelEngine::Lockstep(Executor::Sharded { threads: 8 }),
            ..PipelineConfig::default()
        },
    );
    assert!(out.safety_trace.converged && out.enablement_trace.converged);

    // The sequential executor agrees exactly.
    let seq = run_pipeline(&map, &PipelineConfig::default());
    assert_eq!(out.safety, seq.safety);
    assert_eq!(out.activation, seq.activation);

    // So does the bit-packed engine, traces included.
    let bits = run_pipeline(
        &map,
        &PipelineConfig {
            engine: LabelEngine::bitboard(),
            ..PipelineConfig::default()
        },
    );
    assert_eq!(bits.safety, seq.safety);
    assert_eq!(bits.activation, seq.activation);
    assert_eq!(bits.safety_trace, seq.safety_trace);
    assert_eq!(bits.enablement_trace, seq.enablement_trace);

    // All Section 4 invariants hold.
    let report = ocp_core::verify::verify(&map, &out).expect("invariants at scale");
    assert_eq!(report.blocks_checked, out.blocks.len());
    assert_eq!(report.regions_checked, out.regions.len());
    assert_eq!(report.wrapped_blocks, 0);

    // Statistics in the paper's reported ranges.
    let stats = ModelStats::collect(&map, &out);
    assert_eq!(stats.faults, 100);
    assert!(
        stats.rounds_phase1 <= 5,
        "phase1 {} rounds",
        stats.rounds_phase1
    );
    assert!(
        stats.rounds_phase2 <= 5,
        "phase2 {} rounds",
        stats.rounds_phase2
    );
    if let Some(ratio) = stats.enabled_ratio() {
        assert!(ratio > 0.8, "enabled ratio {ratio}");
    }

    // Distance field converges and is 1 next to every region.
    let field = compute_distance_field(&map, &out.activation, Executor::Sequential, 1000);
    assert!(field.trace.converged);
    for region in &out.regions {
        for cell in region.cells.iter() {
            assert_eq!(field.at(cell), 0);
        }
    }

    // Routing works across the machine.
    let enabled = EnabledMap::from_outcome(&out);
    let regions: Vec<_> = out.regions.iter().map(|r| r.cells.clone()).collect();
    let router = FaultTolerantRouter::new(enabled.clone(), &regions);
    let nodes = enabled.enabled_coords();
    let mut delivered = 0;
    let mut attempted = 0;
    for _ in 0..50 {
        let pick: Vec<_> = nodes.choose_multiple(&mut rng, 2).collect();
        attempted += 1;
        if let Ok(p) = router.route(*pick[0], *pick[1]) {
            p.validate(&enabled).unwrap();
            delivered += 1;
        }
    }
    assert!(
        delivered * 10 >= attempted * 9,
        "only {delivered}/{attempted} delivered at paper scale"
    );
}
