//! Metrics-oracle suite: the observability layer must report *exactly* the
//! numbers the deterministic `RunTrace` ground truth implies — counter
//! drift would make every dashboard built on it a lie.
//!
//! For seeded runs on every labeling engine, mesh and torus, cold and
//! warm-start, the exported counters are checked against three independent
//! sources of truth:
//!
//! * **rounds** — `changes_per_round.len()` of the trace;
//! * **flips** — the trace's change total AND the grid diff against the
//!   protocol's initial states (the protocols are monotone, so every cell
//!   flips at most once);
//! * **messages** — the trace AND the closed form
//!   `rounds × Σ real_degree(participant)` (participants are the nonfaulty
//!   nodes; ghost links carry nothing).
//!
//! The serving layer gets the same treatment: the publish counters on the
//! Prometheus page are pinned to the epoch audit log, the one source of
//! truth for what was actually published.

use ocp_core::labeling::enablement::compute_enablement_with;
use ocp_core::labeling::safety::compute_safety_with;
use ocp_core::maintenance::try_relabel_after_faults;
use ocp_core::prelude::*;
use ocp_distsim::Executor;
use ocp_mesh::{Coord, Topology};
use ocp_obs::RegistrySnapshot;
use std::sync::Mutex;

/// The global registry is process-wide; serialize the oracle tests so each
/// sees only its own deltas.
static ORACLE_LOCK: Mutex<()> = Mutex::new(());

fn c(x: i32, y: i32) -> Coord {
    Coord::new(x, y)
}

fn engines() -> Vec<LabelEngine> {
    vec![
        LabelEngine::Lockstep(Executor::Sequential),
        LabelEngine::Lockstep(Executor::Frontier),
        LabelEngine::Bitboard { threads: 1 },
    ]
}

fn topologies() -> Vec<Topology> {
    vec![Topology::mesh(16, 16), Topology::torus(16, 16)]
}

/// A fault pattern with clustered faults (so both phases do real work: an
/// unsafe halo forms and part of it re-enables) plus a loner.
fn seeded_faults() -> Vec<Coord> {
    vec![
        c(3, 3),
        c(4, 4),
        c(5, 3),
        c(3, 5),
        c(11, 11),
        c(12, 12),
        c(1, 13),
    ]
}

/// Status messages per exchange round: every nonfaulty node sends its
/// state over each real link (`Topology::real_degree`).
fn messages_per_round(map: &FaultMap) -> u64 {
    let t = map.topology();
    t.coords()
        .filter(|&n| !map.is_faulty(n))
        .map(|n| u64::from(t.real_degree(n)))
        .sum()
}

fn counter_delta(
    before: &RegistrySnapshot,
    after: &RegistrySnapshot,
    name: &str,
    labels: &[(&str, &str)],
) -> u64 {
    after.counter(name, labels) - before.counter(name, labels)
}

/// Asserts every `ocp_labeling_*` counter delta for one (engine, phase)
/// series against its trace and closed-form ground truth.
#[allow(clippy::too_many_arguments)]
fn assert_phase_oracle(
    before: &RegistrySnapshot,
    after: &RegistrySnapshot,
    engine_label: &str,
    phase: &str,
    trace: &ocp_distsim::RunTrace,
    grid_flips: u64,
    closed_form_messages: Option<u64>,
    context: &str,
) {
    let labels: &[(&str, &str)] = &[("engine", engine_label), ("phase", phase)];
    let runs = counter_delta(before, after, "ocp_labeling_runs_total", labels);
    let rounds = counter_delta(before, after, "ocp_labeling_rounds_total", labels);
    let flips = counter_delta(before, after, "ocp_labeling_flips_total", labels);
    let messages = counter_delta(before, after, "ocp_labeling_messages_total", labels);
    let unconverged = counter_delta(before, after, "ocp_labeling_unconverged_total", labels);

    assert_eq!(runs, 1, "{context}: one run recorded");
    assert_eq!(
        rounds,
        u64::from(trace.rounds_executed()),
        "{context}: rounds counter == changes_per_round.len()"
    );
    assert_eq!(
        flips,
        trace.total_changes(),
        "{context}: flips counter == trace change total"
    );
    assert_eq!(flips, grid_flips, "{context}: flips counter == grid diff");
    assert_eq!(
        messages, trace.messages_sent,
        "{context}: messages counter == trace"
    );
    if let Some(expected) = closed_form_messages {
        assert_eq!(
            messages, expected,
            "{context}: messages counter == rounds × Σ real_degree"
        );
    }
    assert_eq!(unconverged, 0, "{context}: converged run");

    let duration = after
        .histogram("ocp_labeling_phase_duration_ns", labels)
        .expect("phase duration histogram exists");
    let duration_before = before
        .histogram("ocp_labeling_phase_duration_ns", labels)
        .map(|h| h.count)
        .unwrap_or(0);
    assert_eq!(
        duration.count - duration_before,
        1,
        "{context}: one duration sample"
    );
}

#[test]
fn cold_runs_export_exact_counters_on_every_engine_and_topology() {
    let _guard = ORACLE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    ocp_obs::set_enabled(true);
    for topology in topologies() {
        for engine in engines() {
            let context = format!("{topology:?}/{}", engine.label());
            let map = FaultMap::new(topology, seeded_faults());
            let per_round = messages_per_round(&map);

            let before = ocp_obs::global().snapshot();
            let safety = compute_safety_with(&map, SafetyRule::BothDimensions, engine, 400);
            let enable = compute_enablement_with(&map, &safety.grid, engine, 400);
            let after = ocp_obs::global().snapshot();

            // Grid-diff ground truth. Phase 1: nonfaulty cells start Safe,
            // so each nonfaulty Unsafe cell is one flip. Phase 2: unsafe
            // nonfaulty cells start Disabled, so each of them that ended
            // Enabled is one flip.
            let safety_flips = safety
                .grid
                .iter()
                .filter(|&(n, &s)| s == SafetyState::Unsafe && !map.is_faulty(n))
                .count() as u64;
            let enable_flips = enable
                .grid
                .iter()
                .filter(|&(n, &a)| {
                    a == ActivationState::Enabled
                        && *safety.grid.get(n) == SafetyState::Unsafe
                        && !map.is_faulty(n)
                })
                .count() as u64;

            assert!(
                safety.trace.converged && enable.trace.converged,
                "{context}"
            );
            assert_phase_oracle(
                &before,
                &after,
                &engine.label(),
                "safety",
                &safety.trace,
                safety_flips,
                Some(per_round * u64::from(safety.trace.rounds_executed())),
                &format!("{context}/safety"),
            );
            assert_phase_oracle(
                &before,
                &after,
                &engine.label(),
                "enablement",
                &enable.trace,
                enable_flips,
                Some(per_round * u64::from(enable.trace.rounds_executed())),
                &format!("{context}/enablement"),
            );
        }
    }
}

#[test]
fn warm_start_runs_export_exact_counters_on_every_engine() {
    let _guard = ORACLE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    ocp_obs::set_enabled(true);
    for engine in engines() {
        let context = format!("warm/{}", engine.label());
        let config = PipelineConfig {
            engine,
            ..PipelineConfig::default()
        };
        let map = FaultMap::new(Topology::mesh(16, 16), seeded_faults());
        let cold = try_run_pipeline(&map, &config).expect("cold run converges");

        let before = ocp_obs::global().snapshot();
        // A fault landing next to the existing cluster grows its block; the
        // warm restart relabels from the previous fixpoint.
        let new_faults = [c(4, 2)];
        let (updated_map, warm) = try_relabel_after_faults(&map, &new_faults, &cold, &config)
            .expect("warm run converges");
        let after = ocp_obs::global().snapshot();

        // Warm phase-1 flips are a diff against the PREVIOUS fixpoint, not
        // the protocol initial state: newly-unsafe nonfaulty cells only.
        let warm_flips = warm
            .outcome
            .safety
            .iter()
            .filter(|&(n, &s)| {
                s == SafetyState::Unsafe
                    && *cold.safety.get(n) == SafetyState::Safe
                    && !updated_map.is_faulty(n)
            })
            .count() as u64;
        let enable_flips = warm
            .outcome
            .activation
            .iter()
            .filter(|&(n, &a)| {
                a == ActivationState::Enabled
                    && *warm.outcome.safety.get(n) == SafetyState::Unsafe
                    && !updated_map.is_faulty(n)
            })
            .count() as u64;

        assert_phase_oracle(
            &before,
            &after,
            &engine.label(),
            "safety-warm",
            &warm.incremental_safety_trace,
            warm_flips,
            None, // warm runs restart from a frontier; no per-round closed form
            &format!("{context}/safety-warm"),
        );
        assert_phase_oracle(
            &before,
            &after,
            &engine.label(),
            "enablement",
            &warm.outcome.enablement_trace,
            enable_flips,
            Some(
                messages_per_round(&updated_map)
                    * u64::from(warm.outcome.enablement_trace.rounds_executed()),
            ),
            &format!("{context}/enablement"),
        );
        // The warm path must not masquerade as a full pipeline run.
        let engine_label = engine.label();
        let pipeline_labels: &[(&str, &str)] = &[("engine", &engine_label)];
        assert_eq!(
            counter_delta(&before, &after, "ocp_pipeline_runs_total", pipeline_labels),
            0,
            "{context}: warm relabel is not a pipeline run"
        );
    }
}

#[test]
fn pipeline_counters_and_spans_match_the_outcome() {
    let _guard = ORACLE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    ocp_obs::set_enabled(true);
    let engine = LabelEngine::Lockstep(Executor::Sequential);
    let config = PipelineConfig {
        engine,
        ..PipelineConfig::default()
    };
    let map = FaultMap::new(Topology::mesh(16, 16), seeded_faults());

    let before = ocp_obs::global().snapshot();
    ocp_obs::tracer().clear();
    let out = run_pipeline(&map, &config);
    let after = ocp_obs::global().snapshot();

    let engine_label = engine.label();
    let labels: &[(&str, &str)] = &[("engine", &engine_label)];
    assert_eq!(
        counter_delta(&before, &after, "ocp_pipeline_runs_total", labels),
        1
    );
    // The pipeline's phase counters are the same series the direct
    // compute_*_with calls feed; one pipeline run adds exactly one run to
    // each phase.
    for phase in ["safety", "enablement"] {
        let phase_labels: &[(&str, &str)] = &[("engine", &engine_label), ("phase", phase)];
        assert_eq!(
            counter_delta(&before, &after, "ocp_labeling_runs_total", phase_labels),
            1,
            "{phase}"
        );
    }

    // Span trace: both phases and the pipeline envelope, with truthful
    // field values.
    let spans = ocp_obs::tracer().snapshot();
    let names: Vec<&str> = spans.iter().map(|s| s.name.as_str()).collect();
    assert!(names.contains(&"labeling/safety"), "{names:?}");
    assert!(names.contains(&"labeling/enablement"), "{names:?}");
    assert!(names.contains(&"pipeline"), "{names:?}");
    let safety_span = spans.iter().find(|s| s.name == "labeling/safety").unwrap();
    let field = |k: &str| {
        safety_span
            .fields
            .iter()
            .find(|(key, _)| key == k)
            .map(|(_, v)| v.clone())
            .unwrap_or_default()
    };
    assert_eq!(
        field("rounds"),
        out.safety_trace.rounds_executed().to_string()
    );
    assert_eq!(field("flips"), out.safety_trace.total_changes().to_string());
    assert_eq!(field("converged"), "true");
}

#[test]
fn disabled_observability_records_nothing() {
    let _guard = ORACLE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    ocp_obs::set_enabled(false);
    let map = FaultMap::new(Topology::mesh(16, 16), seeded_faults());
    let before = ocp_obs::global().snapshot();
    let out = run_pipeline(&map, &PipelineConfig::default());
    assert!(out.safety_trace.converged);
    let after = ocp_obs::global().snapshot();
    let total = |snap: &RegistrySnapshot| -> u64 {
        snap.families
            .iter()
            .flat_map(|f| f.series.iter())
            .map(|s| match &s.value {
                ocp_obs::MetricValue::Counter(v) => *v,
                ocp_obs::MetricValue::Gauge(v) => v.unsigned_abs(),
                ocp_obs::MetricValue::Histogram(h) => h.count,
            })
            .sum()
    };
    assert_eq!(
        total(&before),
        total(&after),
        "disabled path must not touch the registry"
    );
    ocp_obs::set_enabled(true);
}

/// Reads one counter sample off a Prometheus exposition page.
fn scrape_counter(page: &str, series: &str) -> u64 {
    page.lines()
        .find_map(|line| line.strip_prefix(series))
        .unwrap_or_else(|| panic!("series {series:?} missing from scrape"))
        .trim()
        .parse()
        .expect("counter value parses")
}

#[test]
fn serve_publish_counters_match_the_epoch_audit_log() {
    use ocp_serve::{CertChaos, MeshService, ServeConfig};
    use std::time::Duration;

    // Every third batch is chaos-rejected at the certificate gate, so the
    // scrape page has something in every `result` bucket to account for.
    let service = MeshService::start(
        Topology::mesh(12, 12),
        [c(2, 2)],
        ServeConfig {
            batch_max: 1,
            cert_chaos: CertChaos::RejectBatchEveryNth(3),
            ..ServeConfig::default()
        },
    )
    .expect("service starts");
    let handle = service.handle();
    let injected: u64 = 9;
    for i in 0..injected {
        let node = c(5 + (i % 3) as i32, 5 + (i / 3) as i32);
        assert_eq!(handle.inject_faults(&[node]).accepted, 1);
        assert!(service.quiesce(Duration::from_secs(30)));
    }

    let log = service.epoch_log();
    let stats = handle.stats();
    let page = handle.metrics_text();

    // The audit log is the ground truth for publishes; the counters must
    // agree with it exactly, and the reject bucket with its complement.
    let ok = scrape_counter(&page, "ocp_serve_epoch_publish_total{result=\"ok\"} ");
    let rejected = scrape_counter(
        &page,
        "ocp_serve_epoch_publish_total{result=\"cert_reject\"} ",
    );
    let overloaded = scrape_counter(
        &page,
        "ocp_serve_epoch_publish_total{result=\"overloaded\"} ",
    );
    assert_eq!(ok, log.len() as u64, "ok bucket == audit log length");
    assert_eq!(ok, stats.epochs_published);
    assert_eq!(ok + rejected, injected, "every batch lands in one bucket");
    assert_eq!(rejected, stats.publishes_cert_rejected);
    assert!(rejected >= 1, "chaos must have rejected something");
    assert_eq!(overloaded, 0, "no admission pressure in this run");
    // RejectBatchEveryNth fails both the warm check and the cold retry.
    let cert_failures = scrape_counter(&page, "ocp_serve_cert_failures_total ");
    assert_eq!(cert_failures, 2 * rejected);
    // And the log itself is gapless: publish number k is epoch k.
    for (i, record) in log.iter().enumerate() {
        assert_eq!(record.epoch, (i + 1) as u64);
    }
    service.shutdown();
}

#[test]
fn engines_agree_on_every_oracle_quantity() {
    // The engine-equivalence guarantee extends to telemetry: identical
    // traces mean identical exported counters for the same workload.
    let _guard = ORACLE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    ocp_obs::set_enabled(true);
    for topology in topologies() {
        let map = FaultMap::new(topology, seeded_faults());
        let mut exported: Vec<(u64, u64, u64)> = Vec::new();
        for engine in engines() {
            let before = ocp_obs::global().snapshot();
            let safety = compute_safety_with(&map, SafetyRule::BothDimensions, engine, 400);
            let enable = compute_enablement_with(&map, &safety.grid, engine, 400);
            assert!(safety.trace.converged && enable.trace.converged);
            let after = ocp_obs::global().snapshot();
            let engine_label = engine.label();
            let mut sums = (0u64, 0u64, 0u64);
            for phase in ["safety", "enablement"] {
                let labels: &[(&str, &str)] = &[("engine", &engine_label), ("phase", phase)];
                sums.0 += counter_delta(&before, &after, "ocp_labeling_rounds_total", labels);
                sums.1 += counter_delta(&before, &after, "ocp_labeling_flips_total", labels);
                sums.2 += counter_delta(&before, &after, "ocp_labeling_messages_total", labels);
            }
            exported.push(sums);
        }
        assert!(
            exported.windows(2).all(|w| w[0] == w[1]),
            "{topology:?}: engines exported different totals: {exported:?}"
        );
    }
}
