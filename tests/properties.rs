//! Property-based tests (proptest) over the whole pipeline: the paper's
//! theorems must hold for *arbitrary* fault patterns, not just the worked
//! examples.

use ocp_core::prelude::*;
use ocp_core::verify::verify;
use ocp_geometry::{is_orthogonally_convex, orthogonal_convex_closure, Region};
use ocp_mesh::{Coord, Topology, TopologyKind};
use proptest::prelude::*;

/// Strategy: a topology kind, side length and a set of distinct fault
/// coordinates on it.
fn fault_pattern() -> impl Strategy<Value = (TopologyKind, u32, Vec<Coord>)> {
    (
        prop_oneof![Just(TopologyKind::Mesh), Just(TopologyKind::Torus)],
        6u32..=18,
    )
        .prop_flat_map(|(kind, side)| {
            let coords = proptest::collection::btree_set(
                (0..side as i32, 0..side as i32).prop_map(|(x, y)| Coord::new(x, y)),
                0..=(side as usize),
            );
            (
                Just(kind),
                Just(side),
                coords.prop_map(|s| s.into_iter().collect()),
            )
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Theorems 1–2, Lemma 1, the Corollary, distance bounds and fault
    /// coverage hold for arbitrary patterns under both safety rules.
    #[test]
    fn pipeline_invariants_hold((kind, side, faults) in fault_pattern()) {
        let topology = Topology::new(kind, side, side);
        let map = FaultMap::new(topology, faults);
        for rule in [SafetyRule::TwoUnsafeNeighbors, SafetyRule::BothDimensions] {
            let out = run_pipeline(&map, &PipelineConfig { rule, ..PipelineConfig::default() });
            prop_assert!(out.safety_trace.converged);
            prop_assert!(out.enablement_trace.converged);
            if let Err(violations) = verify(&map, &out) {
                return Err(TestCaseError::fail(format!("{rule:?}: {violations:?}")));
            }
        }
    }

    /// Phase 2 only ever shrinks the disabled set: every disabled node is
    /// unsafe, and the recovered count is consistent.
    #[test]
    fn phase2_monotone_wrt_phase1((kind, side, faults) in fault_pattern()) {
        let topology = Topology::new(kind, side, side);
        let map = FaultMap::new(topology, faults);
        let out = run_pipeline(&map, &PipelineConfig::default());
        let mut disabled = 0usize;
        let mut unsafe_cnt = 0usize;
        for (c, &a) in out.activation.iter() {
            let s = *out.safety.get(c);
            if a == ActivationState::Disabled {
                disabled += 1;
                prop_assert_eq!(s, SafetyState::Unsafe, "{} disabled but safe", c);
            }
            if s == SafetyState::Unsafe {
                unsafe_cnt += 1;
            }
        }
        prop_assert!(disabled <= unsafe_cnt);
        let stats = ModelStats::collect(&map, &out);
        prop_assert_eq!(stats.unsafe_nonfaulty, unsafe_cnt - map.fault_count());
        prop_assert_eq!(stats.disabled_nonfaulty, disabled - map.fault_count());
    }

    /// The orthogonal convex closure is a closure operator: extensive,
    /// monotone, idempotent — and minimal (removing any added cell breaks
    /// convexity... checked via the definition instead: the closure equals
    /// the intersection-minimal convex superset, so any convex superset
    /// contains it).
    #[test]
    fn closure_is_a_closure_operator(cells in proptest::collection::btree_set((0i32..14, 0i32..14), 1..20)) {
        let region = Region::from_cells(cells.iter().map(|&(x, y)| Coord::new(x, y)));
        let closed = orthogonal_convex_closure(&region);
        // extensive + convex + idempotent
        prop_assert!(closed.is_superset(&region));
        prop_assert!(is_orthogonally_convex(&closed));
        prop_assert_eq!(orthogonal_convex_closure(&closed), closed.clone());
        // monotone: closure of a subset is contained in the closure
        let mut sub_cells: Vec<Coord> = region.iter().collect();
        sub_cells.truncate(sub_cells.len() / 2);
        if !sub_cells.is_empty() {
            let sub = Region::from_cells(sub_cells);
            prop_assert!(closed.is_superset(&orthogonal_convex_closure(&sub)));
        }
        // minimality against an arbitrary convex superset: the bounding box
        prop_assert!(Region::from_rect(region.bbox().unwrap()).is_superset(&closed));
    }

    /// Rounds never exceed the engine cap implied by the machine diameter,
    /// and message counts are consistent with the round count.
    #[test]
    fn trace_consistency((kind, side, faults) in fault_pattern()) {
        let topology = Topology::new(kind, side, side);
        let map = FaultMap::new(topology, faults);
        let out = run_pipeline(&map, &PipelineConfig::default());
        for trace in [&out.safety_trace, &out.enablement_trace] {
            prop_assert!(trace.rounds() <= trace.rounds_executed());
            // Monotone protocols: change counts occupy a prefix.
            let changes = &trace.changes_per_round;
            if let Some(first_zero) = changes.iter().position(|&c| c == 0) {
                prop_assert!(changes[first_zero..].iter().all(|&c| c == 0));
            }
        }
    }

    /// Lemma 2: for any node u of a disabled region, each of the four
    /// quadrants induced by u contains at least one corner node of the
    /// region — and the extremal node the paper's proof constructs is one.
    #[test]
    fn quadrant_lemma_direct((kind, side, faults) in fault_pattern()) {
        let topology = Topology::new(kind, side, side);
        let map = FaultMap::new(topology, faults);
        let out = run_pipeline(&map, &PipelineConfig::default());
        for region in &out.regions {
            let Some(planar) = &region.planar else { continue };
            for u in planar.iter().take(16) {
                for (sx, sy) in [(1, 1), (1, -1), (-1, 1), (-1, -1)] {
                    let extremal = ocp_geometry::boundary::quadrant_extremal(planar, u, sx, sy);
                    // u itself lies in every one of its own quadrants, so
                    // an extremal node always exists...
                    let e = extremal.expect("own quadrant never empty");
                    // ...and Lemma 2 says it is a corner node.
                    prop_assert!(
                        ocp_geometry::is_corner(planar, e),
                        "extremal {e} of quadrant ({sx},{sy}) at {u} is not a corner"
                    );
                }
            }
        }
    }

    /// Corner nodes of every disabled region are faulty, probed directly
    /// (stronger sampling of Lemma 1 than `verify`'s aggregate pass).
    #[test]
    fn corner_lemma_direct((kind, side, faults) in fault_pattern()) {
        let topology = Topology::new(kind, side, side);
        let map = FaultMap::new(topology, faults);
        let out = run_pipeline(&map, &PipelineConfig::default());
        for region in &out.regions {
            let (Some(planar), Some(planar_faults)) = (&region.planar, &region.planar_faults) else {
                continue;
            };
            for corner in ocp_geometry::corner_nodes(planar) {
                prop_assert!(planar_faults.contains(corner),
                    "corner {corner} of {planar:?} not faulty");
            }
        }
    }
}
