//! Cross-crate integration: workloads → labeling → stats → analysis.

use ocp_analysis::{Series, Summary};
use ocp_core::prelude::*;
use ocp_mesh::{Topology, TopologyKind};
use ocp_workloads::{clustered_faults, uniform_faults, SweepConfig};
use rand::rngs::SmallRng;
use rand::SeedableRng;

#[test]
fn paper_figure5_sweep_miniature() {
    // A shrunken Figure 5 run end to end through the real sweep machinery.
    let cfg = SweepConfig {
        kind: TopologyKind::Mesh,
        width: 30,
        height: 30,
        fault_counts: vec![3, 9, 18, 30],
        trials: 6,
        base_seed: 1234,
    };
    let topology = cfg.topology();
    let mut rounds_fb = Series::new("rounds FB", "faults");
    let mut rounds_dr = Series::new("rounds DR", "faults");
    for &f in &cfg.fault_counts {
        let mut fb = Vec::new();
        let mut dr = Vec::new();
        for point in cfg.points().into_iter().filter(|p| p.faults == f) {
            let mut rng = cfg.rng(point);
            let map = FaultMap::new(topology, uniform_faults(topology, f, &mut rng));
            let out = run_pipeline(&map, &PipelineConfig::default());
            let stats = ModelStats::collect(&map, &out);
            fb.push(stats.rounds_phase1 as f64);
            dr.push(stats.rounds_phase2 as f64);
            // Node-count bookkeeping must add up exactly.
            let enabled = out
                .activation
                .iter()
                .filter(|(_, &a)| a == ActivationState::Enabled)
                .count();
            assert_eq!(
                enabled + stats.disabled_nonfaulty + stats.faults,
                topology.len()
            );
        }
        rounds_fb.push(f as f64, &fb);
        rounds_dr.push(f as f64, &dr);
    }
    // Rounds grow (weakly) with fault count and stay far below diameter.
    assert!(rounds_fb.max_mean().unwrap() < 15.0);
    assert!(rounds_dr.max_mean().unwrap() < 15.0);
}

#[test]
fn clustered_faults_cost_more_than_uniform() {
    // The paper attributes its very high enabled ratios partly to uniform
    // fault placement producing small blocks; clustered faults should
    // leave (weakly) more nonfaulty nodes disabled.
    let topology = Topology::mesh(40, 40);
    let mut uniform_cost = 0usize;
    let mut clustered_cost = 0usize;
    for seed in 0..8u64 {
        let mut rng = SmallRng::seed_from_u64(seed);
        let u = FaultMap::new(topology, uniform_faults(topology, 48, &mut rng));
        let mut rng = SmallRng::seed_from_u64(seed + 500);
        let k = FaultMap::new(topology, clustered_faults(topology, 48, 4, &mut rng));
        let su = ModelStats::collect(&u, &run_pipeline(&u, &PipelineConfig::default()));
        let sk = ModelStats::collect(&k, &run_pipeline(&k, &PipelineConfig::default()));
        uniform_cost += su.disabled_nonfaulty;
        clustered_cost += sk.disabled_nonfaulty;
    }
    assert!(
        clustered_cost >= uniform_cost,
        "clustered {clustered_cost} < uniform {uniform_cost}"
    );
}

#[test]
fn summary_statistics_integrate_with_stats() {
    let topology = Topology::mesh(25, 25);
    let mut ratios = Vec::new();
    for seed in 0..10u64 {
        let mut rng = SmallRng::seed_from_u64(seed);
        let map = FaultMap::new(topology, uniform_faults(topology, 25, &mut rng));
        let out = run_pipeline(&map, &PipelineConfig::default());
        if let Some(r) = ModelStats::collect(&map, &out).enabled_ratio() {
            ratios.push(r);
        }
    }
    let summary = Summary::of(&ratios);
    assert!(summary.n >= 5, "most trials should have defined ratios");
    assert!(summary.mean > 0.5, "mean ratio {}", summary.mean);
    assert!(summary.min >= 0.0 && summary.max <= 1.0);
}

#[test]
fn maintenance_chain_of_faults() {
    // Add faults one at a time, relabeling incrementally; the final state
    // must equal a cold run with all faults, at every step.
    use ocp_core::maintenance::relabel_after_fault;
    let topology = Topology::mesh(15, 15);
    let cfg = PipelineConfig::default();
    let mut map = FaultMap::new(topology, [ocp_mesh::Coord::new(7, 7)]);
    let mut out = run_pipeline(&map, &cfg);
    let additions = [
        ocp_mesh::Coord::new(8, 8),
        ocp_mesh::Coord::new(2, 3),
        ocp_mesh::Coord::new(8, 6),
        ocp_mesh::Coord::new(12, 12),
    ];
    for new_fault in additions {
        let (updated, warm) = relabel_after_fault(&map, new_fault, &out, &cfg);
        let cold = run_pipeline(&updated, &cfg);
        assert_eq!(warm.outcome.safety, cold.safety);
        assert_eq!(warm.outcome.activation, cold.activation);
        ocp_core::verify::verify(&updated, &warm.outcome).expect("invariants after update");
        map = updated;
        out = warm.outcome;
    }
    assert_eq!(map.fault_count(), 5);
}

#[test]
fn torus_has_no_ghost_advantage() {
    // A fault pattern in the deep interior labels identically on mesh and
    // torus (the boundary treatment only matters near the boundary).
    let faults: Vec<ocp_mesh::Coord> = [(7, 7), (8, 8), (7, 9), (9, 7)]
        .iter()
        .map(|&(x, y)| ocp_mesh::Coord::new(x, y))
        .collect();
    let mesh = FaultMap::new(Topology::mesh(16, 16), faults.iter().copied());
    let torus = FaultMap::new(Topology::torus(16, 16), faults.iter().copied());
    let om = run_pipeline(&mesh, &PipelineConfig::default());
    let ot = run_pipeline(&torus, &PipelineConfig::default());
    let dm: Vec<_> = om
        .activation
        .coords_where(|&a| a == ActivationState::Disabled)
        .collect();
    let dt: Vec<_> = ot
        .activation
        .coords_where(|&a| a == ActivationState::Disabled)
        .collect();
    assert_eq!(dm, dt);
    assert_eq!(om.safety_trace.rounds(), ot.safety_trace.rounds());
}
