//! The three executors must be observationally identical on the paper's
//! protocols: same final labels, same round counts, same message totals.

use ocp_core::labeling::enablement::compute_enablement;
use ocp_core::labeling::safety::{compute_safety, SafetyRule};
use ocp_core::prelude::*;
use ocp_distsim::Executor;
use ocp_mesh::{Topology, TopologyKind};
use ocp_workloads::uniform_faults;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn check_equivalence(topology: Topology, f: usize, seed: u64) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let faults = uniform_faults(topology, f, &mut rng);
    let map = FaultMap::new(topology, faults);

    let reference_safety = compute_safety(&map, SafetyRule::BothDimensions, Executor::Sequential, 400);
    let reference_enable =
        compute_enablement(&map, &reference_safety.grid, Executor::Sequential, 400);

    let mut executors = vec![
        Executor::Sharded { threads: 2 },
        Executor::Sharded { threads: 3 },
        Executor::Sharded { threads: 7 },
        Executor::Sharded { threads: 64 },
    ];
    if topology.len() <= 4096 {
        executors.push(Executor::Actor);
    }

    for exec in executors {
        let safety = compute_safety(&map, SafetyRule::BothDimensions, exec, 400);
        assert_eq!(
            safety.grid, reference_safety.grid,
            "{exec:?} safety grid diverged on {topology:?} f={f} seed={seed}"
        );
        assert_eq!(safety.trace, reference_safety.trace, "{exec:?} safety trace");
        let enable = compute_enablement(&map, &safety.grid, exec, 400);
        assert_eq!(
            enable.grid, reference_enable.grid,
            "{exec:?} activation grid diverged"
        );
        assert_eq!(enable.trace, reference_enable.trace, "{exec:?} enable trace");
    }
}

#[test]
fn equivalence_on_meshes() {
    for (side, f, seed) in [(12u32, 10usize, 1u64), (16, 20, 2), (20, 8, 3)] {
        check_equivalence(Topology::new(TopologyKind::Mesh, side, side), f, seed);
    }
}

#[test]
fn equivalence_on_tori() {
    for (side, f, seed) in [(12u32, 10usize, 4u64), (16, 24, 5)] {
        check_equivalence(Topology::new(TopologyKind::Torus, side, side), f, seed);
    }
}

#[test]
fn equivalence_on_rectangular_machines() {
    // Non-square shapes exercise the strip partitioner's uneven splits.
    check_equivalence(Topology::mesh(30, 7), 12, 6);
    check_equivalence(Topology::mesh(5, 29), 12, 7);
    check_equivalence(Topology::torus(9, 31), 15, 8);
}

#[test]
fn equivalence_at_high_fault_density() {
    // 25% faults: big merged blocks, many rounds.
    check_equivalence(Topology::mesh(16, 16), 64, 9);
    check_equivalence(Topology::torus(16, 16), 64, 10);
}

#[test]
fn equivalence_with_def2a_rule() {
    let topology = Topology::mesh(18, 18);
    let mut rng = SmallRng::seed_from_u64(11);
    let faults = uniform_faults(topology, 25, &mut rng);
    let map = FaultMap::new(topology, faults);
    let reference = compute_safety(&map, SafetyRule::TwoUnsafeNeighbors, Executor::Sequential, 400);
    for exec in [
        Executor::Sharded { threads: 4 },
        Executor::Actor,
    ] {
        let got = compute_safety(&map, SafetyRule::TwoUnsafeNeighbors, exec, 400);
        assert_eq!(got.grid, reference.grid);
        assert_eq!(got.trace, reference.trace);
    }
}
