//! Every executor — and every labeling engine, including the bit-packed
//! kernels — must be observationally identical on the paper's protocols:
//! same final labels, same round counts, same message totals. With the
//! chaos layer, the *lossy* executors must still reach the exact fixpoint
//! of the reliable sequential executor — the monotone protocols
//! self-stabilize through drops, duplicates, reordering, down windows and
//! mid-run crashes.

use ocp_core::labeling::enablement::{
    compute_enablement, compute_enablement_with, EnablementProtocol,
};
use ocp_core::labeling::safety::{
    compute_safety, compute_safety_with, SafetyProtocol, SafetyRule, SafetyState,
};
use ocp_core::maintenance::relabel_after_faults;
use ocp_core::prelude::*;
use ocp_distsim::{run_actor_chaos, run_chaos, ChaosConfig, CrashPlan, Executor};
use ocp_mesh::{Coord, Topology, TopologyKind};
use ocp_workloads::uniform_faults;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn check_equivalence(topology: Topology, f: usize, seed: u64) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let faults = uniform_faults(topology, f, &mut rng);
    let map = FaultMap::new(topology, faults);

    let reference_safety =
        compute_safety(&map, SafetyRule::BothDimensions, Executor::Sequential, 400);
    let reference_enable =
        compute_enablement(&map, &reference_safety.grid, Executor::Sequential, 400);

    let mut executors = vec![
        Executor::Frontier,
        Executor::Sharded { threads: 2 },
        Executor::Sharded { threads: 3 },
        Executor::Sharded { threads: 7 },
        Executor::Sharded { threads: 64 },
    ];
    if topology.len() <= 4096 {
        executors.push(Executor::Actor);
    }

    for exec in executors {
        let safety = compute_safety(&map, SafetyRule::BothDimensions, exec, 400);
        assert_eq!(
            safety.grid, reference_safety.grid,
            "{exec:?} safety grid diverged on {topology:?} f={f} seed={seed}"
        );
        assert_eq!(
            safety.trace, reference_safety.trace,
            "{exec:?} safety trace"
        );
        let enable = compute_enablement(&map, &safety.grid, exec, 400);
        assert_eq!(
            enable.grid, reference_enable.grid,
            "{exec:?} activation grid diverged"
        );
        assert_eq!(
            enable.trace, reference_enable.trace,
            "{exec:?} enable trace"
        );
    }

    // The bit-packed engines must match too — grids AND full traces
    // (changes per round, messages, convergence flag).
    for threads in [1usize, 2, 5] {
        let engine = LabelEngine::Bitboard { threads };
        let safety = compute_safety_with(&map, SafetyRule::BothDimensions, engine, 400);
        assert_eq!(
            safety.grid, reference_safety.grid,
            "{engine:?} safety grid diverged on {topology:?} f={f} seed={seed}"
        );
        assert_eq!(
            safety.trace, reference_safety.trace,
            "{engine:?} safety trace"
        );
        let enable = compute_enablement_with(&map, &safety.grid, engine, 400);
        assert_eq!(
            enable.grid, reference_enable.grid,
            "{engine:?} activation grid diverged"
        );
        assert_eq!(
            enable.trace, reference_enable.trace,
            "{engine:?} enable trace"
        );
    }
}

#[test]
fn equivalence_on_meshes() {
    for (side, f, seed) in [(12u32, 10usize, 1u64), (16, 20, 2), (20, 8, 3)] {
        check_equivalence(Topology::new(TopologyKind::Mesh, side, side), f, seed);
    }
}

#[test]
fn equivalence_on_tori() {
    for (side, f, seed) in [(12u32, 10usize, 4u64), (16, 24, 5)] {
        check_equivalence(Topology::new(TopologyKind::Torus, side, side), f, seed);
    }
}

#[test]
fn equivalence_on_rectangular_machines() {
    // Non-square shapes exercise the strip partitioner's uneven splits.
    check_equivalence(Topology::mesh(30, 7), 12, 6);
    check_equivalence(Topology::mesh(5, 29), 12, 7);
    check_equivalence(Topology::torus(9, 31), 15, 8);
}

#[test]
fn equivalence_at_high_fault_density() {
    // 25% faults: big merged blocks, many rounds.
    check_equivalence(Topology::mesh(16, 16), 64, 9);
    check_equivalence(Topology::torus(16, 16), 64, 10);
}

/// Acceptance criterion of the chaos layer: with a 20% drop rate plus
/// duplication and reordering on every link, both labeling phases reach the
/// byte-identical fixpoint of the sequential executor, across ten seeds.
#[test]
fn chaos_async_reaches_sequential_fixpoint_across_ten_seeds() {
    let topology = Topology::mesh(16, 16);
    for seed in 0..10u64 {
        let mut rng = SmallRng::seed_from_u64(0xCA05 ^ seed);
        let faults = uniform_faults(topology, 20, &mut rng);
        let map = FaultMap::new(topology, faults);

        let ref_safety =
            compute_safety(&map, SafetyRule::BothDimensions, Executor::Sequential, 400);
        let ref_enable = compute_enablement(&map, &ref_safety.grid, Executor::Sequential, 400);

        let chaos = ChaosConfig::uniform(0xC0FFEE ^ seed, 0.2, 0.1, 0.1);
        let p1 = SafetyProtocol::new(&map, SafetyRule::BothDimensions);
        let a1 = run_chaos(&p1, seed, 4, 50_000_000, &chaos, None);
        assert!(a1.converged, "seed {seed}: phase 1 hit the event cap");
        assert_eq!(
            a1.states, ref_safety.grid,
            "seed {seed}: phase-1 fixpoint diverged"
        );
        assert!(
            a1.chaos.anomalies() > 0,
            "seed {seed}: chaos layer injected nothing"
        );

        let p2 = EnablementProtocol::new(&map, &a1.states);
        let a2 = run_chaos(&p2, seed ^ 1, 4, 50_000_000, &chaos, None);
        assert!(a2.converged, "seed {seed}: phase 2 hit the event cap");
        assert_eq!(
            a2.states, ref_enable.grid,
            "seed {seed}: phase-2 fixpoint diverged"
        );
    }
}

/// The lockstep actor executor under the same chaos model also
/// self-stabilizes to the sequential fixpoint.
#[test]
fn chaos_actor_reaches_sequential_fixpoint() {
    let topology = Topology::mesh(10, 10);
    for seed in 0..3u64 {
        let mut rng = SmallRng::seed_from_u64(0xAC7 ^ seed);
        let faults = uniform_faults(topology, 12, &mut rng);
        let map = FaultMap::new(topology, faults);
        let ref_safety =
            compute_safety(&map, SafetyRule::BothDimensions, Executor::Sequential, 400);
        let ref_enable = compute_enablement(&map, &ref_safety.grid, Executor::Sequential, 400);

        let chaos = ChaosConfig::uniform(0xFACADE ^ seed, 0.2, 0.1, 0.1);
        let p1 = SafetyProtocol::new(&map, SafetyRule::BothDimensions);
        let a1 = run_actor_chaos(&p1, 10_000, &chaos);
        assert!(a1.trace.converged, "seed {seed}: phase 1 hit the round cap");
        assert_eq!(
            a1.states, ref_safety.grid,
            "seed {seed}: phase-1 fixpoint diverged"
        );

        let p2 = EnablementProtocol::new(&map, &a1.states);
        let a2 = run_actor_chaos(&p2, 10_000, &chaos);
        assert!(a2.trace.converged, "seed {seed}: phase 2 hit the round cap");
        assert_eq!(
            a2.states, ref_enable.grid,
            "seed {seed}: phase-2 fixpoint diverged"
        );
    }
}

/// Mid-run crashes (phase 1 only — the safety protocol is monotone in the
/// fault set, with `Unsafe` the absorbing crash state): the run must
/// re-stabilize to the cold fixpoint of the *final* fault set, even with
/// lossy links underneath.
#[test]
fn chaos_crashes_re_stabilize_to_final_fault_oracle() {
    let topology = Topology::mesh(14, 14);
    for seed in 0..5u64 {
        let mut rng = SmallRng::seed_from_u64(0xDEAD ^ seed);
        let faults = uniform_faults(topology, 10, &mut rng);
        let map = FaultMap::new(topology, faults.clone());

        // Crash three healthy nodes at staggered virtual times.
        let victims: Vec<Coord> = topology
            .coords()
            .filter(|c| !map.is_faulty(*c))
            .step_by(17 + seed as usize)
            .take(3)
            .collect();
        let plan = CrashPlan::new(
            victims
                .iter()
                .enumerate()
                .map(|(i, &v)| (3 + 4 * i as u64, v)),
            SafetyState::Unsafe,
        );

        let chaos = ChaosConfig::uniform(0xBAD ^ seed, 0.1, 0.05, 0.05);
        let p1 = SafetyProtocol::new(&map, SafetyRule::BothDimensions);
        let a1 = run_chaos(&p1, seed, 4, 50_000_000, &chaos, Some(&plan));
        assert!(a1.converged, "seed {seed}: hit the event cap");
        assert_eq!(a1.chaos.crashes, victims.len() as u64);

        // Oracle: cold sequential run on the final fault set.
        let final_map = FaultMap::new(topology, faults.into_iter().chain(victims.iter().copied()));
        let oracle = compute_safety(
            &final_map,
            SafetyRule::BothDimensions,
            Executor::Sequential,
            400,
        );
        assert_eq!(
            a1.states, oracle.grid,
            "seed {seed}: crash path diverged from oracle"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// For arbitrary fault maps and any drop/duplicate/reorder rates up to
    /// the chaos layer's tested ceiling (drop ≤ 0.2), the chaos-enabled
    /// asynchronous executor reaches the same phase-1 and phase-2 fixpoint
    /// as the sequential executor.
    #[test]
    fn chaos_fixpoint_matches_sequential(
        seed in 0u64..1_000_000,
        drop in 0.0f64..0.2,
        f in 0usize..25,
    ) {
        let topology = Topology::mesh(12, 12);
        let mut rng = SmallRng::seed_from_u64(seed);
        let faults = uniform_faults(topology, f, &mut rng);
        let map = FaultMap::new(topology, faults);

        let ref_safety =
            compute_safety(&map, SafetyRule::BothDimensions, Executor::Sequential, 400);
        let ref_enable = compute_enablement(&map, &ref_safety.grid, Executor::Sequential, 400);

        let chaos = ChaosConfig::uniform(seed ^ 0x5EED, drop, drop / 2.0, drop / 2.0);
        let p1 = SafetyProtocol::new(&map, SafetyRule::BothDimensions);
        let a1 = run_chaos(&p1, seed, 3, 20_000_000, &chaos, None);
        prop_assert!(a1.converged);
        prop_assert_eq!(&a1.states, &ref_safety.grid);
        let p2 = EnablementProtocol::new(&map, &a1.states);
        let a2 = run_chaos(&p2, seed ^ 1, 3, 20_000_000, &chaos, None);
        prop_assert!(a2.converged);
        prop_assert_eq!(&a2.states, &ref_enable.grid);
    }
}

/// The warm-start maintenance path must be engine-independent too: the
/// frontier executor and the bit-packed kernels (warm-initialized from the
/// previous fixpoint) produce the same grids and the same incremental
/// phase-1 trace as the sequential warm protocol.
#[test]
fn warm_start_maintenance_is_engine_independent() {
    for (topology, seed) in [
        (Topology::mesh(20, 20), 21u64),
        (Topology::torus(18, 18), 22),
        (Topology::mesh(33, 9), 23),
    ] {
        let mut rng = SmallRng::seed_from_u64(seed);
        let faults = uniform_faults(topology, 16, &mut rng);
        let map = FaultMap::new(topology, faults);
        let new_faults: Vec<Coord> = uniform_faults(topology, 40, &mut rng)
            .into_iter()
            .filter(|&c| !map.is_faulty(c))
            .take(5)
            .collect();

        let engines = [
            LabelEngine::Lockstep(Executor::Sequential),
            LabelEngine::Lockstep(Executor::Frontier),
            LabelEngine::Lockstep(Executor::Sharded { threads: 3 }),
            LabelEngine::Bitboard { threads: 1 },
            LabelEngine::Bitboard { threads: 4 },
        ];
        let mut reference = None;
        for engine in engines {
            let cfg = PipelineConfig {
                engine,
                ..PipelineConfig::default()
            };
            let cold = run_pipeline(&map, &cfg);
            let (_updated, warm) = relabel_after_faults(&map, &new_faults, &cold, &cfg);
            let got = (
                warm.outcome.safety.clone(),
                warm.outcome.activation.clone(),
                warm.incremental_safety_trace.clone(),
            );
            match &reference {
                None => reference = Some(got),
                Some(want) => {
                    assert_eq!(got.0, want.0, "{engine:?} warm safety grid, seed {seed}");
                    assert_eq!(
                        got.1, want.1,
                        "{engine:?} warm activation grid, seed {seed}"
                    );
                    assert_eq!(
                        got.2, want.2,
                        "{engine:?} warm incremental trace, seed {seed}"
                    );
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// For arbitrary fault maps on meshes and tori, every engine —
    /// frontier executor and bit-packed kernels at any thread count —
    /// produces byte-identical grids and identical per-round change
    /// histories for both phases.
    #[test]
    fn engines_match_sequential_on_random_maps(
        seed in 0u64..1_000_000,
        width in 3u32..24,
        height in 3u32..24,
        torus in any::<bool>(),
        f in 0usize..30,
        threads in 1usize..6,
    ) {
        let kind = if torus { TopologyKind::Torus } else { TopologyKind::Mesh };
        let topology = Topology::new(kind, width, height);
        let mut rng = SmallRng::seed_from_u64(seed);
        let faults = uniform_faults(topology, f.min(topology.len() / 2), &mut rng);
        let map = FaultMap::new(topology, faults);

        let ref_safety =
            compute_safety(&map, SafetyRule::BothDimensions, Executor::Sequential, 400);
        let ref_enable = compute_enablement(&map, &ref_safety.grid, Executor::Sequential, 400);

        for engine in [
            LabelEngine::Lockstep(Executor::Frontier),
            LabelEngine::Bitboard { threads },
        ] {
            let safety = compute_safety_with(&map, SafetyRule::BothDimensions, engine, 400);
            prop_assert_eq!(&safety.grid, &ref_safety.grid, "{:?} safety grid", engine);
            prop_assert_eq!(
                &safety.trace.changes_per_round,
                &ref_safety.trace.changes_per_round,
                "{:?} safety changes_per_round", engine
            );
            prop_assert_eq!(&safety.trace, &ref_safety.trace, "{:?} safety trace", engine);
            let enable = compute_enablement_with(&map, &safety.grid, engine, 400);
            prop_assert_eq!(&enable.grid, &ref_enable.grid, "{:?} activation grid", engine);
            prop_assert_eq!(&enable.trace, &ref_enable.trace, "{:?} enable trace", engine);
        }
    }
}

#[test]
fn equivalence_with_def2a_rule() {
    let topology = Topology::mesh(18, 18);
    let mut rng = SmallRng::seed_from_u64(11);
    let faults = uniform_faults(topology, 25, &mut rng);
    let map = FaultMap::new(topology, faults);
    let reference = compute_safety(
        &map,
        SafetyRule::TwoUnsafeNeighbors,
        Executor::Sequential,
        400,
    );
    for exec in [Executor::Sharded { threads: 4 }, Executor::Actor] {
        let got = compute_safety(&map, SafetyRule::TwoUnsafeNeighbors, exec, 400);
        assert_eq!(got.grid, reference.grid);
        assert_eq!(got.trace, reference.trace);
    }
}
