//! Integration of the extension features: link faults, repair
//! maintenance, the distance field, and distance-guided adaptive routing.

use ocp_core::labeling::distance::{compute_distance_field, UNREACHABLE};
use ocp_core::maintenance::{relabel_after_fault, relabel_after_repair};
use ocp_core::prelude::*;
use ocp_distsim::Executor;
use ocp_mesh::{Coord, Topology};
use ocp_routing::adaptive::adaptive_minimal_route;
use ocp_routing::{minimal_route, EnabledMap};

fn c(x: i32, y: i32) -> Coord {
    Coord::new(x, y)
}

#[test]
fn link_faults_flow_through_whole_pipeline() {
    // Three failed links -> node faults -> labeling -> verification.
    let t = Topology::mesh(12, 12);
    let map = FaultMap::from_link_faults(
        t,
        [
            (c(3, 3), c(3, 4)),
            (c(4, 4), c(3, 4)), // shares an endpoint with the first
            (c(8, 8), c(9, 8)),
        ],
    );
    // Two links share a neighborhood: endpoints dedupe.
    assert_eq!(map.fault_count(), 3);
    let out = run_pipeline(&map, &PipelineConfig::default());
    ocp_core::verify::verify(&map, &out).expect("link-fault pipeline verifies");
    // (3,3) and (3,4) are adjacent faults -> one block contains both.
    assert!(out
        .blocks
        .iter()
        .any(|b| b.cells.contains(c(3, 3)) && b.cells.contains(c(3, 4))));
}

#[test]
fn fault_then_repair_roundtrips_to_original_labels() {
    let t = Topology::mesh(14, 14);
    let map = FaultMap::new(t, [c(4, 4), c(5, 5)]);
    let cfg = PipelineConfig::default();
    let original = run_pipeline(&map, &cfg);

    // Break one more node, then repair it again.
    let (broken_map, broken) = relabel_after_fault(&map, c(9, 9), &original, &cfg);
    assert_eq!(broken_map.fault_count(), 3);
    assert!(broken.outcome.blocks.len() > original.blocks.len());

    let (repaired_map, repaired) = relabel_after_repair(&broken_map, c(9, 9), &cfg);
    assert_eq!(repaired_map, map);
    assert_eq!(repaired.safety, original.safety);
    assert_eq!(repaired.activation, original.activation);
}

#[test]
fn distance_field_guides_adaptive_router_around_regions() {
    let t = Topology::mesh(16, 16);
    let map = FaultMap::new(t, [c(7, 7), c(8, 8), c(7, 8), c(8, 7)]);
    let out = run_pipeline(&map, &PipelineConfig::default());
    let enabled = EnabledMap::from_outcome(&out);
    let field = compute_distance_field(&map, &out.activation, Executor::Sequential, 1000);
    assert!(field.trace.converged);

    // Endpoints diagonal across the block: the src-dst rectangle contains
    // the 2x2 disabled region, so minimal paths exist but must swerve.
    let (src, dst) = (c(5, 6), c(11, 9));
    let p = adaptive_minimal_route(&enabled, &field.grid, src, dst).unwrap();
    assert_eq!(p.len() as u32, t.distance(src, dst));
    p.validate(&enabled).unwrap();
    for hop in &p.hops {
        assert!(field.at(*hop) >= 1, "route entered a disabled region");
    }

    // Global minimal agrees on length.
    let q = minimal_route(&enabled, src, dst).unwrap();
    assert_eq!(p.len(), q.len());
}

#[test]
fn distance_field_unreachable_only_without_faults() {
    let t = Topology::torus(10, 10);
    let healthy = FaultMap::healthy(t);
    let out = run_pipeline(&healthy, &PipelineConfig::default());
    let field = compute_distance_field(&healthy, &out.activation, Executor::Sequential, 100);
    assert!(field.grid.iter().all(|(_, &d)| d == UNREACHABLE));

    let map = FaultMap::new(t, [c(0, 0)]);
    let out = run_pipeline(&map, &PipelineConfig::default());
    let field = compute_distance_field(&map, &out.activation, Executor::Sequential, 100);
    // On a torus every node reaches the fault; max distance = diameter.
    let max = field
        .grid
        .iter()
        .filter(|(cc, _)| !map.is_faulty(*cc))
        .map(|(_, &d)| d)
        .max()
        .unwrap();
    assert_eq!(max as u32, t.diameter());
}

#[test]
fn distance_field_rounds_scale_with_fault_spread() {
    // One central fault: field radius ~ diameter/2. Faults sprinkled
    // everywhere: the field converges much faster.
    let t = Topology::mesh(20, 20);
    let single = FaultMap::new(t, [c(10, 10)]);
    let out1 = run_pipeline(&single, &PipelineConfig::default());
    let f1 = compute_distance_field(&single, &out1.activation, Executor::Sequential, 1000);

    let spread: Vec<Coord> = (0..5)
        .flat_map(|i| (0..5).map(move |j| c(2 + 4 * i, 2 + 4 * j)))
        .collect();
    let many = FaultMap::new(t, spread);
    let out2 = run_pipeline(&many, &PipelineConfig::default());
    let f2 = compute_distance_field(&many, &out2.activation, Executor::Sequential, 1000);

    assert!(
        f2.trace.rounds() < f1.trace.rounds(),
        "dense faults {} rounds vs single {} rounds",
        f2.trace.rounds(),
        f1.trace.rounds()
    );
}
