//! Full-stack routing integration: labeling → fault rings → fault-tolerant
//! routes → CDG analysis → wormhole simulation.

use ocp_core::prelude::*;
use ocp_mesh::{Coord, Topology};
use ocp_routing::cdg::{assign_detour_vc, assign_single_vc, DependencyGraph};
use ocp_routing::wormhole::{simulate, PacketSpec, WormholeConfig};
use ocp_routing::{bfs_path, EnabledMap, FaultTolerantRouter, Path};
use ocp_workloads::uniform_faults;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

fn labeled_router(side: u32, f: usize, seed: u64) -> (FaultTolerantRouter, EnabledMap) {
    let topology = Topology::mesh(side, side);
    let mut rng = SmallRng::seed_from_u64(seed);
    let map = FaultMap::new(topology, uniform_faults(topology, f, &mut rng));
    let out = run_pipeline(&map, &PipelineConfig::default());
    let enabled = EnabledMap::from_outcome(&out);
    let regions: Vec<_> = out.regions.iter().map(|r| r.cells.clone()).collect();
    (FaultTolerantRouter::new(enabled.clone(), &regions), enabled)
}

#[test]
fn router_delivers_whenever_bfs_can_interior() {
    // With faults kept off the boundary, every BFS-reachable pair must be
    // routable (rings are all cycles).
    let topology = Topology::mesh(16, 16);
    let interior: Vec<Coord> = topology
        .coords()
        .filter(|c| c.x >= 2 && c.y >= 2 && c.x <= 13 && c.y <= 13)
        .collect();
    let mut rng = SmallRng::seed_from_u64(77);
    let faults: Vec<Coord> = interior.choose_multiple(&mut rng, 14).copied().collect();
    let map = FaultMap::new(topology, faults);
    let out = run_pipeline(&map, &PipelineConfig::default());
    let enabled = EnabledMap::from_outcome(&out);
    let regions: Vec<_> = out.regions.iter().map(|r| r.cells.clone()).collect();
    let router = FaultTolerantRouter::new(enabled.clone(), &regions);
    // Interior regions only -> all rings cycles.
    assert!(router.rings().iter().all(|r| r.is_cycle()));

    let nodes = enabled.enabled_coords();
    let mut checked = 0;
    for (i, &src) in nodes.iter().enumerate().step_by(9) {
        for &dst in nodes.iter().skip(i % 5).step_by(13) {
            if bfs_path(&enabled, src, dst).is_ok() {
                let p = router
                    .route(src, dst)
                    .unwrap_or_else(|e| panic!("{src}->{dst}: {e}"));
                p.validate(&enabled).unwrap();
                checked += 1;
            }
        }
    }
    assert!(checked > 100);
}

#[test]
fn dr_routes_no_longer_than_fb_routes_on_average() {
    // More enabled nodes can only help path quality on average.
    let topology = Topology::mesh(20, 20);
    let mut rng = SmallRng::seed_from_u64(31);
    let map = FaultMap::new(topology, uniform_faults(topology, 20, &mut rng));
    let out = run_pipeline(&map, &PipelineConfig::default());
    let mut cmp_rng = SmallRng::seed_from_u64(32);
    let cmp = ocp_routing::compare_models(&out, 150, &mut cmp_rng);
    assert!(cmp.disabled_region.enabled_nodes >= cmp.faulty_block.enabled_nodes);
    // Delivery rates should both be high on this sparse pattern.
    assert!(cmp.disabled_region.delivered as f64 / cmp.disabled_region.pairs as f64 > 0.8);
}

#[test]
fn cdg_detour_vc_reduces_cycles() {
    let (router, enabled) = labeled_router(18, 20, 41);
    let nodes = enabled.enabled_coords();
    let mut rng = SmallRng::seed_from_u64(42);
    let mut paths: Vec<Path> = Vec::new();
    while paths.len() < 120 {
        let pick: Vec<_> = nodes.choose_multiple(&mut rng, 2).collect();
        if let Ok(p) = router.route(*pick[0], *pick[1]) {
            if !p.is_empty() {
                paths.push(p);
            }
        }
    }
    let single = DependencyGraph::from_paths(paths.iter(), &assign_single_vc);
    let split = DependencyGraph::from_paths(paths.iter(), &assign_detour_vc);
    assert!(
        split.count_back_edges() <= single.count_back_edges(),
        "detour VC should not add cycles: {} vs {}",
        split.count_back_edges(),
        single.count_back_edges()
    );
}

#[test]
fn wormhole_delivers_router_paths() {
    let (router, enabled) = labeled_router(14, 8, 51);
    let nodes = enabled.enabled_coords();
    let mut rng = SmallRng::seed_from_u64(52);
    let mut specs = Vec::new();
    let mut i = 0u64;
    while specs.len() < 60 {
        let pick: Vec<_> = nodes.choose_multiple(&mut rng, 2).collect();
        if let Ok(p) = router.route(*pick[0], *pick[1]) {
            specs.push(PacketSpec::with_assignment(p, i, &assign_detour_vc));
            i += 2;
        }
    }
    let stats = simulate(
        &specs,
        &WormholeConfig {
            vcs: 2,
            ..WormholeConfig::default()
        },
    );
    assert_eq!(stats.delivered, 60, "{stats:?}");
    assert!(!stats.deadlocked);
    assert!(stats.avg_latency >= 1.0 || stats.delivered == 0);
}

#[test]
fn xy_paths_on_labeled_machine_feed_wormhole() {
    // End-to-end sanity with plain XY on the enabled map: all-minimal paths
    // on one VC never deadlock on a mesh.
    let topology = Topology::mesh(12, 12);
    let map = FaultMap::new(topology, [Coord::new(5, 5)]);
    let out = run_pipeline(&map, &PipelineConfig::default());
    let enabled = EnabledMap::from_outcome(&out);
    let nodes = enabled.enabled_coords();
    let mut rng = SmallRng::seed_from_u64(61);
    let mut specs = Vec::new();
    let mut tries = 0;
    while specs.len() < 40 && tries < 500 {
        tries += 1;
        let pick: Vec<_> = nodes.choose_multiple(&mut rng, 2).collect();
        if let Ok(p) = ocp_routing::xy::route(&enabled, *pick[0], *pick[1]) {
            if !p.is_empty() {
                specs.push(PacketSpec::on_single_vc(p, 0));
            }
        }
    }
    assert!(specs.len() >= 30);
    let stats = simulate(&specs, &WormholeConfig::default());
    assert_eq!(stats.delivered, specs.len());
    assert!(!stats.deadlocked);
}
