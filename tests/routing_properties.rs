//! Property-based tests for the routing layer and the asynchronous
//! executor, over randomized labeled machines.

use ocp_core::labeling::enablement::EnablementProtocol;
use ocp_core::labeling::safety::{SafetyProtocol, SafetyRule};
use ocp_core::prelude::*;
use ocp_distsim::run_async;
use ocp_mesh::{Coord, Topology, TopologyKind};
use ocp_routing::{bfs_path, minimal_route, EnabledMap, FaultTolerantRouter};
use proptest::prelude::*;

/// Strategy: a mesh side, interior fault cells (2 cells away from every
/// border so all fault rings are cycles), and a pair of endpoint seeds.
fn interior_pattern() -> impl Strategy<Value = (u32, Vec<Coord>, u64)> {
    (10u32..=20).prop_flat_map(|side| {
        let cells = proptest::collection::btree_set(
            (2..side as i32 - 2, 2..side as i32 - 2).prop_map(|(x, y)| Coord::new(x, y)),
            0..10,
        );
        (
            Just(side),
            cells.prop_map(|s| s.into_iter().collect()),
            any::<u64>(),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The fault-tolerant router delivers whenever BFS can, its paths are
    /// valid and never shorter than BFS.
    #[test]
    fn router_complete_and_valid((side, faults, seed) in interior_pattern()) {
        let topology = Topology::new(TopologyKind::Mesh, side, side);
        let map = FaultMap::new(topology, faults);
        let out = run_pipeline(&map, &PipelineConfig::default());
        let enabled = EnabledMap::from_outcome(&out);
        let regions: Vec<_> = out.regions.iter().map(|r| r.cells.clone()).collect();
        let router = FaultTolerantRouter::new(enabled.clone(), &regions);
        prop_assert!(router.rings().iter().all(|r| r.is_cycle()));

        let nodes = enabled.enabled_coords();
        // Deterministic endpoint sampling from the seed.
        let pick = |k: u64| nodes[(seed.wrapping_mul(k + 1) % nodes.len() as u64) as usize];
        for k in 0..12u64 {
            let (src, dst) = (pick(2 * k), pick(2 * k + 1));
            match (router.route(src, dst), bfs_path(&enabled, src, dst)) {
                (Ok(p), Ok(q)) => {
                    prop_assert!(p.validate(&enabled).is_ok());
                    prop_assert!(p.len() >= q.len());
                    prop_assert_eq!(p.src(), src);
                    prop_assert_eq!(p.dst(), dst);
                }
                (Err(e), Ok(_)) => {
                    return Err(TestCaseError::fail(format!(
                        "router failed {src}->{dst} on reachable pair: {e}"
                    )));
                }
                (_, Err(_)) => {}
            }
        }
    }

    /// A minimal route, when it exists, has exactly the topology distance;
    /// when minimal routing fails but BFS succeeds, BFS is strictly longer
    /// than the distance.
    #[test]
    fn minimal_route_is_exactly_minimal((side, faults, seed) in interior_pattern()) {
        let topology = Topology::new(TopologyKind::Mesh, side, side);
        let map = FaultMap::new(topology, faults);
        let out = run_pipeline(&map, &PipelineConfig::default());
        let enabled = EnabledMap::from_outcome(&out);
        let nodes = enabled.enabled_coords();
        let pick = |k: u64| nodes[(seed.wrapping_mul(k + 3) % nodes.len() as u64) as usize];
        for k in 0..12u64 {
            let (src, dst) = (pick(3 * k), pick(3 * k + 2));
            let min_d = topology.distance(src, dst) as usize;
            match minimal_route(&enabled, src, dst) {
                Ok(p) => {
                    prop_assert_eq!(p.len(), min_d);
                    prop_assert!(p.validate(&enabled).is_ok());
                }
                Err(_) => {
                    if let Ok(q) = bfs_path(&enabled, src, dst) {
                        prop_assert!(
                            q.len() > min_d,
                            "minimal failed but BFS found a minimal path {} == {}",
                            q.len(), min_d
                        );
                    }
                }
            }
        }
    }

    /// k-disjoint routes over random fault maps: every delivered set is
    /// pairwise vertex-disjoint away from the endpoints, each path is
    /// valid under the traversal rules, `k = 1` is byte-identical to the
    /// production `route`, every path honors the API's own length bound,
    /// and `route_disjoint` fails exactly when `route` fails.
    #[test]
    fn route_disjoint_properties((side, faults, seed) in interior_pattern()) {
        let topology = Topology::new(TopologyKind::Mesh, side, side);
        let map = FaultMap::new(topology, faults);
        let out = run_pipeline(&map, &PipelineConfig::default());
        let enabled = EnabledMap::from_outcome(&out);
        let regions: Vec<_> = out.regions.iter().map(|r| r.cells.clone()).collect();
        let router = FaultTolerantRouter::new(enabled.clone(), &regions);
        let nodes = enabled.enabled_coords();
        let pick = |k: u64| nodes[(seed.wrapping_mul(k + 5) % nodes.len() as u64) as usize];
        for i in 0..8u64 {
            let (src, dst) = (pick(2 * i), pick(2 * i + 1));
            for k in 1..=3usize {
                match (router.route_disjoint(src, dst, k), router.route(src, dst)) {
                    (Ok(routes), Ok(single)) => {
                        prop_assert!(routes.pairwise_disjoint(), "{src}->{dst} k={k}");
                        prop_assert!(!routes.paths.is_empty());
                        prop_assert!(routes.paths.len() <= k.max(1));
                        let bound = router.disjoint_len_bound(src, dst, k);
                        for p in &routes.paths {
                            prop_assert!(p.validate(&enabled).is_ok());
                            prop_assert_eq!(p.src(), src);
                            prop_assert_eq!(p.dst(), dst);
                            prop_assert!(
                                p.len() <= bound,
                                "{src}->{dst} k={k}: len {} > bound {bound}",
                                p.len()
                            );
                        }
                        if k == 1 {
                            prop_assert_eq!(&routes.paths[0].hops, &single.hops);
                        }
                    }
                    (Err(e), Err(f)) => prop_assert_eq!(e, f),
                    (got, want) => {
                        return Err(TestCaseError::fail(format!(
                            "{src}->{dst} k={k}: route_disjoint {got:?} vs route {want:?}"
                        )));
                    }
                }
            }
        }
    }

    /// Asynchronous execution of both labeling phases reaches the
    /// synchronous fixpoint for arbitrary fault patterns, delays and seeds.
    #[test]
    fn async_labeling_confluent((side, faults, seed) in interior_pattern(), delay in 1u64..12) {
        let topology = Topology::new(TopologyKind::Mesh, side, side);
        let map = FaultMap::new(topology, faults);
        let sync = run_pipeline(&map, &PipelineConfig::default());

        let p1 = SafetyProtocol::new(&map, SafetyRule::BothDimensions);
        let a1 = run_async(&p1, seed, delay, 20_000_000);
        prop_assert!(a1.converged);
        prop_assert_eq!(&a1.states, &sync.safety);

        let p2 = EnablementProtocol::new(&map, &a1.states);
        let a2 = run_async(&p2, seed ^ 0xFF, delay, 20_000_000);
        prop_assert!(a2.converged);
        prop_assert_eq!(&a2.states, &sync.activation);
    }

    /// Every fault ring cell is enabled, at Chebyshev distance exactly 1
    /// from its region, and cycle neighbors are mesh links.
    #[test]
    fn ring_structure((side, faults, seed) in interior_pattern()) {
        let _ = seed;
        let topology = Topology::new(TopologyKind::Mesh, side, side);
        let map = FaultMap::new(topology, faults);
        let out = run_pipeline(&map, &PipelineConfig::default());
        let enabled = EnabledMap::from_outcome(&out);
        let regions: Vec<_> = out.regions.iter().map(|r| r.cells.clone()).collect();
        let router = FaultTolerantRouter::new(enabled.clone(), &regions);
        for (ring, group) in router.rings().iter().zip(router.groups()) {
            for &cell in ring.cells() {
                prop_assert!(enabled.is_enabled(cell));
                let d = group.iter().map(|g| g.chebyshev(cell)).min().unwrap();
                prop_assert_eq!(d, 1);
            }
            if let ocp_routing::RingShape::Cycle(v) = &ring.shape {
                for i in 0..v.len() {
                    prop_assert!(v[i].is_adjacent(v[(i + 1) % v.len()]));
                }
            }
        }
    }
}
