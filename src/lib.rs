//! Umbrella crate for the reproduction of Jie Wu's *"A Distributed
//! Formation of Orthogonal Convex Polygons in Mesh-Connected
//! Multicomputers"* (IPPS 2001).
//!
//! Re-exports every workspace member under one roof for the examples under
//! `examples/` and the cross-crate integration tests under `tests/`. Library
//! users should depend on the individual crates (`ocp-core`, `ocp-mesh`,
//! `ocp-routing`, …) directly.

pub use ocp_analysis as analysis;
pub use ocp_core as core;
pub use ocp_distsim as distsim;
pub use ocp_geometry as geometry;
pub use ocp_mesh as mesh;
pub use ocp_routing as routing;
pub use ocp_serve as serve;
pub use ocp_workloads as workloads;
